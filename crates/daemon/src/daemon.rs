//! The `lumend` event loop: a single-threaded, deterministic daemon core
//! wrapping one [`Supervisor`].
//!
//! One [`Daemon::turn_once`] is the unit of progress: accept pending
//! connections, read and dispatch every decodable frame from every peer,
//! advance the supervisor one tick, route the drained session events back
//! out as frames, enforce abuse/read/idle deadlines, checkpoint on
//! schedule, flush. Because a turn advances the simulated clock exactly
//! one tick, the whole daemon is a pure function of (config, admitted
//! traffic) — the loopback experiments and the kill/restore soak rely on
//! this to demand *byte-identical* verdict streams across restarts.
//!
//! ## Robustness posture
//!
//! - **Malformed bytes** can never panic the process: the wire decoder is
//!   total, and every [`WireError`] maps to a typed
//!   [`Frame::Goodbye`] plus a `daemon.frames_rejected.*` counter.
//! - **Oversize frames** are refused from the header alone — the length
//!   cap gates before the body is buffered, so hostile lengths cannot
//!   drive allocation.
//! - **Slowloris** (a frame trickled forever) trips the read deadline;
//!   silence trips the idle deadline. Both get typed disconnects.
//! - **Floods** drain a per-connection token bucket; refusals are
//!   counted, and past a threshold the peer is disconnected for abuse and
//!   a flight-recorder post-mortem is triggered.
//! - **Backpressure** maps transport pressure onto the supervisor's
//!   existing shed accounting: every wire verdict/shed frame is counted,
//!   and `served + shed == offered` holds end-to-end (see
//!   [`WireStats::verdict_total`] / [`WireStats::shed_total`]).

use crate::limiter::TokenBucket;
use crate::transport::{Conn, Listener, ReadEvent};
use crate::wire::{Decoder, DisconnectCause, Frame, RejectCode, WireError, WireTrace, WireVerdict};
use crate::{DaemonError, Result};
use lumen_chat::trace::{ScenarioKind, TracePair};
use lumen_core::detector::ClipOutcome;
use lumen_core::quality::InconclusiveReason;
use lumen_core::stream::{ClipVerdict, SessionStatus, StreamingDetector};
use lumen_dsp::Signal;
use lumen_obs::{FlightConfig, FlightSink, Recorder, Sink};
use lumen_probe::{ProbeDirector, ProbePolicy};
use lumen_serve::{
    AdmitOutcome, BreakerTransition, CheckpointStore, CommitOutcome, MemStorage, RestoreReport,
    ServeConfig, ServeStats, SessionEventKind, Storage, Supervisor,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Builds a fresh trained streaming detector for a session. Called with
/// the session id on restore; with `u64::MAX` for a brand-new admission
/// (the id is only assigned once the supervisor accepts).
pub type DetectorFactory = Box<dyn FnMut(u64) -> lumen_core::Result<StreamingDetector>>;

/// Daemon tuning knobs. All deadlines are in event-loop turns (= ticks),
/// never wall-clock, so every behaviour is reproducible.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Hard cap on a frame's payload length, enforced from the header.
    pub max_frame_len: u32,
    /// Token-bucket burst capacity per connection.
    pub bucket_capacity: u32,
    /// Tokens regained per turn per connection.
    pub bucket_refill: f64,
    /// Rate-limited frames tolerated before the peer is disconnected for
    /// abuse (and a flight post-mortem fires).
    pub abuse_disconnect_after: u32,
    /// Turns of total silence before an idle disconnect.
    pub idle_turns: u64,
    /// Turns a partial frame may sit undecodable before a slow-read
    /// (slowloris) disconnect.
    pub read_turns: u64,
    /// Commit a checkpoint every this many turns (0 = only at drain).
    pub checkpoint_every_turns: u64,
    /// Per-session cap on frames parked for a disconnected-but-resumable
    /// session; overflow evicts oldest-first and is counted.
    pub park_limit: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            max_frame_len: 1 << 20,
            bucket_capacity: 64,
            bucket_refill: 8.0,
            abuse_disconnect_after: 32,
            idle_turns: 10_000,
            read_turns: 1_000,
            checkpoint_every_turns: 0,
            park_limit: 4096,
        }
    }
}

/// Wire-level accounting, the daemon-side half of the
/// `served + shed == offered` identity. Every supervisor event is either
/// sent, parked for a resumable session, or counted as orphaned — nothing
/// is silently dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Verdict frames delivered or parked.
    pub verdict_frames: u64,
    /// Verdict events whose session was no longer reachable.
    pub orphaned_verdicts: u64,
    /// Shed frames delivered or parked.
    pub shed_frames: u64,
    /// Shed events whose session was no longer reachable.
    pub orphaned_sheds: u64,
    /// Admissions refused (typed `Refused` frames).
    pub refused_admissions: u64,
    /// Sessions admitted over the wire.
    pub welcomes: u64,
    /// Successful resumes after a restart.
    pub resumes: u64,
    /// Refused resumes (unknown or quarantined sessions).
    pub resume_rejections: u64,
    /// Frames refused by the token bucket.
    pub rate_limited: u64,
    /// Non-fatal `Reject` frames sent (all codes).
    pub rejected_frames: u64,
    /// Connections dropped for rate-limit abuse.
    pub abuse_disconnects: u64,
    /// Connections dropped for idle timeout.
    pub idle_disconnects: u64,
    /// Connections dropped for a stalled partial frame.
    pub slow_read_disconnects: u64,
    /// Connections dropped for malformed/oversize bytes.
    pub malformed_disconnects: u64,
    /// Parked frames evicted by the per-session park cap.
    pub park_overflow: u64,
}

impl WireStats {
    /// All verdict events accounted at the wire layer.
    pub fn verdict_total(&self) -> u64 {
        self.verdict_frames + self.orphaned_verdicts
    }

    /// All shed events accounted at the wire layer.
    pub fn shed_total(&self) -> u64 {
        self.shed_frames + self.orphaned_sheds
    }
}

/// Report returned by [`Daemon::drain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Turns the drain took from the call to fully drained.
    pub turns: u64,
    /// Supervisor tick at completion.
    pub tick: u64,
    /// Generation of the final checkpoint, when a store is attached.
    pub final_generation: Option<u64>,
}

/// One connected peer and its protocol state.
struct Peer {
    conn: Conn,
    decoder: Decoder,
    bucket: TokenBucket,
    sessions: BTreeSet<u64>,
    last_rx_turn: u64,
    partial_since: Option<u64>,
    rate_limited: u32,
    closing: bool,
}

/// The `lumend` daemon: listener, peers, supervisor, store.
pub struct Daemon<S: Storage = MemStorage> {
    config: DaemonConfig,
    listener: Listener,
    sup: Supervisor,
    factory: DetectorFactory,
    probe_policy: Option<ProbePolicy>,
    probe_seed: u64,
    store: Option<CheckpointStore<S>>,
    peers: BTreeMap<u64, Peer>,
    next_peer: u64,
    /// session → peer currently bound to it.
    bound: BTreeMap<u64, u64>,
    /// session → samples ingested (the client's resume point).
    ingested: BTreeMap<u64, u64>,
    /// Sessions the restore quarantined; resumes are refused.
    quarantined: BTreeSet<u64>,
    /// Encoded frames awaiting a resumed connection, per session.
    parked: BTreeMap<u64, VecDeque<Vec<u8>>>,
    recorder: Recorder,
    flight: Option<Arc<FlightSink>>,
    turn: u64,
    next_session_mirror: u64,
    stats: WireStats,
    draining: bool,
    drained: bool,
    final_generation: Option<u64>,
}

impl<S: Storage> Daemon<S> {
    /// A daemon around an already-configured supervisor, bound to an
    /// ephemeral loopback port. When the supervisor carries a flight
    /// recorder, the daemon's own counters flow into the same registry.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonError::Io`] when the listener cannot bind.
    pub fn new(
        sup: Supervisor,
        factory: DetectorFactory,
        config: DaemonConfig,
        store: Option<CheckpointStore<S>>,
    ) -> Result<Self> {
        let listener = Listener::bind_loopback()?;
        let flight = sup.flight_sink().cloned();
        let recorder = match &flight {
            Some(f) => Recorder::new(f.clone() as Arc<dyn Sink>),
            None => Recorder::null(),
        };
        let next_session_mirror = sup.snapshot().next_id;
        Ok(Daemon {
            config,
            listener,
            sup,
            factory,
            probe_policy: None,
            probe_seed: 0,
            store,
            peers: BTreeMap::new(),
            next_peer: 0,
            bound: BTreeMap::new(),
            ingested: BTreeMap::new(),
            quarantined: BTreeSet::new(),
            parked: BTreeMap::new(),
            recorder,
            flight,
            turn: 0,
            next_session_mirror,
            stats: WireStats::default(),
            draining: false,
            drained: false,
            final_generation: None,
        })
    }

    /// Restarts a daemon from the newest valid checkpoint generation in
    /// `store` — the crash-recovery path of the soak. Sessions that fail
    /// validation are quarantined (their resumes refused, so their clients
    /// re-admit fresh); everything else resumes exactly where the
    /// checkpoint left it, with per-session resume points recomputed from
    /// the restored snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonError::Serve`] when no stored generation survives
    /// validation, [`DaemonError::Core`] when the detector factory fails,
    /// and [`DaemonError::Io`] for listener failures.
    pub fn restore_from_store(
        serve_config: ServeConfig,
        mut store: CheckpointStore<S>,
        mut factory: DetectorFactory,
        config: DaemonConfig,
        flight: Option<FlightConfig>,
    ) -> Result<(Self, RestoreReport)> {
        let recorder = Recorder::null();
        let (sup, report) =
            Supervisor::restore_from_store(serve_config, &mut store, &mut *factory, &recorder)?;
        let sup = match flight {
            Some(fc) => sup.with_flight(fc),
            None => sup,
        };
        // The resume point of every surviving session is derivable from
        // its snapshot alone: resolved clips + queued entries (clips and
        // tombstones both consumed their samples) + the partial clip.
        let clip_samples = factory(u64::MAX)?.clip_samples() as u64;
        let snap = sup.snapshot();
        let mut daemon = Daemon::new(sup, factory, config, Some(store))?;
        for s in &snap.sessions {
            let resumed = (s.stream.clips_done as u64 + s.queue.len() as u64) * clip_samples
                + s.partial_tx.len() as u64;
            daemon.ingested.insert(s.id, resumed);
            daemon.parked.insert(s.id, VecDeque::new());
        }
        daemon.next_session_mirror = snap.next_id;
        for q in &report.quarantined {
            daemon.quarantined.insert(q.id);
            daemon.ingested.remove(&q.id);
            daemon.parked.remove(&q.id);
        }
        daemon.recorder.add("daemon.restores", 1);
        Ok((daemon, report))
    }

    /// Arms active probing: admitted sessions get a [`ProbeDirector`]
    /// seeded from `seed` and the session id, so challenge schedules are
    /// reproducible per session.
    pub fn with_probe(mut self, policy: ProbePolicy, seed: u64) -> Self {
        self.probe_policy = Some(policy);
        self.probe_seed = seed;
        self
    }

    /// The loopback port clients connect to.
    pub fn port(&self) -> u16 {
        self.listener.port()
    }

    /// Wire-level accounting so far.
    pub fn wire_stats(&self) -> &WireStats {
        &self.stats
    }

    /// The wrapped supervisor's serve accounting.
    pub fn serve_stats(&self) -> &ServeStats {
        self.sup.stats()
    }

    /// The wrapped supervisor (read-only).
    pub fn supervisor(&self) -> &Supervisor {
        &self.sup
    }

    /// The checkpoint store, when one is attached.
    pub fn store(&self) -> Option<&CheckpointStore<S>> {
        self.store.as_ref()
    }

    /// Turns executed so far.
    pub fn turns(&self) -> u64 {
        self.turn
    }

    /// Whether [`Daemon::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Whether the drain has completed (the daemon is inert).
    pub fn is_drained(&self) -> bool {
        self.drained
    }

    /// The payload of [`Frame::Metrics`]: a JSON object with the obs
    /// registry snapshot under `"metrics"` (`{}` when no flight recorder
    /// is attached) and a per-shard serve breakdown under `"shards"`. A
    /// single daemon wraps one supervisor, so the breakdown has exactly
    /// one row (shard 0); fleet deployments report one row per shard in
    /// the same shape.
    pub fn metrics_json(&self) -> String {
        use serde::{Serialize, Value};
        let metrics = match self.sup.metrics_snapshot() {
            Some(snap) => snap.serialize(),
            None => Value::Object(Vec::new()),
        };
        let shards = Value::Array(vec![
            lumen_fleet::ShardBreakdown::from_supervisor(0, &self.sup).serialize(),
        ]);
        let reply = Value::Object(vec![
            ("metrics".to_string(), metrics),
            ("shards".to_string(), shards),
        ]);
        match serde_json::to_string(&reply) {
            Ok(json) => json,
            Err(_) => {
                self.recorder.add("daemon.metrics_render_failures", 1);
                "{}".to_string()
            }
        }
    }

    /// Stops admitting (wire `Hello`s get `Refused{Draining}`, the
    /// supervisor refuses with [`lumen_serve::ShedReason::Draining`]) while
    /// in-flight clips keep being served. [`Daemon::turn_once`] completes the
    /// drain once the queues are empty.
    pub fn begin_drain(&mut self) {
        if !self.draining {
            self.draining = true;
            self.sup.begin_drain();
            self.recorder.mark("daemon.drain", "begin");
        }
    }

    /// Runs [`Daemon::turn_once`] until the drain completes.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonError::DrainStalled`] when the drain does not
    /// complete within `max_turns`, or any turn error.
    pub fn drain(&mut self, max_turns: u64) -> Result<DrainReport> {
        self.begin_drain();
        let start = self.turn;
        while !self.drained {
            if self.turn - start >= max_turns {
                return Err(DaemonError::DrainStalled {
                    turns: self.turn - start,
                    pending: self.sup.pending_clips(),
                });
            }
            self.turn_once()?;
        }
        Ok(DrainReport {
            turns: self.turn - start,
            tick: self.sup.tick_now(),
            final_generation: self.final_generation,
        })
    }

    /// One event-loop turn. See the module docs for the exact sequence.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonError::Io`] only for unexpected transport
    /// failures; peer misbehaviour never errors the loop.
    pub fn turn_once(&mut self) -> Result<()> {
        let _span = self.recorder.span(lumen_obs::stage::DAEMON_TURN);
        if self.drained {
            return Ok(());
        }
        self.turn += 1;
        self.accept_pending()?;
        let peer_ids: Vec<u64> = self.peers.keys().copied().collect();
        for pid in peer_ids {
            self.service_peer(pid)?;
        }
        let _tick = self.sup.tick();
        if let Some(store) = self.store.as_mut() {
            let now = self.sup.tick_now();
            if let Some(CommitOutcome::Committed { .. }) = store.tick(now) {
                self.recorder.add("daemon.checkpoint_retries_flushed", 1);
            }
        }
        self.route_events();
        self.enforce_deadlines();
        if !self.draining
            && self.config.checkpoint_every_turns > 0
            && self.turn.is_multiple_of(self.config.checkpoint_every_turns)
        {
            self.checkpoint();
        }
        if self.draining && self.sup.pending_clips() == 0 {
            self.finish_drain();
        }
        self.flush_and_reap()?;
        Ok(())
    }

    fn accept_pending(&mut self) -> Result<()> {
        while let Some(mut conn) = self.listener.accept()? {
            if self.draining {
                conn.queue(
                    &Frame::Goodbye {
                        cause: DisconnectCause::Draining,
                    }
                    .encode(),
                );
                match conn.flush() {
                    Ok(_) => {}
                    Err(_) => self.recorder.add("daemon.flush_failures", 1),
                }
                continue;
            }
            let pid = self.next_peer;
            self.next_peer += 1;
            self.peers.insert(
                pid,
                Peer {
                    conn,
                    decoder: Decoder::new(self.config.max_frame_len),
                    bucket: TokenBucket::new(
                        self.config.bucket_capacity,
                        self.config.bucket_refill,
                    ),
                    sessions: BTreeSet::new(),
                    last_rx_turn: self.turn,
                    partial_since: None,
                    rate_limited: 0,
                    closing: false,
                },
            );
            self.recorder.add("daemon.accepted", 1);
        }
        Ok(())
    }

    fn service_peer(&mut self, pid: u64) -> Result<()> {
        let Some(mut peer) = self.peers.remove(&pid) else {
            return Ok(());
        };
        peer.bucket.refill();
        let mut closed = false;
        if !peer.closing {
            let mut buf = [0u8; 4096];
            loop {
                match peer.conn.read_chunk(&mut buf)? {
                    ReadEvent::Data(n) => {
                        peer.decoder.push(&buf[..n]);
                        peer.last_rx_turn = self.turn;
                    }
                    ReadEvent::Idle => break,
                    ReadEvent::Closed => {
                        closed = true;
                        break;
                    }
                }
            }
            loop {
                match peer.decoder.next_frame() {
                    Ok(Some(frame)) => {
                        if self.dispatch(pid, &mut peer, frame) {
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(err) => {
                        self.reject_malformed(&mut peer, &err);
                        break;
                    }
                }
            }
            peer.partial_since = if peer.decoder.buffered() > 0 {
                peer.partial_since.or(Some(self.turn))
            } else {
                None
            };
        }
        if closed {
            self.release_peer_sessions(&mut peer);
            self.recorder.add("daemon.peer_closed", 1);
        } else {
            self.peers.insert(pid, peer);
        }
        Ok(())
    }

    /// Handles one decoded frame. Returns `true` when the connection was
    /// condemned (goodbye queued) and no further frames should be read.
    fn dispatch(&mut self, pid: u64, peer: &mut Peer, frame: Frame) -> bool {
        if !peer.bucket.try_take() {
            self.stats.rate_limited += 1;
            self.recorder.add("daemon.rate_limited", 1);
            peer.rate_limited += 1;
            if peer.rate_limited >= self.config.abuse_disconnect_after {
                self.stats.abuse_disconnects += 1;
                self.recorder.add("daemon.abuse_disconnects", 1);
                self.flight_trigger("client_abuse");
                self.condemn(peer, DisconnectCause::RateLimitAbuse);
                return true;
            }
            self.reject(peer, RejectCode::RateLimited);
            return false;
        }
        match frame {
            Frame::Hello => self.on_hello(pid, peer),
            Frame::Resume { session } => self.on_resume(pid, peer, session),
            Frame::Sample { session, tx, rx } => self.on_sample(peer, session, tx, rx),
            Frame::Bye { session } => self.on_bye(peer, session),
            Frame::Ping { nonce } => peer.conn.queue(&Frame::Pong { nonce }.encode()),
            Frame::MetricsRequest => {
                let json = self.metrics_json().into_bytes();
                peer.conn.queue(&Frame::Metrics { json }.encode());
            }
            Frame::ProbeResponse { session, response } => {
                self.on_probe_response(peer, session, response)
            }
            Frame::Shutdown => self.begin_drain(),
            // Server-role frames arriving from a client are a protocol
            // violation: the peer is desynchronized or probing.
            Frame::Welcome { .. }
            | Frame::Refused { .. }
            | Frame::Resumed { .. }
            | Frame::ResumeRejected { .. }
            | Frame::Verdict { .. }
            | Frame::Shed { .. }
            | Frame::Breaker { .. }
            | Frame::ProbeChallenge { .. }
            | Frame::ProbeOutcome { .. }
            | Frame::Metrics { .. }
            | Frame::Pong { .. }
            | Frame::Reject { .. }
            | Frame::Goodbye { .. } => {
                self.stats.malformed_disconnects += 1;
                self.recorder.add("daemon.frames_rejected.role", 1);
                self.condemn(peer, DisconnectCause::Malformed);
                return true;
            }
        }
        false
    }

    fn on_hello(&mut self, pid: u64, peer: &mut Peer) {
        if self.draining {
            self.stats.refused_admissions += 1;
            peer.conn.queue(
                &Frame::Refused {
                    reason: lumen_serve::ShedReason::Draining,
                }
                .encode(),
            );
            return;
        }
        let stream = match (self.factory)(u64::MAX) {
            Ok(stream) => stream,
            Err(_) => {
                self.recorder.add("daemon.factory_failures", 1);
                self.reject(peer, RejectCode::Refused);
                return;
            }
        };
        let outcome = match &self.probe_policy {
            Some(policy) => {
                let seed = self.probe_seed ^ self.next_session_mirror;
                match ProbeDirector::new(*policy, seed) {
                    Ok(director) => self.sup.admit_probed(stream, director),
                    Err(_) => {
                        self.recorder.add("daemon.probe_director_failures", 1);
                        self.sup.admit(stream)
                    }
                }
            }
            None => self.sup.admit(stream),
        };
        match outcome {
            AdmitOutcome::Admitted { session } => {
                self.next_session_mirror = session + 1;
                self.bound.insert(session, pid);
                peer.sessions.insert(session);
                self.ingested.insert(session, 0);
                self.stats.welcomes += 1;
                self.recorder.add("daemon.welcomes", 1);
                peer.conn.queue(&Frame::Welcome { session }.encode());
            }
            AdmitOutcome::Shed { reason } => {
                self.stats.refused_admissions += 1;
                self.recorder.add("daemon.refused_admissions", 1);
                peer.conn.queue(&Frame::Refused { reason }.encode());
            }
        }
    }

    fn on_resume(&mut self, pid: u64, peer: &mut Peer, session: u64) {
        if self.draining || self.quarantined.contains(&session) {
            self.stats.resume_rejections += 1;
            self.recorder.add("daemon.resume_rejections", 1);
            peer.conn.queue(&Frame::ResumeRejected { session }.encode());
            return;
        }
        // A session bound to a *live* connection cannot be re-claimed: a
        // replayed admission (THREAT_MODEL §network adversary) must not
        // hijack or duplicate an active verdict stream.
        if self.bound.contains_key(&session) {
            self.stats.resume_rejections += 1;
            self.recorder.add("daemon.resume_rejections", 1);
            peer.conn.queue(&Frame::ResumeRejected { session }.encode());
            return;
        }
        let Some(&next_sample) = self.ingested.get(&session) else {
            self.stats.resume_rejections += 1;
            self.recorder.add("daemon.resume_rejections", 1);
            peer.conn.queue(&Frame::ResumeRejected { session }.encode());
            return;
        };
        self.bound.insert(session, pid);
        peer.sessions.insert(session);
        self.stats.resumes += 1;
        self.recorder.add("daemon.resumes", 1);
        peer.conn.queue(
            &Frame::Resumed {
                session,
                next_sample,
            }
            .encode(),
        );
        if let Some(mut queue) = self.parked.remove(&session) {
            while let Some(bytes) = queue.pop_front() {
                peer.conn.queue(&bytes);
            }
        }
    }

    fn on_sample(&mut self, peer: &mut Peer, session: u64, tx: f64, rx: f64) {
        if !peer.sessions.contains(&session) {
            self.reject(peer, RejectCode::UnknownSession);
            return;
        }
        match self.sup.offer(session, tx, rx) {
            Ok(_admission) => {
                // Shed clips surface later as typed tombstone events in
                // the verdict stream; the sample itself was consumed.
                if let Some(count) = self.ingested.get_mut(&session) {
                    *count += 1;
                }
            }
            Err(_) => {
                self.recorder.add("daemon.offer_failures", 1);
                self.reject(peer, RejectCode::Refused);
            }
        }
    }

    fn on_bye(&mut self, peer: &mut Peer, session: u64) {
        if !peer.sessions.remove(&session) {
            self.reject(peer, RejectCode::UnknownSession);
            return;
        }
        self.bound.remove(&session);
        self.ingested.remove(&session);
        self.parked.remove(&session);
        match self.sup.release(session) {
            Ok(()) => self.recorder.add("daemon.byes", 1),
            Err(_) => self.recorder.add("daemon.release_failures", 1),
        }
    }

    fn on_probe_response(&mut self, peer: &mut Peer, session: u64, response: WireTrace) {
        if !peer.sessions.contains(&session) {
            self.reject(peer, RejectCode::UnknownSession);
            return;
        }
        let pair = match (
            Signal::new(response.tx, response.sample_rate),
            Signal::new(response.rx, response.sample_rate),
        ) {
            (Ok(tx), Ok(rx)) => TracePair {
                tx,
                rx,
                // Ground truth is unknowable server-side; the verifier
                // only consumes the traces and delays.
                kind: ScenarioKind::Legitimate { user: 0 },
                seed: 0,
                forward_delay: response.forward_delay,
                backward_delay: response.backward_delay,
            },
            _ => {
                self.recorder.add("daemon.probe_trace_invalid", 1);
                self.reject(peer, RejectCode::Refused);
                return;
            }
        };
        // The judged ProbeVerdict (and any restart re-issue) lands in the
        // supervisor's event stream and is routed like every other event.
        match self.sup.resolve_probe(session, &pair) {
            Ok(_verdict) => self.recorder.add("daemon.probe_responses", 1),
            Err(_) => {
                self.recorder.add("daemon.probe_resolve_failures", 1);
                self.reject(peer, RejectCode::Refused);
            }
        }
    }

    fn reject(&mut self, peer: &mut Peer, code: RejectCode) {
        self.stats.rejected_frames += 1;
        peer.conn.queue(&Frame::Reject { code }.encode());
    }

    fn reject_malformed(&mut self, peer: &mut Peer, err: &WireError) {
        let (counter, cause): (&'static str, DisconnectCause) = match err {
            WireError::BadMagic(_) => ("daemon.frames_rejected.magic", DisconnectCause::Malformed),
            WireError::BadVersion(_) => {
                ("daemon.frames_rejected.version", DisconnectCause::Malformed)
            }
            WireError::Oversize { .. } => {
                ("daemon.frames_rejected.oversize", DisconnectCause::Oversize)
            }
            WireError::BadCrc { .. } => ("daemon.frames_rejected.crc", DisconnectCause::Malformed),
            WireError::UnknownType(_) => {
                ("daemon.frames_rejected.type", DisconnectCause::Malformed)
            }
            WireError::Truncated(_) | WireError::TrailingBytes(_) | WireError::BadEnum { .. } => {
                ("daemon.frames_rejected.payload", DisconnectCause::Malformed)
            }
        };
        self.recorder.add(counter, 1);
        self.stats.malformed_disconnects += 1;
        self.recorder.add("daemon.malformed_disconnects", 1);
        self.condemn(peer, cause);
    }

    /// Queues a typed goodbye, releases the peer's sessions and marks the
    /// connection for teardown once its outbound buffer flushes.
    fn condemn(&mut self, peer: &mut Peer, cause: DisconnectCause) {
        peer.conn.queue(&Frame::Goodbye { cause }.encode());
        peer.closing = true;
        self.release_peer_sessions(peer);
    }

    fn release_peer_sessions(&mut self, peer: &mut Peer) {
        let sessions = std::mem::take(&mut peer.sessions);
        for session in sessions {
            self.bound.remove(&session);
            self.ingested.remove(&session);
            self.parked.remove(&session);
            match self.sup.release(session) {
                Ok(()) => {}
                Err(_) => self.recorder.add("daemon.release_failures", 1),
            }
        }
    }

    fn route_events(&mut self) {
        for event in self.sup.drain_events() {
            let session = event.session;
            let (frame, is_verdict, is_shed) = match event.kind {
                SessionEventKind::Verdict(v) => (
                    Some(Frame::Verdict {
                        session,
                        verdict: wire_verdict(&v),
                    }),
                    true,
                    false,
                ),
                SessionEventKind::Shed { reason, verdict } => (
                    Some(Frame::Shed {
                        session,
                        reason,
                        verdict: wire_verdict(&verdict),
                    }),
                    false,
                    true,
                ),
                SessionEventKind::Breaker(transition) => (
                    Some(Frame::Breaker {
                        session,
                        transition: breaker_code(transition),
                    }),
                    false,
                    false,
                ),
                SessionEventKind::ProbeRequested(schedule) => {
                    match serde_json::to_string(&schedule) {
                        Ok(json) => (
                            Some(Frame::ProbeChallenge {
                                session,
                                schedule_json: json.into_bytes(),
                            }),
                            false,
                            false,
                        ),
                        Err(_) => {
                            self.recorder.add("daemon.encode_failures", 1);
                            (None, false, false)
                        }
                    }
                }
                SessionEventKind::Probe(verdict) => match serde_json::to_string(&verdict) {
                    Ok(json) => (
                        Some(Frame::ProbeOutcome {
                            session,
                            verdict_json: json.into_bytes(),
                        }),
                        false,
                        false,
                    ),
                    Err(_) => {
                        self.recorder.add("daemon.encode_failures", 1);
                        (None, false, false)
                    }
                },
            };
            let Some(frame) = frame else { continue };
            let bytes = frame.encode();
            let delivered = if let Some(pid) = self.bound.get(&session) {
                match self.peers.get_mut(pid) {
                    Some(peer) => {
                        peer.conn.queue(&bytes);
                        true
                    }
                    None => self.park(session, bytes),
                }
            } else if self.ingested.contains_key(&session) {
                self.park(session, bytes)
            } else {
                false
            };
            if is_verdict {
                if delivered {
                    self.stats.verdict_frames += 1;
                    self.recorder.add("daemon.verdict_frames", 1);
                } else {
                    self.stats.orphaned_verdicts += 1;
                    self.recorder.add("daemon.orphaned_verdicts", 1);
                }
            }
            if is_shed {
                if delivered {
                    self.stats.shed_frames += 1;
                    self.recorder.add("daemon.shed_frames", 1);
                } else {
                    self.stats.orphaned_sheds += 1;
                    self.recorder.add("daemon.orphaned_sheds", 1);
                }
            }
        }
    }

    fn park(&mut self, session: u64, bytes: Vec<u8>) -> bool {
        let queue = self.parked.entry(session).or_default();
        if queue.len() >= self.config.park_limit {
            queue.pop_front();
            self.stats.park_overflow += 1;
            self.recorder.add("daemon.park_overflow", 1);
        }
        queue.push_back(bytes);
        true
    }

    fn enforce_deadlines(&mut self) {
        let mut expired: Vec<(u64, DisconnectCause)> = Vec::new();
        for (&pid, peer) in &self.peers {
            if peer.closing {
                continue;
            }
            if let Some(since) = peer.partial_since {
                if self.turn.saturating_sub(since) > self.config.read_turns {
                    expired.push((pid, DisconnectCause::SlowRead));
                    continue;
                }
            }
            if self.turn.saturating_sub(peer.last_rx_turn) > self.config.idle_turns {
                expired.push((pid, DisconnectCause::IdleTimeout));
            }
        }
        for (pid, cause) in expired {
            let Some(mut peer) = self.peers.remove(&pid) else {
                continue;
            };
            match cause {
                DisconnectCause::SlowRead => {
                    self.stats.slow_read_disconnects += 1;
                    self.recorder.add("daemon.slow_read_disconnects", 1);
                }
                _ => {
                    self.stats.idle_disconnects += 1;
                    self.recorder.add("daemon.idle_disconnects", 1);
                }
            }
            self.condemn(&mut peer, cause);
            self.peers.insert(pid, peer);
        }
    }

    fn checkpoint(&mut self) {
        let snap = self.sup.snapshot();
        let now = self.sup.tick_now();
        if let Some(store) = self.store.as_mut() {
            match store.commit(now, &snap) {
                Ok(CommitOutcome::Committed { generation }) => {
                    self.final_generation = Some(generation);
                    self.recorder.add("daemon.checkpoints", 1);
                }
                Ok(CommitOutcome::Retrying { .. }) => {
                    self.recorder.add("daemon.checkpoint_retries", 1);
                }
                Ok(CommitOutcome::GaveUp { .. }) => {
                    self.recorder.add("daemon.checkpoint_gave_up", 1);
                }
                Err(_) => self.recorder.add("daemon.checkpoint_failures", 1),
            }
        }
    }

    fn finish_drain(&mut self) {
        self.checkpoint();
        let pids: Vec<u64> = self.peers.keys().copied().collect();
        for pid in pids {
            let Some(mut peer) = self.peers.remove(&pid) else {
                continue;
            };
            if !peer.closing {
                peer.conn.queue(
                    &Frame::Goodbye {
                        cause: DisconnectCause::Draining,
                    }
                    .encode(),
                );
                peer.closing = true;
                // Sessions are *not* released: they live on in the final
                // checkpoint for the next process to restore.
                for session in std::mem::take(&mut peer.sessions) {
                    self.bound.remove(&session);
                }
            }
            self.peers.insert(pid, peer);
        }
        self.drained = true;
        self.recorder.mark("daemon.drain", "complete");
    }

    fn flush_and_reap(&mut self) -> Result<()> {
        let pids: Vec<u64> = self.peers.keys().copied().collect();
        for pid in pids {
            let Some(mut peer) = self.peers.remove(&pid) else {
                continue;
            };
            let flushed = match peer.conn.flush() {
                Ok(done) => done,
                Err(_) => {
                    self.recorder.add("daemon.flush_failures", 1);
                    self.release_peer_sessions(&mut peer);
                    continue; // drop the peer
                }
            };
            if peer.closing && flushed {
                continue; // goodbye delivered; drop the peer
            }
            self.peers.insert(pid, peer);
        }
        Ok(())
    }

    fn flight_trigger(&self, reason: &str) {
        if let Some(flight) = &self.flight {
            self.recorder.mark("daemon.flight_trigger", reason);
            flight.trigger(reason);
        }
    }
}

/// Flattens a core [`ClipVerdict`] into its wire form.
pub fn wire_verdict(v: &ClipVerdict) -> WireVerdict {
    let (disposition, reason_code, reason_detail, score) = match &v.outcome {
        ClipOutcome::Conclusive(d) => (u8::from(!d.accepted), 0u8, 0.0, d.score),
        ClipOutcome::Inconclusive(reason) => {
            let (code, detail) = match reason {
                InconclusiveReason::TooShort { len } => (1u8, *len as f64),
                InconclusiveReason::Flatline => (2, 0.0),
                InconclusiveReason::ExcessiveGaps { gap_fraction } => (3, *gap_fraction),
                InconclusiveReason::LongFreeze { run } => (4, *run as f64),
                InconclusiveReason::LowEffectiveRate { rate } => (5, *rate),
                InconclusiveReason::NonFinite { count } => (6, *count as f64),
                InconclusiveReason::Withheld => (7, 0.0),
            };
            (2u8, code, detail, 0.0)
        }
    };
    WireVerdict {
        clip_index: v.clip_index as u64,
        disposition,
        reason_code,
        reason_detail,
        score,
        status: match v.status {
            SessionStatus::Gathering => 0,
            SessionStatus::Trusted => 1,
            SessionStatus::Alert => 2,
        },
        retrigger: v.retrigger,
    }
}

fn breaker_code(t: BreakerTransition) -> u8 {
    match t {
        BreakerTransition::Tripped => 1,
        BreakerTransition::Probing => 2,
        BreakerTransition::Restored => 3,
    }
}
