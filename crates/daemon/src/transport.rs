//! The sanctioned socket boundary.
//!
//! This module is the only place in the workspace (together with the
//! load-generator client in [`crate::client`]) allowed to touch
//! `std::net` — the `no-net` lumen-lint rule enforces the boundary, the
//! same way `no-fs` pins filesystem I/O to the checkpoint store's dir
//! backend. Everything above this layer speaks in byte buffers and typed
//! frames, so the daemon core stays a pure, deterministic state machine
//! that unit tests and the chaos soak can drive without a kernel in the
//! loop being anything but a loopback byte pipe.
//!
//! All sockets are non-blocking: the daemon's single-threaded event loop
//! must never park inside the kernel on one peer while another starves.

use crate::{DaemonError, Result};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

/// What one non-blocking read attempt produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadEvent {
    /// `n` bytes were read into the buffer.
    Data(usize),
    /// Nothing available right now (`WouldBlock`).
    Idle,
    /// The peer closed the connection (EOF or a hard error).
    Closed,
}

fn io_err(context: &str, e: &std::io::Error) -> DaemonError {
    DaemonError::Io(format!("{context}: {e}"))
}

/// A non-blocking TCP listener bound to an ephemeral loopback port.
#[derive(Debug)]
pub struct Listener {
    inner: TcpListener,
    port: u16,
}

impl Listener {
    /// Binds `127.0.0.1:0` (kernel-assigned port) and switches the
    /// listener non-blocking.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonError::Io`] when the bind or the non-blocking
    /// switch fails.
    pub fn bind_loopback() -> Result<Self> {
        let inner = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| io_err("bind", &e))?;
        inner
            .set_nonblocking(true)
            .map_err(|e| io_err("set_nonblocking", &e))?;
        let port = inner
            .local_addr()
            .map_err(|e| io_err("local_addr", &e))?
            .port();
        Ok(Listener { inner, port })
    }

    /// The kernel-assigned port clients connect to.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Accepts one pending connection, `None` when the backlog is empty.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonError::Io`] for accept failures other than an
    /// empty backlog.
    pub fn accept(&self) -> Result<Option<Conn>> {
        match self.inner.accept() {
            Ok((stream, _addr)) => Conn::from_stream(stream).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(io_err("accept", &e)),
        }
    }
}

/// One non-blocking TCP connection with an explicit outbound buffer.
///
/// Writes go through [`Conn::queue`] + [`Conn::flush`], so a peer that
/// stops reading backpressures into this buffer (visible, bounded by the
/// daemon's accounting) instead of blocking the event loop.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    outbound: Vec<u8>,
}

impl Conn {
    /// Wraps an already-connected stream (the accept path here, the
    /// connect path in [`crate::client`]).
    pub(crate) fn from_stream(stream: TcpStream) -> Result<Self> {
        stream
            .set_nonblocking(true)
            .map_err(|e| io_err("set_nonblocking", &e))?;
        // Frames are far smaller than an MTU; Nagle would batch them
        // across turns and skew the loopback latency measurements.
        stream
            .set_nodelay(true)
            .map_err(|e| io_err("nodelay", &e))?;
        Ok(Conn {
            stream,
            outbound: Vec::new(),
        })
    }

    /// One non-blocking read into `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonError::Io`] only for unexpected I/O failures;
    /// `WouldBlock` is [`ReadEvent::Idle`] and reset-by-peer is
    /// [`ReadEvent::Closed`].
    pub fn read_chunk(&mut self, buf: &mut [u8]) -> Result<ReadEvent> {
        match self.stream.read(buf) {
            Ok(0) => Ok(ReadEvent::Closed),
            Ok(n) => Ok(ReadEvent::Data(n)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(ReadEvent::Idle),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(ReadEvent::Idle),
            Err(e)
                if e.kind() == std::io::ErrorKind::ConnectionReset
                    || e.kind() == std::io::ErrorKind::BrokenPipe =>
            {
                Ok(ReadEvent::Closed)
            }
            Err(e) => Err(io_err("read", &e)),
        }
    }

    /// Queues bytes for transmission; nothing touches the socket yet.
    pub fn queue(&mut self, bytes: &[u8]) {
        self.outbound.extend_from_slice(bytes);
    }

    /// Bytes queued but not yet accepted by the kernel.
    pub fn pending_bytes(&self) -> usize {
        self.outbound.len()
    }

    /// Pushes queued bytes into the socket; `true` once the queue is
    /// empty. A peer that reads too slowly leaves bytes queued — that is
    /// backpressure, not an error.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonError::Io`] for hard write failures (a reset peer
    /// reports `Closed`-like errors via the next read instead).
    pub fn flush(&mut self) -> Result<bool> {
        while !self.outbound.is_empty() {
            match self.stream.write(&self.outbound) {
                Ok(0) => break,
                Ok(n) => {
                    self.outbound.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::ConnectionReset
                        || e.kind() == std::io::ErrorKind::BrokenPipe =>
                {
                    // The peer is gone; drop the bytes, the read path will
                    // report Closed and reap the connection.
                    self.outbound.clear();
                    break;
                }
                Err(e) => return Err(io_err("write", &e)),
            }
        }
        Ok(self.outbound.is_empty())
    }
}
