//! The load-generator client: the second sanctioned `std::net` site
//! (with [`crate::transport`]) under the `no-net` lint rule.
//!
//! [`DaemonClient`] is a thin, non-blocking protocol adapter — connect,
//! send typed frames, poll typed frames back. All *traffic policy* (what
//! to send when, how to replay a [`lumen_chat::feed::SampleFeed`], how to
//! answer probe challenges) lives in the experiments that drive it; the
//! client only guarantees that bytes on the socket are well-formed frames
//! and that everything received is surfaced exactly once, in order.

use crate::transport::{Conn, ReadEvent};
use crate::wire::{Decoder, DisconnectCause, Frame};
use crate::{DaemonError, Result};
use std::net::TcpStream;

/// A non-blocking client connection to a `lumend` daemon.
pub struct DaemonClient {
    conn: Conn,
    decoder: Decoder,
    session: Option<u64>,
    goodbye: Option<DisconnectCause>,
    closed: bool,
}

impl DaemonClient {
    /// Connects to a daemon on `127.0.0.1:port`.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonError::Io`] when the connect fails.
    pub fn connect(port: u16) -> Result<Self> {
        let stream = TcpStream::connect(("127.0.0.1", port))
            .map_err(|e| DaemonError::Io(format!("connect: {e}")))?;
        Ok(DaemonClient {
            conn: Conn::from_stream(stream)?,
            decoder: Decoder::new(1 << 24),
            session: None,
            goodbye: None,
            closed: false,
        })
    }

    /// The session this client considers bound (set by the caller after a
    /// `Welcome`/`Resumed`, cleared on `Bye`).
    pub fn session(&self) -> Option<u64> {
        self.session
    }

    /// Records the bound session id.
    pub fn set_session(&mut self, session: Option<u64>) {
        self.session = session;
    }

    /// The typed cause of the daemon's goodbye, if one arrived.
    pub fn goodbye(&self) -> Option<DisconnectCause> {
        self.goodbye
    }

    /// `true` once the daemon closed the connection (goodbye or EOF).
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Encodes and sends one frame (queued, then flushed as far as the
    /// kernel accepts).
    ///
    /// # Errors
    ///
    /// Returns [`DaemonError::Io`] for hard transport failures.
    pub fn send(&mut self, frame: &Frame) -> Result<()> {
        self.conn.queue(&frame.encode());
        match self.conn.flush() {
            Ok(_) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Sends raw bytes verbatim — the fault-plan path for hostile
    /// traffic (garbage, torn frames, bit flips, oversize headers).
    ///
    /// # Errors
    ///
    /// Returns [`DaemonError::Io`] for hard transport failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<()> {
        self.conn.queue(bytes);
        match self.conn.flush() {
            Ok(_) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Reads whatever the daemon has sent and decodes it into frames, in
    /// arrival order. A `Goodbye` is recorded (see
    /// [`DaemonClient::goodbye`]) and still returned.
    ///
    /// # Errors
    ///
    /// Returns [`DaemonError::Wire`] when the daemon's byte stream is
    /// corrupt (never expected on loopback) and [`DaemonError::Io`] for
    /// hard transport failures.
    pub fn poll(&mut self) -> Result<Vec<Frame>> {
        let mut buf = [0u8; 4096];
        loop {
            match self.conn.read_chunk(&mut buf)? {
                ReadEvent::Data(n) => self.decoder.push(&buf[..n]),
                ReadEvent::Idle => break,
                ReadEvent::Closed => {
                    self.closed = true;
                    break;
                }
            }
        }
        let mut frames = Vec::new();
        loop {
            match self.decoder.next_frame() {
                Ok(Some(frame)) => {
                    if let Frame::Goodbye { cause } = &frame {
                        self.goodbye = Some(*cause);
                        self.closed = true;
                    }
                    frames.push(frame);
                }
                Ok(None) => break,
                Err(e) => return Err(DaemonError::Wire(e)),
            }
        }
        Ok(frames)
    }
}
