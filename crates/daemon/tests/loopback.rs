//! End-to-end loopback integration: a real `lumend` daemon on a real
//! kernel socket, driven in lockstep by [`DaemonClient`]s in the same
//! thread. Covers the happy path (admission → samples → verdicts →
//! metrics), every typed-disconnect path (malformed, oversize, abuse,
//! idle, slowloris), an active probe round over the wire, and a graceful
//! drain — asserting at each step that the wire accounting identity
//! `verdict_total == served && shed_total == shed` holds.

use lumen_chat::scenario::ScenarioBuilder;
use lumen_chat::trace::TracePair;
use lumen_core::detector::Detector;
use lumen_core::quality::QualityGate;
use lumen_core::stream::StreamingDetector;
use lumen_core::Config;
use lumen_daemon::wire::{self, DisconnectCause, Frame, RejectCode};
use lumen_daemon::{Daemon, DaemonClient, DaemonConfig};
use lumen_probe::inject::ProbeInjector;
use lumen_probe::{ChallengeSchedule, ProbeConfig, ProbePolicy};
use lumen_serve::{CheckpointStore, MemStorage, ServeConfig, ShedReason, StoreConfig, Supervisor};
use std::sync::OnceLock;

fn detector() -> Detector {
    static DET: OnceLock<Detector> = OnceLock::new();
    DET.get_or_init(|| {
        let chats = ScenarioBuilder::default();
        let training: Vec<TracePair> = (0..10)
            .map(|i| chats.legitimate(0, 82_000 + i).expect("training scenario"))
            .collect();
        Detector::train_from_traces(&training, Config::default()).expect("training")
    })
    .clone()
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        max_sessions: 4,
        queue_clips: 4,
        budget_clips: 64,
        budget_period_ticks: 30,
        deadline_ticks: 1_000,
        ..ServeConfig::default()
    }
}

/// A fresh daemon over a clean in-memory store. `gated` arms the quality
/// gate (the probe trigger needs abstaining clips).
fn daemon_with(config: DaemonConfig, gated: bool) -> Daemon<MemStorage> {
    let det = detector();
    let sup = Supervisor::new(serve_config())
        .expect("supervisor")
        .with_flight(lumen_obs::FlightConfig::default());
    let store = CheckpointStore::new(MemStorage::new(), StoreConfig::default()).expect("store");
    let factory = Box::new(move |_| {
        StreamingDetector::new(det.clone(), 15.0, 3).map(|s| {
            if gated {
                s.with_quality_gate(QualityGate::default())
            } else {
                s
            }
        })
    });
    Daemon::new(sup, factory, config, Some(store)).expect("daemon")
}

/// Runs `turns` event-loop turns, polling every client after each turn;
/// returns the frames each client received, in order.
fn pump(
    daemon: &mut Daemon<MemStorage>,
    clients: &mut [DaemonClient],
    turns: usize,
) -> Vec<Vec<Frame>> {
    let mut inboxes = vec![Vec::new(); clients.len()];
    for _ in 0..turns {
        daemon.turn_once().expect("turn");
        for (inbox, client) in inboxes.iter_mut().zip(clients.iter_mut()) {
            inbox.extend(client.poll().expect("poll"));
        }
    }
    inboxes
}

/// Connects and completes a Hello → Welcome handshake.
fn admit(daemon: &mut Daemon<MemStorage>, turns: usize) -> DaemonClient {
    let mut client = DaemonClient::connect(daemon.port()).expect("connect");
    client.send(&Frame::Hello).expect("hello");
    let frames = pump(daemon, std::slice::from_mut(&mut client), turns);
    let session = frames[0]
        .iter()
        .find_map(|f| match f {
            Frame::Welcome { session } => Some(*session),
            _ => None,
        })
        .expect("a Welcome");
    client.set_session(Some(session));
    client
}

fn assert_accounting(daemon: &Daemon<MemStorage>) {
    let wire = daemon.wire_stats();
    let serve = daemon.serve_stats();
    assert_eq!(
        wire.verdict_total(),
        serve.served_clips,
        "every served clip crossed the wire or was parked/orphaned-counted"
    );
    assert_eq!(
        wire.shed_total(),
        serve.shed_clips,
        "every shed clip crossed the wire or was parked/orphaned-counted"
    );
    assert_eq!(
        serve.served_clips + serve.shed_clips,
        serve.offered_clips,
        "served + shed == offered"
    );
}

#[test]
fn admission_samples_and_verdicts_flow_end_to_end() {
    let mut daemon = daemon_with(DaemonConfig::default(), false);
    let mut clients = vec![admit(&mut daemon, 5), admit(&mut daemon, 5)];
    let s0 = clients[0].session().expect("bound");
    let s1 = clients[1].session().expect("bound");
    assert_ne!(s0, s1, "sessions are distinct");

    // One clip per client, paced one sample per turn (the daemon's
    // real-time cadence), from per-client legitimate scenarios.
    let chats = ScenarioBuilder::default();
    let pairs: Vec<TracePair> = (0..2)
        .map(|i| chats.legitimate(0, 83_000 + i).expect("scenario"))
        .collect();
    let steps = pairs[0].tx.samples().len();
    let mut inboxes = vec![Vec::new(); clients.len()];
    for step in 0..steps {
        for (client, pair) in clients.iter_mut().zip(&pairs) {
            let session = client.session().expect("bound");
            client
                .send(&Frame::Sample {
                    session,
                    tx: pair.tx.samples()[step],
                    rx: pair.rx.samples()[step],
                })
                .expect("sample");
        }
        for (inbox, got) in inboxes.iter_mut().zip(pump(&mut daemon, &mut clients, 1)) {
            inbox.extend(got);
        }
    }
    // Let queued clips clear the detection budget.
    for (inbox, got) in inboxes.iter_mut().zip(pump(&mut daemon, &mut clients, 80)) {
        inbox.extend(got);
    }

    for (i, client) in clients.iter().enumerate() {
        let session = client.session().expect("bound");
        let verdicts: Vec<_> = inboxes[i]
            .iter()
            .filter_map(|f| match f {
                Frame::Verdict {
                    session: s,
                    verdict,
                } if *s == session => Some(verdict),
                _ => None,
            })
            .collect();
        assert!(
            !verdicts.is_empty(),
            "client {i} saw a verdict, got {:?}",
            inboxes[i]
        );
        assert_eq!(verdicts[0].clip_index, 0, "first verdict is clip 0");
    }

    // Ping and metrics round-trip on the same connections.
    clients[0]
        .send(&Frame::Ping { nonce: 0xBEEF })
        .expect("ping");
    clients[0]
        .send(&Frame::MetricsRequest)
        .expect("metrics req");
    let inboxes = pump(&mut daemon, &mut clients, 3);
    assert!(
        inboxes[0]
            .iter()
            .any(|f| matches!(f, Frame::Pong { nonce: 0xBEEF })),
        "pong echoes the nonce"
    );
    let metrics = inboxes[0]
        .iter()
        .find_map(|f| match f {
            Frame::Metrics { json } => Some(json.clone()),
            _ => None,
        })
        .expect("a metrics frame");
    let metrics = String::from_utf8(metrics).expect("metrics endpoint emits UTF-8");
    let reply: serde::Value =
        serde_json::from_str(&metrics).expect("metrics endpoint emits JSON");
    let serde::Value::Object(fields) = &reply else {
        panic!("metrics reply is not an object");
    };
    let snap_value = fields
        .iter()
        .find_map(|(k, v)| (k == "metrics").then_some(v))
        .expect("reply carries a metrics field");
    let parsed = <lumen_obs::Snapshot as serde::Deserialize>::deserialize(snap_value)
        .expect("metrics field is a registry snapshot");
    assert!(
        parsed.counters.iter().any(|c| c.name == "serve.served"),
        "snapshot carries serve counters"
    );
    let shards_value = fields
        .iter()
        .find_map(|(k, v)| (k == "shards").then_some(v))
        .expect("reply carries a shards field");
    let serde::Value::Array(rows) = shards_value else {
        panic!("shards field is not an array");
    };
    assert_eq!(rows.len(), 1, "a single daemon reports exactly one shard");
    let shard = <lumen_fleet::ShardBreakdown as serde::Deserialize>::deserialize(&rows[0])
        .expect("shard rows parse as breakdowns");
    assert_eq!(shard.shard, 0);
    assert!(shard.served > 0, "shard breakdown carries serve counts");

    assert!(daemon.serve_stats().served_clips >= 2, "both clips served");
    assert_accounting(&daemon);
}

#[test]
fn malformed_bytes_get_a_typed_goodbye_not_a_panic() {
    let mut daemon = daemon_with(DaemonConfig::default(), false);
    let mut client = DaemonClient::connect(daemon.port()).expect("connect");
    client
        .send_raw(b"GETX /index.html HTTP/1.1\r\n\r\n")
        .expect("garbage");
    pump(&mut daemon, std::slice::from_mut(&mut client), 5);
    assert_eq!(client.goodbye(), Some(DisconnectCause::Malformed));
    assert!(client.is_closed());
    assert_eq!(daemon.wire_stats().malformed_disconnects, 1);

    // The daemon survives and still admits honest clients.
    let honest = admit(&mut daemon, 5);
    assert!(honest.session().is_some());
}

#[test]
fn oversize_header_disconnects_before_the_body_arrives() {
    let config = DaemonConfig {
        max_frame_len: 256,
        ..DaemonConfig::default()
    };
    let mut daemon = daemon_with(config, false);
    let mut client = DaemonClient::connect(daemon.port()).expect("connect");
    // A well-formed header promising a 16 MiB payload — and not a single
    // body byte behind it. The cap must fire from the header alone.
    let mut header = Vec::new();
    header.extend_from_slice(&wire::MAGIC);
    header.extend_from_slice(&wire::WIRE_VERSION.to_le_bytes());
    header.push(0x01);
    header.push(0);
    header.extend_from_slice(&(16u32 << 20).to_le_bytes());
    client.send_raw(&header).expect("oversize header");
    pump(&mut daemon, std::slice::from_mut(&mut client), 5);
    assert_eq!(client.goodbye(), Some(DisconnectCause::Oversize));
    assert_eq!(daemon.wire_stats().malformed_disconnects, 1);
}

#[test]
fn flooding_is_rate_limited_then_disconnected_for_abuse() {
    let config = DaemonConfig {
        bucket_capacity: 4,
        bucket_refill: 0.0,
        abuse_disconnect_after: 4,
        ..DaemonConfig::default()
    };
    let mut daemon = daemon_with(config, false);
    let mut client = DaemonClient::connect(daemon.port()).expect("connect");
    for nonce in 0..20u64 {
        client.send(&Frame::Ping { nonce }).expect("ping");
    }
    let inboxes = pump(&mut daemon, std::slice::from_mut(&mut client), 5);
    let pongs = inboxes[0]
        .iter()
        .filter(|f| matches!(f, Frame::Pong { .. }))
        .count();
    let rejects = inboxes[0]
        .iter()
        .filter(|f| {
            matches!(
                f,
                Frame::Reject {
                    code: RejectCode::RateLimited
                }
            )
        })
        .count();
    assert_eq!(pongs, 4, "exactly the burst capacity is served");
    assert!(rejects >= 1, "over-budget frames are refused, typed");
    assert_eq!(client.goodbye(), Some(DisconnectCause::RateLimitAbuse));
    assert_eq!(daemon.wire_stats().abuse_disconnects, 1);
    assert!(daemon.wire_stats().rate_limited >= 4);
}

#[test]
fn idle_and_slowloris_deadlines_fire_typed() {
    let config = DaemonConfig {
        idle_turns: 6,
        read_turns: 3,
        ..DaemonConfig::default()
    };
    let mut daemon = daemon_with(config, false);
    // Peer A connects and says nothing at all.
    let mut idle = DaemonClient::connect(daemon.port()).expect("connect");
    // Peer B trickles half a header and then stalls — a slowloris.
    let mut slow = DaemonClient::connect(daemon.port()).expect("connect");
    slow.send_raw(&wire::MAGIC[..3]).expect("torn prefix");
    let mut clients = [idle, slow];
    pump(&mut daemon, &mut clients, 12);
    [idle, slow] = clients;
    assert_eq!(slow.goodbye(), Some(DisconnectCause::SlowRead));
    assert_eq!(idle.goodbye(), Some(DisconnectCause::IdleTimeout));
    assert_eq!(daemon.wire_stats().idle_disconnects, 1);
    assert_eq!(daemon.wire_stats().slow_read_disconnects, 1);
}

#[test]
fn probe_challenge_and_response_round_trip_the_wire() {
    let mut daemon =
        daemon_with(DaemonConfig::default(), true).with_probe(ProbePolicy::default(), 0xCAFE);
    let mut client = admit(&mut daemon, 5);
    let session = client.session().expect("bound");

    // A flatline clip: the quality gate abstains, which is the probe
    // director's trigger.
    let mut inbox = Vec::new();
    for _ in 0..150 {
        client
            .send(&Frame::Sample {
                session,
                tx: 100.0,
                rx: 42.0,
            })
            .expect("sample");
        inbox.extend(pump(&mut daemon, std::slice::from_mut(&mut client), 1).remove(0));
    }
    inbox.extend(pump(&mut daemon, std::slice::from_mut(&mut client), 80).remove(0));
    let schedule_json = inbox
        .iter()
        .find_map(|f| match f {
            Frame::ProbeChallenge {
                session: s,
                schedule_json,
            } if *s == session => Some(schedule_json.clone()),
            _ => None,
        })
        .expect("an abstaining clip raises a wire probe challenge");
    let schedule_json = String::from_utf8(schedule_json).expect("schedule is UTF-8");
    let schedule: ChallengeSchedule =
        serde_json::from_str(&schedule_json).expect("schedule JSON decodes");

    // The client renders the challenge; a live face reflects it.
    let pair = ProbeInjector::new(schedule)
        .armed_scenario(
            ScenarioBuilder::default()
                .with_session(
                    ProbeConfig::default()
                        .session_config(1.5, &lumen_chat::session::SessionConfig::default()),
                )
                .with_static_caller(120.0),
        )
        .legitimate(0, 77_000)
        .expect("armed scenario");
    client
        .send(&Frame::ProbeResponse {
            session,
            response: lumen_daemon::WireTrace {
                sample_rate: pair.tx.sample_rate(),
                forward_delay: pair.forward_delay,
                backward_delay: pair.backward_delay,
                tx: pair.tx.samples().to_vec(),
                rx: pair.rx.samples().to_vec(),
            },
        })
        .expect("probe response");
    let inboxes = pump(&mut daemon, std::slice::from_mut(&mut client), 5);
    let verdict_json = inboxes[0]
        .iter()
        .find_map(|f| match f {
            Frame::ProbeOutcome {
                session: s,
                verdict_json,
            } if *s == session => Some(verdict_json.clone()),
            _ => None,
        })
        .expect("a probe outcome comes back");
    let verdict_json = String::from_utf8(verdict_json).expect("verdict is UTF-8");
    let verdict: lumen_probe::ProbeVerdict =
        serde_json::from_str(&verdict_json).expect("verdict JSON decodes");
    assert_eq!(
        verdict.decision,
        lumen_probe::ProbeDecision::Pass,
        "a faithful reflection passes: {verdict:?}"
    );
}

#[test]
fn drain_refuses_new_work_flushes_verdicts_and_checkpoints() {
    let mut daemon = daemon_with(DaemonConfig::default(), false);
    let mut client = admit(&mut daemon, 5);
    let session = client.session().expect("bound");
    let pair = ScenarioBuilder::default()
        .legitimate(0, 84_000)
        .expect("scenario");
    let mut inbox = Vec::new();
    for step in 0..pair.tx.samples().len() {
        client
            .send(&Frame::Sample {
                session,
                tx: pair.tx.samples()[step],
                rx: pair.rx.samples()[step],
            })
            .expect("sample");
        inbox.extend(pump(&mut daemon, std::slice::from_mut(&mut client), 1).remove(0));
    }

    daemon.begin_drain();
    assert!(daemon.is_draining());

    // An established connection asking for a new session is refused with
    // the draining shed reason; a brand-new connection gets a goodbye.
    client.send(&Frame::Hello).expect("hello during drain");
    let mut newcomer = DaemonClient::connect(daemon.port()).expect("connect during drain");
    let mut clients = [client, newcomer];
    let mut inboxes = pump(&mut daemon, &mut clients, 5);
    [client, newcomer] = clients;
    assert!(
        inboxes[0].iter().any(|f| matches!(
            f,
            Frame::Refused {
                reason: ShedReason::Draining
            }
        )),
        "in-band admission is refused while draining: {:?}",
        inboxes[0]
    );
    assert_eq!(newcomer.goodbye(), Some(DisconnectCause::Draining));

    // The drain completes: pending clips flush, a final checkpoint
    // commits, established clients get a typed farewell.
    let report = daemon.drain(10_000).expect("drain completes");
    assert!(daemon.is_drained());
    assert!(
        report.final_generation.is_some(),
        "drain committed a final checkpoint"
    );
    inbox.extend(pump(&mut daemon, std::slice::from_mut(&mut client), 2).remove(0));
    inbox.extend(inboxes.swap_remove(0));
    assert!(
        inbox
            .iter()
            .any(|f| matches!(f, Frame::Verdict { session: s, .. } if *s == session)),
        "the ingested clip's verdict flushed before shutdown"
    );
    assert_eq!(client.goodbye(), Some(DisconnectCause::Draining));
    assert!(daemon.wire_stats().refused_admissions >= 1);
    assert_accounting(&daemon);
}
