//! Adversarial fuzz for the daemon wire codec, in the spirit of the
//! checkpoint store's `store_fuzz`: any torn prefix leaves the decoder
//! *waiting* (a stream decoder must tolerate partial delivery), any
//! single-byte flip fails with a typed error or keeps waiting — never a
//! silently different frame, never a panic — and arbitrary garbage never
//! decodes by accident. On top of the corruption laws, the round-trip law
//! holds for every frame type with arbitrary field values.

use lumen_daemon::wire::{
    self, Decoder, DisconnectCause, Frame, RejectCode, WireTrace, WireVerdict,
};
use lumen_serve::ShedReason;
use proptest::prelude::*;

/// All `ShedReason` variants, indexed for strategy selection.
fn shed_reason(idx: u8) -> ShedReason {
    match idx % 7 {
        0 => ShedReason::QueueFull,
        1 => ShedReason::DeadlineExceeded,
        2 => ShedReason::BreakerOpen,
        3 => ShedReason::DetectionFailed,
        4 => ShedReason::CapacityExhausted,
        5 => ShedReason::SessionClosed,
        _ => ShedReason::Draining,
    }
}

fn disconnect_cause(idx: u8) -> DisconnectCause {
    match idx % 6 {
        0 => DisconnectCause::Oversize,
        1 => DisconnectCause::Malformed,
        2 => DisconnectCause::RateLimitAbuse,
        3 => DisconnectCause::IdleTimeout,
        4 => DisconnectCause::SlowRead,
        _ => DisconnectCause::Draining,
    }
}

fn reject_code(idx: u8) -> RejectCode {
    match idx % 4 {
        0 => RejectCode::UnknownSession,
        1 => RejectCode::RateLimited,
        2 => RejectCode::Draining,
        _ => RejectCode::Refused,
    }
}

/// One frame of the `kind`-th type (of 21), fields drawn from the
/// remaining inputs. Floats stay finite so `PartialEq` round-trip
/// comparison is meaningful.
#[allow(clippy::too_many_arguments)]
fn frame_for(
    kind: u8,
    session: u64,
    code: u8,
    flag: bool,
    x: f64,
    y: f64,
    bytes: Vec<u8>,
    samples: Vec<f64>,
) -> Frame {
    let verdict = WireVerdict {
        clip_index: session.rotate_left(17),
        disposition: code % 3,
        reason_code: code % 8,
        reason_detail: x,
        score: y,
        status: code % 3,
        retrigger: flag,
    };
    let trace = WireTrace {
        sample_rate: 1.0 + x.abs(),
        forward_delay: x.abs(),
        backward_delay: y.abs(),
        tx: samples.clone(),
        rx: samples.iter().map(|s| s * 0.5).collect(),
    };
    match kind % 21 {
        0 => Frame::Hello,
        1 => Frame::Resume { session },
        2 => Frame::Sample {
            session,
            tx: x,
            rx: y,
        },
        3 => Frame::Bye { session },
        4 => Frame::Ping { nonce: session },
        5 => Frame::MetricsRequest,
        6 => Frame::ProbeResponse {
            session,
            response: trace,
        },
        7 => Frame::Shutdown,
        8 => Frame::Welcome { session },
        9 => Frame::Refused {
            reason: shed_reason(code),
        },
        10 => Frame::Resumed {
            session,
            next_sample: session.rotate_right(9),
        },
        11 => Frame::ResumeRejected { session },
        12 => Frame::Verdict { session, verdict },
        13 => Frame::Shed {
            session,
            reason: shed_reason(code),
            verdict,
        },
        14 => Frame::Breaker {
            session,
            transition: 1 + code % 3,
        },
        15 => Frame::ProbeChallenge {
            session,
            schedule_json: bytes,
        },
        16 => Frame::ProbeOutcome {
            session,
            verdict_json: bytes,
        },
        17 => Frame::Metrics { json: bytes },
        18 => Frame::Pong { nonce: session },
        19 => Frame::Reject {
            code: reject_code(code),
        },
        _ => Frame::Goodbye {
            cause: disconnect_cause(code),
        },
    }
}

proptest! {
    /// Round-trip law: every frame type, with arbitrary finite field
    /// values, decodes back to exactly itself and leaves the decoder
    /// empty.
    #[test]
    fn every_frame_type_round_trips(
        kind in 0u8..21,
        session in any::<u64>(),
        code in any::<u8>(),
        flag in any::<bool>(),
        x in -1.0e6f64..1.0e6,
        y in -1.0e6f64..1.0e6,
        bytes in prop::collection::vec(any::<u8>(), 0..128),
        samples in prop::collection::vec(-8.0f64..8.0, 0..64),
    ) {
        let frame = frame_for(kind, session, code, flag, x, y, bytes, samples);
        let mut decoder = Decoder::new(1 << 20);
        decoder.push(&frame.encode());
        let decoded = decoder.next_frame();
        prop_assert_eq!(decoded.as_ref().ok().and_then(|f| f.as_ref()), Some(&frame));
        prop_assert_eq!(decoder.buffered(), 0);
        prop_assert!(matches!(decoder.next_frame(), Ok(None)));
    }

    /// A torn prefix of any frame leaves the decoder waiting for the rest
    /// of the bytes — never an error, never a partial frame.
    #[test]
    fn any_torn_prefix_waits(
        kind in 0u8..21,
        session in any::<u64>(),
        code in any::<u8>(),
        cut in any::<usize>(),
        bytes in prop::collection::vec(any::<u8>(), 0..64),
        samples in prop::collection::vec(-8.0f64..8.0, 0..32),
    ) {
        let frame = frame_for(kind, session, code, false, 0.25, -0.75, bytes, samples);
        let encoded = frame.encode();
        let cut = cut % encoded.len();
        let mut decoder = Decoder::new(1 << 20);
        decoder.push(&encoded[..cut]);
        prop_assert!(matches!(decoder.next_frame(), Ok(None)));
        // Delivering the tail completes the frame: a torn write costs
        // latency, never correctness.
        decoder.push(&encoded[cut..]);
        prop_assert_eq!(decoder.next_frame().ok().flatten(), Some(frame));
    }

    /// Flipping any single byte of an encoded frame — magic, version,
    /// type, length, payload or CRC trailer — never yields a decoded
    /// frame: the decoder reports a typed error, or waits for bytes a
    /// corrupted length field now promises. It never panics and never
    /// produces a silently different frame.
    #[test]
    fn any_single_byte_flip_never_decodes(
        kind in 0u8..21,
        session in any::<u64>(),
        code in any::<u8>(),
        index in any::<usize>(),
        mask in 1u8..,
        bytes in prop::collection::vec(any::<u8>(), 0..64),
        samples in prop::collection::vec(-8.0f64..8.0, 0..32),
    ) {
        let frame = frame_for(kind, session, code, true, 1.5, -2.5, bytes, samples);
        let mut encoded = frame.encode();
        let index = index % encoded.len();
        encoded[index] ^= mask;
        let mut decoder = Decoder::new(1 << 20);
        decoder.push(&encoded);
        prop_assert!(!matches!(decoder.next_frame(), Ok(Some(_))));
    }

    /// Arbitrary garbage that does not open with the magic never decodes
    /// — and draining the decoder over it never panics.
    #[test]
    fn garbage_never_decodes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assume!(bytes.len() < 4 || bytes[..4] != wire::MAGIC);
        let mut decoder = Decoder::new(1 << 20);
        decoder.push(&bytes);
        prop_assert!(!matches!(decoder.next_frame(), Ok(Some(_))));
    }

    /// A multi-frame stream delivered in arbitrarily misaligned chunks
    /// (including byte-at-a-time) reassembles to exactly the sent
    /// sequence, in order.
    #[test]
    fn chunked_streams_reassemble_in_order(
        kinds in prop::collection::vec(0u8..21, 1..5),
        session in any::<u64>(),
        code in any::<u8>(),
        chunk in 1usize..17,
        samples in prop::collection::vec(-8.0f64..8.0, 0..16),
    ) {
        let frames: Vec<Frame> = kinds
            .iter()
            .enumerate()
            .map(|(i, k)| {
                frame_for(*k, session ^ i as u64, code, false, 0.5, 1.5,
                          vec![code; i], samples.clone())
            })
            .collect();
        let stream: Vec<u8> = frames.iter().flat_map(|f| f.encode()).collect();
        let mut decoder = Decoder::new(1 << 20);
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            decoder.push(piece);
            while let Ok(Some(frame)) = decoder.next_frame() {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(decoder.buffered(), 0);
    }

    /// The length cap is enforced from the header alone: a header
    /// promising an oversize payload fails typed before any body bytes
    /// arrive, so a hostile peer can never drive allocations.
    #[test]
    fn oversize_header_fails_before_the_body(
        claimed in 257u32..u32::MAX,
        trailing in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut header = Vec::new();
        header.extend_from_slice(&wire::MAGIC);
        header.extend_from_slice(&wire::WIRE_VERSION.to_le_bytes());
        header.push(0x01);
        header.push(0);
        header.extend_from_slice(&claimed.to_le_bytes());
        header.extend_from_slice(&trailing);
        let mut decoder = Decoder::new(256);
        decoder.push(&header);
        prop_assert!(matches!(
            decoder.next_frame(),
            Err(wire::WireError::Oversize { .. })
        ));
    }
}
