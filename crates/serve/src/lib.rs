//! Supervised multi-session serving runtime for the Lumen defense.
//!
//! The paper runs its detector repeatedly inside *one* video chat
//! (Sec. III-B); the ROADMAP's north star is a service verifying **many
//! concurrent sessions** on a fixed compute budget. That turns
//! availability into part of the security story: an active defense only
//! protects while its verify loop keeps up, so a runtime that silently
//! drops detection rounds under load is a runtime an attacker can DoS
//! around. This crate makes the frame→verdict path robust to overload and
//! crashes with four mechanisms:
//!
//! * **Admission control + backpressure** ([`Supervisor::admit`],
//!   [`Supervisor::offer`]) — bounded per-session clip queues and a global
//!   tick-driven work budget, with explicit [`AdmitOutcome`] /
//!   [`ClipAdmission`] outcomes.
//! * **Load shedding, never silent** — a clip that cannot be served
//!   (queue full, deadline missed, breaker open, detection failure)
//!   becomes a counted `Withheld` abstention in the session's verdict
//!   stream, in completion order, so `served + shed == offered` holds
//!   exactly and served clips' outcomes stay byte-identical to an
//!   unloaded run.
//! * **Per-session circuit breakers** ([`breaker`]) — repeated watchdog
//!   re-triggers or detection errors trip a session open; half-open
//!   probes re-admit it; every transition is an event and an obs mark.
//! * **Checkpoint/restore** ([`Supervisor::snapshot`],
//!   [`Supervisor::restore`]) — serde snapshots of the whole runtime,
//!   including mid-clip partial buffers, replaying to byte-identical
//!   verdicts after a restart.
//!
//! Everything is driven off `lumen_chat::clock` ticks — no wall clock, no
//! ambient randomness — so any run (and any crash/restore of it) is
//! deterministic.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod error;

pub mod breaker;
pub mod chaos;
pub mod checkpoint;
pub mod store;
pub mod supervisor;

pub use breaker::{BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker};
pub use chaos::{ChaosInjector, ChaosPlan};
pub use checkpoint::{QueuedClipSnapshot, SessionSnapshot, SupervisorSnapshot};
pub use error::ServeError;
pub use store::{
    CheckpointStore, CommitOutcome, CorruptReason, LoadReport, LoadedGeneration, MemStorage,
    QuarantinedGeneration, Storage, StorageFaults, StoreConfig, StoreError, StoreStats,
};
pub use supervisor::{
    AdmitOutcome, ClipAdmission, QuarantinedSession, RestoreReport, ServeConfig, ServeStats,
    SessionEvent, SessionEventKind, ShedReason, Supervisor,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
