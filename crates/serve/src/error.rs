use std::fmt;

/// Errors produced by the serving runtime.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// A configuration field is outside its valid domain.
    InvalidConfig {
        /// Field name.
        field: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// An operation named a session this supervisor does not own.
    UnknownSession(u64),
    /// A checkpoint is internally inconsistent and cannot be restored.
    BadSnapshot(String),
    /// Propagated detection-pipeline error.
    Core(lumen_core::CoreError),
    /// Propagated active-probing error (no probe in flight, bad probe
    /// config, or a verification failure).
    Probe(lumen_probe::ProbeError),
    /// Propagated checkpoint-store error (bad store config, backend I/O,
    /// or a snapshot that failed to encode).
    Store(crate::store::StoreError),
}

impl ServeError {
    /// Convenience constructor for [`ServeError::InvalidConfig`].
    pub fn invalid_config(field: &'static str, reason: impl Into<String>) -> Self {
        ServeError::InvalidConfig {
            field,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`ServeError::BadSnapshot`].
    pub fn bad_snapshot(reason: impl Into<String>) -> Self {
        ServeError::BadSnapshot(reason.into())
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig { field, reason } => {
                write!(f, "invalid serve config `{field}`: {reason}")
            }
            ServeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServeError::BadSnapshot(reason) => write!(f, "bad checkpoint: {reason}"),
            ServeError::Core(e) => write!(f, "detection pipeline failed: {e}"),
            ServeError::Probe(e) => write!(f, "active probing failed: {e}"),
            ServeError::Store(e) => write!(f, "checkpoint store failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            ServeError::Probe(e) => Some(e),
            ServeError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lumen_core::CoreError> for ServeError {
    fn from(e: lumen_core::CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<lumen_probe::ProbeError> for ServeError {
    fn from(e: lumen_probe::ProbeError) -> Self {
        ServeError::Probe(e)
    }
}

impl From<crate::store::StoreError> for ServeError {
    fn from(e: crate::store::StoreError) -> Self {
        ServeError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(ServeError::invalid_config("queue_clips", "zero")
            .to_string()
            .contains("queue_clips"));
        assert!(ServeError::UnknownSession(7).to_string().contains("7"));
        assert!(ServeError::bad_snapshot("truncated")
            .to_string()
            .contains("truncated"));
        use std::error::Error;
        let core = lumen_core::CoreError::invalid_config("window", "zero");
        assert!(ServeError::from(core).source().is_some());
        let probe = lumen_probe::ProbeError::NoProbeInFlight;
        let wrapped = ServeError::from(probe);
        assert!(wrapped.to_string().contains("probing"));
        assert!(wrapped.source().is_some());
        let store = crate::store::StoreError::Io("disk gone".into());
        let wrapped = ServeError::from(store);
        assert!(wrapped.to_string().contains("disk gone"));
        assert!(wrapped.source().is_some());
    }
}
