//! Checkpoint types: the serializable image of a running supervisor.
//!
//! A checkpoint captures every piece of *mutable* runtime state — the
//! clock tick, budget credits, fairness cursor, aggregate stats, and per
//! session the partial clip, the pending-clip queue, the breaker position
//! and the [`StreamSnapshot`] of the detector — but no trained model:
//! models are immutable and deterministically re-trainable, so
//! [`Supervisor::restore`](crate::Supervisor::restore) takes a factory
//! that rebuilds them and grafts the snapshot state back on. Restoring a
//! mid-clip checkpoint and replaying the remaining samples yields a
//! byte-identical verdict sequence (see `tests/checkpoint.rs`).

use crate::breaker::BreakerState;
use crate::supervisor::{ServeStats, ShedReason};
use lumen_core::stream::StreamSnapshot;
use lumen_probe::ProbeDirector;
use serde::{Deserialize, Serialize, Value};

/// One queued entry of a session: a pending clip, or the ordering
/// tombstone of an already-decided shed.
#[derive(Debug, Clone, PartialEq)]
pub enum QueuedClipSnapshot {
    /// A completed clip awaiting detection.
    Clip {
        /// Transmitted-side samples of the clip.
        tx: Vec<f64>,
        /// Received-side samples of the clip.
        rx: Vec<f64>,
        /// Tick at which the clip completed.
        completed_at: u64,
    },
    /// A shed decided at completion time, awaiting its verdict-stream
    /// slot.
    Tombstone {
        /// Why the clip was shed.
        reason: ShedReason,
    },
}

// The vendored serde derive handles unit-variant enums only; the queue
// entry serializes by hand as a kind-tagged object.
impl Serialize for QueuedClipSnapshot {
    fn serialize(&self) -> Value {
        match self {
            QueuedClipSnapshot::Clip {
                tx,
                rx,
                completed_at,
            } => Value::Object(vec![
                ("kind".to_string(), Value::String("clip".to_string())),
                ("tx".to_string(), tx.serialize()),
                ("rx".to_string(), rx.serialize()),
                ("completed_at".to_string(), completed_at.serialize()),
            ]),
            QueuedClipSnapshot::Tombstone { reason } => Value::Object(vec![
                ("kind".to_string(), Value::String("tombstone".to_string())),
                ("reason".to_string(), reason.serialize()),
            ]),
        }
    }
}

impl Deserialize for QueuedClipSnapshot {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let kind = v.field("kind")?.as_str()?;
        match kind {
            "clip" => Ok(QueuedClipSnapshot::Clip {
                tx: Vec::<f64>::deserialize(v.field("tx")?)?,
                rx: Vec::<f64>::deserialize(v.field("rx")?)?,
                completed_at: u64::deserialize(v.field("completed_at")?)?,
            }),
            "tombstone" => Ok(QueuedClipSnapshot::Tombstone {
                reason: ShedReason::deserialize(v.field("reason")?)?,
            }),
            other => Err(serde::Error::custom(format!(
                "unknown queued clip kind `{other}`"
            ))),
        }
    }
}

/// The checkpointed state of one admitted session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// The session id.
    pub id: u64,
    /// Transmitted-side samples of the in-progress (partial) clip.
    pub partial_tx: Vec<f64>,
    /// Received-side samples of the in-progress (partial) clip.
    pub partial_rx: Vec<f64>,
    /// Pending clips and shed tombstones, front first.
    pub queue: Vec<QueuedClipSnapshot>,
    /// The circuit breaker's position.
    pub breaker: BreakerState,
    /// The streaming detector's mutable state.
    pub stream: StreamSnapshot,
    /// The probe director — policy, budget spent, cooldown and any
    /// in-flight challenge — for sessions admitted with active probing.
    pub probe: Option<ProbeDirector>,
}

/// The checkpointed state of a whole supervisor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupervisorSnapshot {
    /// The supervisor clock's tick at checkpoint time.
    pub tick: u64,
    /// Unspent detection credits of the current budget period.
    pub credits: u64,
    /// The round-robin fairness cursor (last served session id).
    pub cursor: u64,
    /// The next session id to assign.
    pub next_id: u64,
    /// Aggregate counters at checkpoint time.
    pub stats: ServeStats,
    /// Served-clip latencies recorded so far, in serve order.
    pub latencies: Vec<u64>,
    /// Every admitted session, ascending by id.
    pub sessions: Vec<SessionSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queued_clips_round_trip_through_serde() {
        let entries = [
            QueuedClipSnapshot::Clip {
                tx: vec![1.0, 2.0],
                rx: vec![3.0, 4.0],
                completed_at: 17,
            },
            QueuedClipSnapshot::Tombstone {
                reason: ShedReason::QueueFull,
            },
        ];
        for entry in &entries {
            let back = QueuedClipSnapshot::deserialize(&entry.serialize()).unwrap();
            assert_eq!(&back, entry);
        }
        assert!(QueuedClipSnapshot::deserialize(&Value::Null).is_err());
    }
}
