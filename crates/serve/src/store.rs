//! Crash-safe, generation-rotated checkpoint store.
//!
//! A [`SupervisorSnapshot`] only protects the
//! fleet if it survives the crash it was taken for. This module gives the
//! supervisor a durable home for its checkpoints with four properties:
//!
//! * **Self-validating records** — every stored generation is framed as
//!   `magic ∥ version ∥ generation ∥ payload-length ∥ payload ∥ CRC32`,
//!   so a torn write (truncated record) or a bit flip anywhere in the
//!   file is *detected* at load time, never silently restored.
//! * **Generation rotation** — each commit writes a fresh
//!   `ckpt-<generation>.lmck` entry and prunes the oldest beyond a
//!   configured retention, so one corrupt write can never destroy the
//!   only copy.
//! * **Fallback + quarantine** — [`CheckpointStore::load_latest`] walks
//!   generations newest-first, quarantines every corrupt record by
//!   renaming it aside (keeping the evidence for post-mortems), and
//!   restores the newest *valid* generation.
//! * **Bounded retry** — a failed commit is retried on subsequent clock
//!   ticks with exponential backoff, up to a configured attempt budget;
//!   a newer commit supersedes an unflushed retry.
//!
//! Durability is injected through the [`Storage`] trait: [`dir::DirStorage`]
//! writes real files (tempfile + rename, the only filesystem I/O in the
//! crate), while [`MemStorage`] keeps bytes in memory and can inject
//! seeded write failures, torn writes and bit flips for chaos tests.

use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;

use crate::checkpoint::SupervisorSnapshot;
use lumen_obs::Recorder;
use serde::{Deserialize, Serialize};

pub mod dir;

/// Leading magic of every framed checkpoint record.
pub const MAGIC: [u8; 4] = *b"LMCK";

/// On-disk format version written into every record.
pub const FORMAT_VERSION: u32 = 1;

/// Framed header length: magic + version + generation + payload length.
const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// CRC32 trailer length.
const TRAILER_LEN: usize = 4;

/// Why a stored generation was rejected at load time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptReason {
    /// The record ends before the framed length says it should (torn
    /// write).
    Truncated,
    /// The leading magic is not [`MAGIC`].
    BadMagic,
    /// The format version is not [`FORMAT_VERSION`].
    BadVersion,
    /// The framed payload length disagrees with the record size.
    LengthMismatch,
    /// The generation framed inside the record disagrees with the entry
    /// name it was stored under.
    GenerationMismatch,
    /// The CRC32 trailer does not match the record bytes (bit flip).
    ChecksumMismatch,
    /// The checksum held but the payload does not decode to a snapshot.
    BadPayload,
    /// The storage backend could not produce the record's bytes at all.
    Unreadable,
}

impl fmt::Display for CorruptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            CorruptReason::Truncated => "record truncated (torn write)",
            CorruptReason::BadMagic => "bad magic",
            CorruptReason::BadVersion => "unsupported format version",
            CorruptReason::LengthMismatch => "framed length disagrees with record size",
            CorruptReason::GenerationMismatch => "framed generation disagrees with entry name",
            CorruptReason::ChecksumMismatch => "checksum mismatch (bit flip)",
            CorruptReason::BadPayload => "payload does not decode",
            CorruptReason::Unreadable => "backend could not read the record",
        };
        f.write_str(text)
    }
}

/// Errors produced by the checkpoint store and its storage backends.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StoreError {
    /// A store configuration field is outside its valid domain.
    InvalidConfig {
        /// Field name.
        field: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// The storage backend failed an operation.
    Io(String),
    /// A snapshot could not be encoded for storage.
    Encode(String),
}

impl StoreError {
    /// Convenience constructor for [`StoreError::InvalidConfig`].
    pub fn invalid_config(field: &'static str, reason: impl Into<String>) -> Self {
        StoreError::InvalidConfig {
            field,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::InvalidConfig { field, reason } => {
                write!(f, "invalid store config `{field}`: {reason}")
            }
            StoreError::Io(reason) => write!(f, "storage backend failed: {reason}"),
            StoreError::Encode(reason) => write!(f, "snapshot failed to encode: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Injected durability: where checkpoint records live.
///
/// Entry names are flat strings (no directories). `write` must publish
/// atomically — after a crash a record is either fully present under its
/// name or absent, though its *bytes* may still be damaged (that is what
/// the CRC framing detects).
pub trait Storage: fmt::Debug {
    /// Every entry name currently stored.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the backend cannot enumerate.
    fn list(&self) -> Result<Vec<String>, StoreError>;

    /// Reads one entry's bytes.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the entry is missing or unreadable.
    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError>;

    /// Atomically publishes `bytes` under `name`, replacing any previous
    /// entry.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the write fails.
    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError>;

    /// Renames an entry (used to quarantine corrupt generations).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the rename fails.
    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError>;

    /// Removes an entry (used by retention pruning).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the removal fails.
    fn remove(&mut self, name: &str) -> Result<(), StoreError>;
}

impl<S: Storage + ?Sized> Storage for &mut S {
    fn list(&self) -> Result<Vec<String>, StoreError> {
        (**self).list()
    }
    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        (**self).read(name)
    }
    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        (**self).write(name, bytes)
    }
    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        (**self).rename(from, to)
    }
    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        (**self).remove(name)
    }
}

/// Seeded fault probabilities for [`MemStorage`].
///
/// Failure draws are pure functions of the storage seed and the write
/// ordinal, so a fleet run and its replay see identical faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageFaults {
    /// Probability a write fails loudly (backend returns an error).
    pub write_fail: f64,
    /// Probability a write silently stores a truncated record.
    pub torn_write: f64,
    /// Probability a write silently stores the record with one bit
    /// flipped.
    pub bit_flip: f64,
}

impl StorageFaults {
    /// No injected faults.
    pub fn none() -> Self {
        StorageFaults {
            write_fail: 0.0,
            torn_write: 0.0,
            bit_flip: 0.0,
        }
    }

    /// Validates the probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidConfig`] for probabilities outside
    /// `[0, 1]`.
    pub fn validate(&self) -> Result<(), StoreError> {
        for (field, p) in [
            ("write_fail", self.write_fail),
            ("torn_write", self.torn_write),
            ("bit_flip", self.bit_flip),
        ] {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(StoreError::invalid_config(
                    match field {
                        "write_fail" => "write_fail",
                        "torn_write" => "torn_write",
                        _ => "bit_flip",
                    },
                    "must lie in [0, 1]",
                ));
            }
        }
        Ok(())
    }
}

/// In-memory storage backend with seeded fault injection.
///
/// The chaos layer's stand-in for a disk: it keeps every entry in a map,
/// and — when configured with [`StorageFaults`] — makes writes fail
/// loudly, tear (store a truncated record) or flip one bit, all decided
/// by a deterministic hash of the seed and the write ordinal. Entries it
/// silently damaged are remembered in [`MemStorage::sabotaged`] so chaos
/// tests can assert that every one of them was *detected* downstream.
#[derive(Debug, Clone)]
pub struct MemStorage {
    files: BTreeMap<String, Vec<u8>>,
    faults: StorageFaults,
    seed: u64,
    writes: u64,
    sabotaged: Vec<String>,
}

impl MemStorage {
    /// A fault-free in-memory backend.
    pub fn new() -> Self {
        MemStorage {
            files: BTreeMap::new(),
            faults: StorageFaults::none(),
            seed: 0,
            writes: 0,
            sabotaged: Vec::new(),
        }
    }

    /// A backend injecting `faults`, drawing decisions from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates [`StorageFaults::validate`] failures.
    pub fn with_faults(seed: u64, faults: StorageFaults) -> Result<Self, StoreError> {
        faults.validate()?;
        Ok(MemStorage {
            files: BTreeMap::new(),
            faults,
            seed,
            writes: 0,
            sabotaged: Vec::new(),
        })
    }

    /// Replaces the injected fault mix mid-run. The chaos harness writes
    /// its first checkpoint fault-free so a fleet restore never has to
    /// cold-start, then turns the configured faults on.
    ///
    /// # Errors
    ///
    /// Propagates [`StorageFaults::validate`] failures.
    pub fn set_faults(&mut self, faults: StorageFaults) -> Result<(), StoreError> {
        faults.validate()?;
        self.faults = faults;
        Ok(())
    }

    /// Entry names whose stored bytes were silently damaged (torn or
    /// bit-flipped) at write time, in write order. A name may appear more
    /// than once if rewritten; quarantine renames do not clear it.
    pub fn sabotaged(&self) -> &[String] {
        &self.sabotaged
    }

    /// Number of write operations attempted so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Current entry names (for tests).
    pub fn names(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    /// XORs `mask` into the byte at `index` of `name`, for corruption
    /// tests; returns whether the entry existed and was long enough.
    pub fn tamper(&mut self, name: &str, index: usize, mask: u8) -> bool {
        match self.files.get_mut(name) {
            Some(bytes) if index < bytes.len() && mask != 0 => {
                bytes[index] ^= mask;
                true
            }
            _ => false,
        }
    }

    /// Truncates the entry `name` to `len` bytes, for torn-write tests;
    /// returns whether the entry existed and was longer than `len`.
    pub fn truncate(&mut self, name: &str, len: usize) -> bool {
        match self.files.get_mut(name) {
            Some(bytes) if len < bytes.len() => {
                bytes.truncate(len);
                true
            }
            _ => false,
        }
    }
}

impl Default for MemStorage {
    fn default() -> Self {
        MemStorage::new()
    }
}

impl Storage for MemStorage {
    fn list(&self) -> Result<Vec<String>, StoreError> {
        Ok(self.files.keys().cloned().collect())
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        self.files
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::Io(format!("no such entry `{name}`")))
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.writes += 1;
        let ordinal = self.writes;
        if unit(fault_mix(self.seed, ordinal, 0)) < self.faults.write_fail {
            return Err(StoreError::Io(format!(
                "injected write failure (write #{ordinal})"
            )));
        }
        let silent = unit(fault_mix(self.seed, ordinal, 1));
        let mut stored = bytes.to_vec();
        if silent < self.faults.torn_write {
            // Torn write: keep a strict prefix, never the whole record.
            let cut = (fault_mix(self.seed, ordinal, 2) as usize) % stored.len().max(1);
            stored.truncate(cut);
            self.sabotaged.push(name.to_string());
        } else if silent < self.faults.torn_write + self.faults.bit_flip && !stored.is_empty() {
            let bit = (fault_mix(self.seed, ordinal, 3) as usize) % (stored.len() * 8);
            stored[bit / 8] ^= 1 << (bit % 8);
            self.sabotaged.push(name.to_string());
        }
        self.files.insert(name.to_string(), stored);
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        match self.files.remove(from) {
            Some(bytes) => {
                self.files.insert(to.to_string(), bytes);
                Ok(())
            }
            None => Err(StoreError::Io(format!("no such entry `{from}`"))),
        }
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        self.files
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StoreError::Io(format!("no such entry `{name}`")))
    }
}

/// Splitmix-style mix of the fault seed, write ordinal and draw index.
fn fault_mix(seed: u64, ordinal: u64, draw: u64) -> u64 {
    let mut z = seed
        ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ draw.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to the unit interval.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

const CRC32_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Frames `payload` as one checkpoint record for `generation`.
pub fn encode_record(generation: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates a framed record and returns its generation and payload.
///
/// # Errors
///
/// Returns the [`CorruptReason`] describing the first framing violation:
/// truncation, bad magic/version, a length or checksum mismatch.
pub fn decode_record(bytes: &[u8]) -> Result<(u64, Vec<u8>), CorruptReason> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(CorruptReason::Truncated);
    }
    if bytes[0..4] != MAGIC {
        return Err(CorruptReason::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != FORMAT_VERSION {
        return Err(CorruptReason::BadVersion);
    }
    let generation = u64::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
    ]);
    let framed_len = u64::from_le_bytes([
        bytes[16], bytes[17], bytes[18], bytes[19], bytes[20], bytes[21], bytes[22], bytes[23],
    ]);
    let expected = (HEADER_LEN as u64)
        .saturating_add(framed_len)
        .saturating_add(TRAILER_LEN as u64);
    if (bytes.len() as u64) < expected {
        return Err(CorruptReason::Truncated);
    }
    if bytes.len() as u64 != expected {
        return Err(CorruptReason::LengthMismatch);
    }
    let body = &bytes[..bytes.len() - TRAILER_LEN];
    let trailer = &bytes[bytes.len() - TRAILER_LEN..];
    let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    if crc32(body) != stored {
        return Err(CorruptReason::ChecksumMismatch);
    }
    Ok((
        generation,
        bytes[HEADER_LEN..bytes.len() - TRAILER_LEN].to_vec(),
    ))
}

/// Retention and retry policy of a [`CheckpointStore`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Newest generations kept on storage; older ones are pruned after a
    /// successful commit.
    pub keep_generations: usize,
    /// Total write attempts per generation (first try plus retries).
    pub max_write_attempts: u32,
    /// Backoff before the first retry, ticks; doubles per attempt.
    pub retry_backoff_ticks: u64,
    /// Upper bound on the per-retry backoff, ticks.
    pub retry_backoff_cap_ticks: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            keep_generations: 3,
            max_write_attempts: 4,
            retry_backoff_ticks: 8,
            retry_backoff_cap_ticks: 64,
        }
    }
}

impl StoreConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidConfig`] for a zero retention, a zero
    /// attempt budget, a zero backoff, or a cap below the base backoff.
    pub fn validate(&self) -> Result<(), StoreError> {
        if self.keep_generations == 0 {
            return Err(StoreError::invalid_config(
                "keep_generations",
                "a store keeping zero generations can never restore",
            ));
        }
        if self.max_write_attempts == 0 {
            return Err(StoreError::invalid_config(
                "max_write_attempts",
                "at least one write attempt is required",
            ));
        }
        if self.retry_backoff_ticks == 0 {
            return Err(StoreError::invalid_config(
                "retry_backoff_ticks",
                "must be positive",
            ));
        }
        if self.retry_backoff_cap_ticks < self.retry_backoff_ticks {
            return Err(StoreError::invalid_config(
                "retry_backoff_cap_ticks",
                "must be at least retry_backoff_ticks",
            ));
        }
        Ok(())
    }
}

/// What happened to a commit attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The generation is durable.
    Committed {
        /// The committed generation.
        generation: u64,
    },
    /// The write failed; a retry is armed.
    Retrying {
        /// The generation awaiting its retry.
        generation: u64,
        /// Attempts made so far.
        attempt: u32,
        /// Tick at which the next attempt fires.
        next_attempt_at: u64,
    },
    /// The attempt budget is exhausted; the generation is lost.
    GaveUp {
        /// The abandoned generation.
        generation: u64,
        /// Attempts made.
        attempts: u32,
    },
}

/// Aggregate counters of a [`CheckpointStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Generations made durable.
    pub commits: u64,
    /// Write attempts the backend rejected.
    pub write_failures: u64,
    /// Retry attempts fired by [`CheckpointStore::tick`].
    pub retries: u64,
    /// Generations abandoned after exhausting the attempt budget.
    pub gave_up: u64,
    /// Pending retries dropped because a newer commit superseded them.
    pub superseded: u64,
    /// Corrupt generations quarantined at load time.
    pub quarantined: u64,
}

impl StoreStats {
    /// Sums two stat sets element-wise (chaos harnesses accumulate
    /// counters across crash incarnations of the store).
    #[must_use]
    pub fn merged(&self, other: &StoreStats) -> StoreStats {
        StoreStats {
            commits: self.commits + other.commits,
            write_failures: self.write_failures + other.write_failures,
            retries: self.retries + other.retries,
            gave_up: self.gave_up + other.gave_up,
            superseded: self.superseded + other.superseded,
            quarantined: self.quarantined + other.quarantined,
        }
    }
}

/// One corrupt generation set aside at load time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedGeneration {
    /// The entry name the record was stored under.
    pub name: String,
    /// Why it was rejected.
    pub reason: CorruptReason,
}

/// The generation [`CheckpointStore::load_latest`] settled on.
///
/// Generic over the snapshot payload; defaults to [`SupervisorSnapshot`]
/// so single-supervisor callers never name the parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedGeneration<T = SupervisorSnapshot> {
    /// The restored generation number.
    pub generation: u64,
    /// The decoded snapshot.
    pub snapshot: T,
    /// How many newer generations were rejected before this one (0 = the
    /// newest stored generation was valid).
    pub fallback_depth: usize,
}

/// Outcome of [`CheckpointStore::load_latest`].
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport<T = SupervisorSnapshot> {
    /// The newest valid generation, or `None` when nothing valid is
    /// stored.
    pub loaded: Option<LoadedGeneration<T>>,
    /// Every corrupt generation found (and quarantined) during the scan,
    /// newest first.
    pub quarantined: Vec<QuarantinedGeneration>,
}

/// A retry armed after a failed commit.
#[derive(Debug, Clone)]
struct PendingWrite {
    generation: u64,
    name: String,
    bytes: Vec<u8>,
    attempts: u32,
    next_attempt_at: u64,
}

/// Generation-rotated checkpoint store over an injected [`Storage`].
///
/// Generic over the snapshot payload it frames (any `Serialize +
/// Deserialize` type); defaults to [`SupervisorSnapshot`], the original
/// single-supervisor payload, so existing callers are unchanged. The
/// fleet runtime instantiates it with `FleetSnapshot` to persist a
/// manifest plus every shard's snapshot through the same CRC-framed,
/// generation-rotated machinery.
#[derive(Debug)]
pub struct CheckpointStore<S: Storage, T = SupervisorSnapshot> {
    storage: S,
    config: StoreConfig,
    recorder: Recorder,
    next_generation: u64,
    pending: Option<PendingWrite>,
    stats: StoreStats,
    _payload: PhantomData<fn() -> T>,
}

impl<S: Storage, T: Serialize + Deserialize> CheckpointStore<S, T> {
    /// Opens a store over `storage`, resuming generation numbering after
    /// any records already present.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreConfig::validate`] failures and backend listing
    /// errors.
    pub fn new(storage: S, config: StoreConfig) -> Result<Self, StoreError> {
        config.validate()?;
        let highest = storage
            .list()?
            .iter()
            .filter_map(|name| parse_name(name))
            .max()
            .unwrap_or(0);
        Ok(CheckpointStore {
            storage,
            config,
            recorder: Recorder::null(),
            next_generation: highest + 1,
            pending: None,
            stats: StoreStats::default(),
            _payload: PhantomData,
        })
    }

    /// Attaches a metrics recorder (`store.*` counters).
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// The injected backend (chaos tests inspect sabotage records here).
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// Mutable access to the injected backend.
    pub fn storage_mut(&mut self) -> &mut S {
        &mut self.storage
    }

    /// The generation a pending retry is trying to flush, if any.
    pub fn pending_generation(&self) -> Option<u64> {
        self.pending.as_ref().map(|p| p.generation)
    }

    /// The generation number the next [`CheckpointStore::commit`] will be
    /// assigned (chaos harnesses corrupt a snapshot for a specific
    /// generation *before* committing it).
    pub fn next_generation(&self) -> u64 {
        self.next_generation
    }

    /// Commits `snapshot` as a fresh generation at tick `now`.
    ///
    /// A failed write arms a bounded exponential-backoff retry driven by
    /// [`CheckpointStore::tick`]; an older unflushed retry is superseded
    /// (the newer snapshot strictly dominates it).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Encode`] when the snapshot cannot be
    /// serialized. Backend write failures are *not* errors — they arm the
    /// retry and report [`CommitOutcome::Retrying`].
    pub fn commit(&mut self, now: u64, snapshot: &T) -> Result<CommitOutcome, StoreError> {
        let payload =
            serde_json::to_string(snapshot).map_err(|e| StoreError::Encode(format!("{e:?}")))?;
        let generation = self.next_generation;
        self.next_generation += 1;
        let name = entry_name(generation);
        let bytes = encode_record(generation, payload.as_bytes());
        if self.pending.take().is_some() {
            self.stats.superseded += 1;
            self.recorder.add("store.superseded", 1);
        }
        match self.storage.write(&name, &bytes) {
            Ok(()) => {
                self.stats.commits += 1;
                self.recorder.add("store.commit", 1);
                self.prune();
                Ok(CommitOutcome::Committed { generation })
            }
            Err(_) => {
                self.stats.write_failures += 1;
                self.recorder.add("store.write_failure", 1);
                let next_attempt_at = now.saturating_add(self.backoff(1));
                self.pending = Some(PendingWrite {
                    generation,
                    name,
                    bytes,
                    attempts: 1,
                    next_attempt_at,
                });
                Ok(CommitOutcome::Retrying {
                    generation,
                    attempt: 1,
                    next_attempt_at,
                })
            }
        }
    }

    /// Drives the pending retry, if one is due at tick `now`.
    pub fn tick(&mut self, now: u64) -> Option<CommitOutcome> {
        let due = self
            .pending
            .as_ref()
            .is_some_and(|p| now >= p.next_attempt_at);
        if !due {
            return None;
        }
        let mut p = self.pending.take()?;
        self.stats.retries += 1;
        self.recorder.add("store.retry", 1);
        match self.storage.write(&p.name, &p.bytes) {
            Ok(()) => {
                self.stats.commits += 1;
                self.recorder.add("store.commit", 1);
                self.prune();
                Some(CommitOutcome::Committed {
                    generation: p.generation,
                })
            }
            Err(_) => {
                self.stats.write_failures += 1;
                self.recorder.add("store.write_failure", 1);
                p.attempts += 1;
                if p.attempts >= self.config.max_write_attempts {
                    self.stats.gave_up += 1;
                    self.recorder.add("store.gave_up", 1);
                    Some(CommitOutcome::GaveUp {
                        generation: p.generation,
                        attempts: p.attempts,
                    })
                } else {
                    p.next_attempt_at = now.saturating_add(self.backoff(p.attempts));
                    let out = CommitOutcome::Retrying {
                        generation: p.generation,
                        attempt: p.attempts,
                        next_attempt_at: p.next_attempt_at,
                    };
                    self.pending = Some(p);
                    Some(out)
                }
            }
        }
    }

    /// Finds the newest *valid* generation, quarantining every corrupt
    /// record encountered on the way (renamed aside with a `.quarantined`
    /// suffix, so the evidence survives for post-mortems).
    ///
    /// # Errors
    ///
    /// Propagates backend listing failures. Corrupt records are never
    /// errors — they are quarantined and reported.
    pub fn load_latest(&mut self) -> Result<LoadReport<T>, StoreError> {
        let mut entries: Vec<(u64, String)> = self
            .storage
            .list()?
            .into_iter()
            .filter_map(|name| parse_name(&name).map(|generation| (generation, name)))
            .collect();
        entries.sort_by_key(|&(generation, _)| std::cmp::Reverse(generation));
        let mut quarantined = Vec::new();
        for (depth, (generation, name)) in entries.into_iter().enumerate() {
            let reason = match self.storage.read(&name) {
                Err(_) => CorruptReason::Unreadable,
                Ok(bytes) => match decode_record(&bytes) {
                    Err(reason) => reason,
                    Ok((framed_generation, _)) if framed_generation != generation => {
                        CorruptReason::GenerationMismatch
                    }
                    Ok((_, payload)) => match decode_snapshot(&payload) {
                        Err(reason) => reason,
                        Ok(snapshot) => {
                            return Ok(LoadReport {
                                loaded: Some(LoadedGeneration {
                                    generation,
                                    snapshot,
                                    fallback_depth: depth,
                                }),
                                quarantined,
                            });
                        }
                    },
                },
            };
            self.quarantine(&name, reason, &mut quarantined);
        }
        Ok(LoadReport {
            loaded: None,
            quarantined,
        })
    }

    fn quarantine(
        &mut self,
        name: &str,
        reason: CorruptReason,
        out: &mut Vec<QuarantinedGeneration>,
    ) {
        // Best effort: a failed rename still quarantines logically — the
        // record stays reported and will simply be rejected again next
        // scan.
        let _ = self.storage.rename(name, &format!("{name}.quarantined"));
        self.stats.quarantined += 1;
        self.recorder.add("store.quarantined", 1);
        out.push(QuarantinedGeneration {
            name: name.to_string(),
            reason,
        });
    }

    /// Removes generations beyond the retention window (best effort).
    fn prune(&mut self) {
        let Ok(listed) = self.storage.list() else {
            return;
        };
        let mut generations: Vec<(u64, String)> = listed
            .into_iter()
            .filter_map(|name| parse_name(&name).map(|generation| (generation, name)))
            .collect();
        generations.sort_by_key(|&(generation, _)| std::cmp::Reverse(generation));
        for (_, name) in generations.into_iter().skip(self.config.keep_generations) {
            // lint:allow(error-swallowing): pruning is documented
            // best-effort; a generation that refuses to die is retried on
            // the next checkpoint and never affects the active stream
            let _ = self.storage.remove(&name);
        }
    }

    /// Exponential backoff before attempt `attempts + 1`, capped.
    fn backoff(&self, attempts: u32) -> u64 {
        let doublings = attempts.saturating_sub(1).min(32);
        self.config
            .retry_backoff_ticks
            .saturating_mul(1u64 << doublings)
            .min(self.config.retry_backoff_cap_ticks)
    }
}

/// Entry name of a generation (zero-padded so lexicographic order is
/// numeric order).
pub fn entry_name(generation: u64) -> String {
    format!("ckpt-{generation:020}.lmck")
}

/// Parses a generation number out of an [`entry_name`]-shaped name.
pub fn parse_name(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".lmck")?
        .parse()
        .ok()
}

/// Decodes the JSON payload of a validated record.
fn decode_snapshot<T: Deserialize>(payload: &[u8]) -> Result<T, CorruptReason> {
    let text = std::str::from_utf8(payload).map_err(|_| CorruptReason::BadPayload)?;
    serde_json::from_str(text).map_err(|_| CorruptReason::BadPayload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::ServeStats;

    fn empty_snapshot(tick: u64) -> SupervisorSnapshot {
        SupervisorSnapshot {
            tick,
            credits: 0,
            cursor: 0,
            next_id: 1,
            stats: ServeStats::default(),
            latencies: Vec::new(),
            sessions: Vec::new(),
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_round_trips() {
        let payload = b"{\"x\":1}";
        let framed = encode_record(42, payload);
        let (generation, back) = decode_record(&framed).unwrap();
        assert_eq!(generation, 42);
        assert_eq!(back, payload);
    }

    #[test]
    fn decode_rejects_each_framing_violation() {
        let framed = encode_record(7, b"payload");
        assert_eq!(decode_record(&framed[..10]), Err(CorruptReason::Truncated));
        let mut bad_magic = framed.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(decode_record(&bad_magic), Err(CorruptReason::BadMagic));
        let mut bad_version = framed.clone();
        bad_version[4] = 99;
        assert_eq!(decode_record(&bad_version), Err(CorruptReason::BadVersion));
        let mut flipped = framed.clone();
        let last = flipped.len() - 10;
        flipped[last] ^= 0x01;
        assert_eq!(
            decode_record(&flipped),
            Err(CorruptReason::ChecksumMismatch)
        );
        let mut longer = framed.clone();
        longer.push(0);
        assert_eq!(decode_record(&longer), Err(CorruptReason::LengthMismatch));
        let truncated = &framed[..framed.len() - 1];
        assert_eq!(decode_record(truncated), Err(CorruptReason::Truncated));
    }

    #[test]
    fn entry_names_sort_and_parse() {
        assert_eq!(parse_name(&entry_name(12)), Some(12));
        assert!(entry_name(9) < entry_name(10));
        assert_eq!(parse_name("ckpt-junk.lmck"), None);
        assert_eq!(parse_name("other"), None);
        assert_eq!(
            parse_name(&format!("{}.quarantined", entry_name(3))),
            None,
            "quarantined records leave the rotation"
        );
    }

    #[test]
    fn commit_load_round_trip() {
        let mut store = CheckpointStore::new(MemStorage::new(), StoreConfig::default()).unwrap();
        let out = store.commit(5, &empty_snapshot(5)).unwrap();
        assert_eq!(out, CommitOutcome::Committed { generation: 1 });
        let report = store.load_latest().unwrap();
        let loaded = report.loaded.unwrap();
        assert_eq!(loaded.generation, 1);
        assert_eq!(loaded.snapshot, empty_snapshot(5));
        assert_eq!(loaded.fallback_depth, 0);
        assert!(report.quarantined.is_empty());
    }

    #[test]
    fn rotation_prunes_old_generations() {
        let config = StoreConfig {
            keep_generations: 2,
            ..StoreConfig::default()
        };
        let mut store = CheckpointStore::new(MemStorage::new(), config).unwrap();
        for tick in 0..5 {
            store.commit(tick, &empty_snapshot(tick)).unwrap();
        }
        let names = store.storage().names();
        assert_eq!(names, vec![entry_name(4), entry_name(5)]);
    }

    #[test]
    fn corrupt_newest_falls_back_and_quarantines() {
        let mut store = CheckpointStore::new(MemStorage::new(), StoreConfig::default()).unwrap();
        store.commit(1, &empty_snapshot(1)).unwrap();
        store.commit(2, &empty_snapshot(2)).unwrap();
        assert!(store.storage_mut().tamper(&entry_name(2), 30, 0x40));
        let report = store.load_latest().unwrap();
        let loaded = report.loaded.unwrap();
        assert_eq!(loaded.generation, 1, "fell back to the older generation");
        assert_eq!(loaded.fallback_depth, 1);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(
            report.quarantined[0].reason,
            CorruptReason::ChecksumMismatch
        );
        // The corrupt record was renamed aside, not deleted.
        let names = store.storage().names();
        assert!(names.contains(&format!("{}.quarantined", entry_name(2))));
        assert!(!names.contains(&entry_name(2)));
    }

    #[test]
    fn no_valid_generation_reports_empty() {
        let mut store = CheckpointStore::new(MemStorage::new(), StoreConfig::default()).unwrap();
        store.commit(1, &empty_snapshot(1)).unwrap();
        assert!(store.storage_mut().truncate(&entry_name(1), 9));
        let report = store.load_latest().unwrap();
        assert!(report.loaded.is_none());
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].reason, CorruptReason::Truncated);
    }

    #[test]
    fn failed_commit_retries_with_backoff_then_succeeds() {
        // write_fail = 1.0 fails every write; drop it to zero after two
        // attempts by swapping the backend's faults via direct access.
        let storage = MemStorage::with_faults(
            9,
            StorageFaults {
                write_fail: 1.0,
                torn_write: 0.0,
                bit_flip: 0.0,
            },
        )
        .unwrap();
        let config = StoreConfig {
            retry_backoff_ticks: 4,
            retry_backoff_cap_ticks: 16,
            max_write_attempts: 5,
            ..StoreConfig::default()
        };
        let mut store = CheckpointStore::new(storage, config).unwrap();
        let out = store.commit(100, &empty_snapshot(100)).unwrap();
        assert_eq!(
            out,
            CommitOutcome::Retrying {
                generation: 1,
                attempt: 1,
                next_attempt_at: 104
            }
        );
        assert_eq!(store.tick(103), None, "not due yet");
        let out = store.tick(104).unwrap();
        assert_eq!(
            out,
            CommitOutcome::Retrying {
                generation: 1,
                attempt: 2,
                next_attempt_at: 112
            },
            "second failure doubles the backoff"
        );
        // Heal the backend; the due retry now lands.
        store.storage_mut().faults = StorageFaults::none();
        let out = store.tick(112).unwrap();
        assert_eq!(out, CommitOutcome::Committed { generation: 1 });
        assert!(store.load_latest().unwrap().loaded.is_some());
        assert_eq!(store.stats().retries, 2);
        assert_eq!(store.stats().write_failures, 2);
    }

    #[test]
    fn retry_budget_exhausts_to_gave_up() {
        let storage = MemStorage::with_faults(
            9,
            StorageFaults {
                write_fail: 1.0,
                torn_write: 0.0,
                bit_flip: 0.0,
            },
        )
        .unwrap();
        let config = StoreConfig {
            max_write_attempts: 2,
            retry_backoff_ticks: 1,
            retry_backoff_cap_ticks: 1,
            ..StoreConfig::default()
        };
        let mut store = CheckpointStore::new(storage, config).unwrap();
        store.commit(0, &empty_snapshot(0)).unwrap();
        let out = store.tick(10).unwrap();
        assert_eq!(
            out,
            CommitOutcome::GaveUp {
                generation: 1,
                attempts: 2
            }
        );
        assert_eq!(store.pending_generation(), None);
        assert_eq!(store.stats().gave_up, 1);
    }

    #[test]
    fn newer_commit_supersedes_pending_retry() {
        let storage = MemStorage::with_faults(
            3,
            StorageFaults {
                write_fail: 1.0,
                torn_write: 0.0,
                bit_flip: 0.0,
            },
        )
        .unwrap();
        let mut store = CheckpointStore::new(storage, StoreConfig::default()).unwrap();
        store.commit(0, &empty_snapshot(0)).unwrap();
        assert_eq!(store.pending_generation(), Some(1));
        store.storage_mut().faults = StorageFaults::none();
        let out = store.commit(1, &empty_snapshot(1)).unwrap();
        assert_eq!(out, CommitOutcome::Committed { generation: 2 });
        assert_eq!(store.pending_generation(), None);
        assert_eq!(store.stats().superseded, 1);
    }

    #[test]
    fn generation_numbering_resumes_after_reopen() {
        let mut storage = MemStorage::new();
        {
            let mut store = CheckpointStore::new(&mut storage, StoreConfig::default()).unwrap();
            store.commit(0, &empty_snapshot(0)).unwrap();
            store.commit(1, &empty_snapshot(1)).unwrap();
        }
        let store: CheckpointStore<_, SupervisorSnapshot> =
            CheckpointStore::new(&mut storage, StoreConfig::default()).unwrap();
        assert_eq!(store.next_generation, 3);
    }

    #[test]
    fn seeded_faults_are_deterministic_and_tracked() {
        let faults = StorageFaults {
            write_fail: 0.2,
            torn_write: 0.2,
            bit_flip: 0.2,
        };
        let run = |seed: u64| {
            let mut s = MemStorage::with_faults(seed, faults).unwrap();
            let mut outcomes = Vec::new();
            for i in 0..50u64 {
                outcomes.push(s.write(&format!("e{i}"), b"0123456789abcdef").is_ok());
            }
            (outcomes, s.sabotaged().to_vec())
        };
        assert_eq!(run(7), run(7), "same seed, same faults");
        assert_ne!(run(7), run(8), "different seed, different faults");
        let (_, sabotaged) = run(7);
        assert!(!sabotaged.is_empty(), "some writes were silently damaged");
    }

    #[test]
    fn config_validation_rejects_degenerate_values() {
        let bad = [
            StoreConfig {
                keep_generations: 0,
                ..StoreConfig::default()
            },
            StoreConfig {
                max_write_attempts: 0,
                ..StoreConfig::default()
            },
            StoreConfig {
                retry_backoff_ticks: 0,
                ..StoreConfig::default()
            },
            StoreConfig {
                retry_backoff_cap_ticks: 1,
                retry_backoff_ticks: 2,
                ..StoreConfig::default()
            },
        ];
        for config in bad {
            assert!(config.validate().is_err(), "{config:?}");
        }
        assert!(StorageFaults {
            write_fail: 1.5,
            ..StorageFaults::none()
        }
        .validate()
        .is_err());
    }
}
