//! Seeded chaos injection at the supervisor boundary.
//!
//! [`ChaosPlan`] is the durability layer's counterpart of
//! `lumen_chat::FaultPlan`: where a `FaultPlan` damages the *transport*
//! (loss bursts, freezes, corruption on the wire), a `ChaosPlan` attacks
//! the *runtime* — checkpoint writes that fail, tear or flip bits (via
//! [`StorageFaults`] on the in-memory backend), sessions whose stored
//! snapshots rot, clips that arrive poisoned with non-finite samples,
//! detection-error storms that hammer one session's breaker, and tick
//! stalls that eat serve budget.
//!
//! Every decision is a **pure hash of stable coordinates** — the plan
//! seed plus (session, clip) or (generation, session) — never a draw
//! from sequential RNG state. That is what makes the chaos experiment's
//! integrity check possible: an uninterrupted reference run and a
//! kill/restore run consult the injector at the same coordinates and see
//! the same faults, so any divergence in their verdict streams is the
//! recovery path's fault, not the injector's.

use crate::checkpoint::SupervisorSnapshot;
use crate::store::StorageFaults;
use crate::{Result, ServeError};
use lumen_dsp::mix::{splitmix as mix, unit};
use serde::{Deserialize, Serialize};

/// What a chaos run does to the fleet, beyond transport faults.
///
/// Probabilities are per coordinate (see each field); zero disables that
/// fault. The default plan is quiet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Seed for every chaos decision.
    pub seed: u64,
    /// Faults injected into checkpoint-store writes (the harness passes
    /// these to [`MemStorage::with_faults`](crate::MemStorage)).
    pub storage: StorageFaults,
    /// Per-(session, clip) probability the clip arrives poisoned: its
    /// samples are replaced with non-finite values, driving the detection
    /// path into its error branch (a counted `DetectionFailed` shed).
    pub poison_clip: f64,
    /// Per-session probability of one detection-error storm: a window of
    /// [`ChaosPlan::storm_clips`] consecutive poisoned clips, starting at
    /// a seeded clip index below [`ChaosPlan::storm_start_window`].
    pub storm: f64,
    /// Length of a detection-error storm, clips.
    pub storm_clips: u64,
    /// Earliest window (in clips) a storm may start in.
    pub storm_start_window: u64,
    /// Per-feed-step probability the clock stalls: the harness burns
    /// [`ChaosPlan::stall_ticks`] extra idle ticks before the next
    /// sample.
    pub stall: f64,
    /// Ticks lost per stall.
    pub stall_ticks: u64,
    /// Per-(generation, session) probability that the session's entry in
    /// the written checkpoint is corrupted *before* framing — the CRC
    /// still validates, so only the per-session restore validation can
    /// catch it (and must quarantine exactly that session).
    pub corrupt_session: f64,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan::seeded(0)
    }
}

impl ChaosPlan {
    /// A quiet plan (no faults) drawing any future decisions from `seed`.
    pub fn seeded(seed: u64) -> Self {
        ChaosPlan {
            seed,
            storage: StorageFaults::none(),
            poison_clip: 0.0,
            storm: 0.0,
            storm_clips: 4,
            storm_start_window: 32,
            stall: 0.0,
            stall_ticks: 3,
            corrupt_session: 0.0,
        }
    }

    /// Validates the plan.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for probabilities outside
    /// `[0, 1]` or degenerate storm/stall shapes.
    pub fn validate(&self) -> Result<()> {
        self.storage.validate().map_err(ServeError::from)?;
        for (field, p) in [
            ("poison_clip", self.poison_clip),
            ("storm", self.storm),
            ("stall", self.stall),
            ("corrupt_session", self.corrupt_session),
        ] {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(ServeError::invalid_config(
                    match field {
                        "poison_clip" => "poison_clip",
                        "storm" => "storm",
                        "stall" => "stall",
                        _ => "corrupt_session",
                    },
                    "must lie in [0, 1]",
                ));
            }
        }
        if self.storm > 0.0 && self.storm_clips == 0 {
            return Err(ServeError::invalid_config(
                "storm_clips",
                "a storm of zero clips does nothing",
            ));
        }
        if self.storm > 0.0 && self.storm_start_window == 0 {
            return Err(ServeError::invalid_config(
                "storm_start_window",
                "must be positive when storms are enabled",
            ));
        }
        if self.stall > 0.0 && self.stall_ticks == 0 {
            return Err(ServeError::invalid_config(
                "stall_ticks",
                "a stall of zero ticks does nothing",
            ));
        }
        Ok(())
    }
}

/// Ways one stored [`SessionSnapshot`](crate::SessionSnapshot) is rotted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionCorruption {
    /// An extra received-side sample is appended to the partial clip, so
    /// the tx/rx shape check fails.
    ShapeDrift,
    /// A queued clip claims to have completed in the snapshot's future,
    /// so the monotonicity check fails.
    FutureTick,
}

/// Stateless decider for a [`ChaosPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosInjector {
    plan: ChaosPlan,
}

impl ChaosInjector {
    /// Builds an injector for `plan`.
    ///
    /// # Errors
    ///
    /// Propagates [`ChaosPlan::validate`] failures.
    pub fn new(plan: ChaosPlan) -> Result<Self> {
        plan.validate()?;
        Ok(ChaosInjector { plan })
    }

    /// The governing plan.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Whether the clip `(session, clip)` arrives poisoned — either by
    /// the independent per-clip draw or because it falls inside the
    /// session's detection-error storm.
    pub fn poison_clip(&self, session: u64, clip: u64) -> bool {
        if unit(mix(self.plan.seed, TAG_POISON, session, clip)) < self.plan.poison_clip {
            return true;
        }
        if self.plan.storm > 0.0
            && unit(mix(self.plan.seed, TAG_STORM, session, 0)) < self.plan.storm
        {
            let start =
                mix(self.plan.seed, TAG_STORM_START, session, 0) % self.plan.storm_start_window;
            return clip >= start && clip < start + self.plan.storm_clips;
        }
        false
    }

    /// Extra idle ticks to burn before feed step `step` (0 = no stall).
    pub fn stall_ticks(&self, step: u64) -> u64 {
        if unit(mix(self.plan.seed, TAG_STALL, step, 0)) < self.plan.stall {
            self.plan.stall_ticks
        } else {
            0
        }
    }

    /// The corruption (if any) this plan inflicts on `session`'s entry in
    /// checkpoint `generation`.
    pub fn session_corruption(&self, generation: u64, session: u64) -> Option<SessionCorruption> {
        let h = mix(self.plan.seed, TAG_CORRUPT, generation, session);
        if unit(h) >= self.plan.corrupt_session {
            return None;
        }
        Some(if mix(h, TAG_CORRUPT, 1, 0).is_multiple_of(2) {
            SessionCorruption::ShapeDrift
        } else {
            SessionCorruption::FutureTick
        })
    }

    /// Rots the per-session entries of a snapshot about to be framed and
    /// written as `generation`; returns the corrupted session ids.
    ///
    /// The record's CRC is computed *after* this mutation, so the store's
    /// framing cannot catch it — only
    /// [`Supervisor::restore_with_report`](crate::Supervisor::restore_with_report)'s
    /// per-session validation can, by quarantining exactly these
    /// sessions.
    pub fn corrupt_snapshot(&self, generation: u64, snap: &mut SupervisorSnapshot) -> Vec<u64> {
        let mut corrupted = Vec::new();
        for session in &mut snap.sessions {
            let Some(kind) = self.session_corruption(generation, session.id) else {
                continue;
            };
            match kind {
                SessionCorruption::FutureTick if !session.queue.is_empty() => {
                    if let Some(crate::QueuedClipSnapshot::Clip { completed_at, .. }) =
                        session.queue.first_mut()
                    {
                        *completed_at = snap.tick.saturating_add(1_000_000);
                    } else {
                        session.partial_rx.push(0.0);
                    }
                }
                _ => session.partial_rx.push(0.0),
            }
            corrupted.push(session.id);
        }
        corrupted
    }
}

const TAG_POISON: u64 = 0x01;
const TAG_STORM: u64 = 0x02;
const TAG_STORM_START: u64 = 0x03;
const TAG_STALL: u64 = 0x04;
const TAG_CORRUPT: u64 = 0x05;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_injects_nothing() {
        let injector = ChaosInjector::new(ChaosPlan::seeded(7)).unwrap();
        for s in 0..8 {
            for c in 0..32 {
                assert!(!injector.poison_clip(s, c));
                assert_eq!(injector.session_corruption(s, c), None);
            }
            assert_eq!(injector.stall_ticks(s), 0);
        }
    }

    #[test]
    fn decisions_are_stateless_and_seeded() {
        let mut plan = ChaosPlan::seeded(11);
        plan.poison_clip = 0.3;
        plan.stall = 0.3;
        plan.corrupt_session = 0.3;
        let a = ChaosInjector::new(plan).unwrap();
        let b = ChaosInjector::new(plan).unwrap();
        // Querying in different orders changes nothing: decisions are
        // functions of coordinates, not of call history.
        let forward: Vec<bool> = (0..64).map(|c| a.poison_clip(1, c)).collect();
        let backward: Vec<bool> = (0..64).rev().map(|c| b.poison_clip(1, c)).collect();
        let backward: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
        assert!(forward.iter().any(|&p| p), "some clips poisoned");
        assert!(!forward.iter().all(|&p| p), "not all clips poisoned");
        let mut other = plan;
        other.seed = 12;
        let c = ChaosInjector::new(other).unwrap();
        let reseeded: Vec<bool> = (0..64).map(|i| c.poison_clip(1, i)).collect();
        assert_ne!(forward, reseeded);
    }

    #[test]
    fn storms_cover_a_contiguous_window() {
        let mut plan = ChaosPlan::seeded(5);
        plan.storm = 1.0;
        plan.storm_clips = 4;
        plan.storm_start_window = 8;
        let injector = ChaosInjector::new(plan).unwrap();
        for session in 0..8u64 {
            let poisoned: Vec<u64> = (0..64)
                .filter(|&c| injector.poison_clip(session, c))
                .collect();
            assert_eq!(poisoned.len(), 4, "session {session}");
            assert!(poisoned.windows(2).all(|w| w[1] == w[0] + 1));
            assert!(poisoned[0] < 8);
        }
    }

    #[test]
    fn validation_rejects_bad_probabilities() {
        let mut plan = ChaosPlan::seeded(1);
        plan.poison_clip = 1.5;
        assert!(ChaosInjector::new(plan).is_err());
        let mut plan = ChaosPlan::seeded(1);
        plan.storm = 0.5;
        plan.storm_clips = 0;
        assert!(ChaosInjector::new(plan).is_err());
        let mut plan = ChaosPlan::seeded(1);
        plan.stall = 0.5;
        plan.stall_ticks = 0;
        assert!(ChaosInjector::new(plan).is_err());
        let mut plan = ChaosPlan::seeded(1);
        plan.storage.bit_flip = -0.1;
        assert!(ChaosInjector::new(plan).is_err());
    }
}
