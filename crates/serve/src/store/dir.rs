//! Real-filesystem storage backend.
//!
//! The one module in the crate allowed to touch `std::fs` (see
//! `lint.toml`): everything above it goes through the [`Storage`] trait
//! and stays filesystem-free. Writes publish atomically by writing a
//! temporary sibling and renaming it over the final name — after a crash
//! an entry is either fully present or absent, and whatever damage the
//! platform still manages to inflict (a torn page, a flipped bit) is
//! caught by the CRC framing above this layer.
//!
//! Temporary names come from a per-handle sequence number, not a clock or
//! entropy source, keeping the backend as deterministic as a real disk
//! allows.

use std::fs;
use std::path::{Path, PathBuf};

use super::{Storage, StoreError};

/// Directory-backed [`Storage`]: one flat directory, one file per entry.
#[derive(Debug)]
pub struct DirStorage {
    root: PathBuf,
    tmp_seq: u64,
}

impl DirStorage {
    /// Opens (creating if needed) the backing directory.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory cannot be created.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(io_err)?;
        Ok(DirStorage { root, tmp_seq: 0 })
    }

    /// The backing directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Rejects entry names that would escape the backing directory.
    fn entry_path(&self, name: &str) -> Result<PathBuf, StoreError> {
        if name.is_empty() || name.contains(['/', '\\']) || name.starts_with('.') {
            return Err(StoreError::Io(format!("invalid entry name `{name}`")));
        }
        Ok(self.root.join(name))
    }
}

impl Storage for DirStorage {
    fn list(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root).map_err(io_err)? {
            let entry = entry.map_err(io_err)?;
            if entry.file_type().map_err(io_err)?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    if !name.starts_with('.') {
                        names.push(name.to_string());
                    }
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        fs::read(self.entry_path(name)?).map_err(io_err)
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let target = self.entry_path(name)?;
        self.tmp_seq += 1;
        let tmp = self.root.join(format!(".tmp-{:08}", self.tmp_seq));
        fs::write(&tmp, bytes).map_err(io_err)?;
        fs::rename(&tmp, &target).map_err(|e| {
            // Leave no temporary behind on a failed publish.
            let _ = fs::remove_file(&tmp);
            io_err(e)
        })
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        let from_path = self.entry_path(from)?;
        // A quarantine name is a valid entry name plus a fixed suffix;
        // run the traversal guard against the base name.
        let base = to.strip_suffix(".quarantined").unwrap_or(to);
        self.entry_path(base)?;
        fs::rename(from_path, self.root.join(to)).map_err(io_err)
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        fs::remove_file(self.entry_path(name)?).map_err(io_err)
    }
}

fn io_err(e: std::io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}
