//! Per-session circuit breaker.
//!
//! A wedged or hostile session must not be allowed to burn the global
//! detection budget forever: repeated watchdog re-triggers or detection
//! errors trip the session's breaker to [`BreakerState::Open`], its clips
//! are shed without detection work for a cool-down, and a bounded number
//! of half-open probe clips then decide whether to restore it. The state
//! machine is tick-driven (no wall clock) so runs replay deterministically.

use serde::{Deserialize, Serialize, Value};

/// Circuit-breaker tuning shared by every session of a supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures (watchdog re-triggers or detection errors)
    /// that trip a closed breaker open.
    pub trip_after: usize,
    /// Ticks an open breaker sheds clips before allowing half-open probes.
    pub open_ticks: u64,
    /// Consecutive successful probe clips required to close a half-open
    /// breaker again.
    pub half_open_probes: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_after: 3,
            open_ticks: 300,
            half_open_probes: 2,
        }
    }
}

impl BreakerConfig {
    /// Validates the tuning.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ServeError::InvalidConfig`] when any threshold is
    /// zero — a breaker that trips after zero failures (or re-closes after
    /// zero probes) has no defined state machine.
    pub fn validate(&self) -> crate::Result<()> {
        if self.trip_after == 0 {
            return Err(crate::ServeError::invalid_config(
                "breaker.trip_after",
                "must be non-zero",
            ));
        }
        if self.open_ticks == 0 {
            return Err(crate::ServeError::invalid_config(
                "breaker.open_ticks",
                "must be non-zero",
            ));
        }
        if self.half_open_probes == 0 {
            return Err(crate::ServeError::invalid_config(
                "breaker.half_open_probes",
                "must be non-zero",
            ));
        }
        Ok(())
    }
}

/// The breaker's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Clips flow normally; `failures` consecutive failures so far.
    Closed {
        /// Consecutive failures since the last success.
        failures: usize,
    },
    /// Clips are shed for `remaining_ticks` more ticks.
    Open {
        /// Ticks left before half-open probing begins.
        remaining_ticks: u64,
    },
    /// Probe clips are admitted; `successes` consecutive probe successes.
    HalfOpen {
        /// Consecutive successful probes so far.
        successes: usize,
    },
}

// The vendored serde derive handles unit-variant enums only, so the
// data-carrying breaker state serializes by hand as a tagged object.
impl Serialize for BreakerState {
    fn serialize(&self) -> Value {
        let (tag, count) = match self {
            BreakerState::Closed { failures } => ("closed", *failures as u64),
            BreakerState::Open { remaining_ticks } => ("open", *remaining_ticks),
            BreakerState::HalfOpen { successes } => ("half_open", *successes as u64),
        };
        Value::Object(vec![
            ("state".to_string(), Value::String(tag.to_string())),
            ("count".to_string(), count.serialize()),
        ])
    }
}

impl Deserialize for BreakerState {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let tag = v.field("state")?.as_str()?;
        let count = v.field("count")?.as_u64()?;
        match tag {
            "closed" => Ok(BreakerState::Closed {
                failures: count as usize,
            }),
            "open" => Ok(BreakerState::Open {
                remaining_ticks: count,
            }),
            "half_open" => Ok(BreakerState::HalfOpen {
                successes: count as usize,
            }),
            other => Err(serde::Error::custom(format!(
                "unknown breaker state `{other}`"
            ))),
        }
    }
}

/// A transition worth reporting to the caller (and marking in obs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    /// Closed (or half-open) → open: the session is now shedding.
    Tripped,
    /// Open → half-open: probe clips are admitted again.
    Probing,
    /// Half-open → closed: the session is fully restored.
    Restored,
}

/// The per-session circuit breaker state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed { failures: 0 },
        }
    }

    /// Reconstructs a breaker from a checkpointed state.
    pub fn with_state(config: BreakerConfig, state: BreakerState) -> Self {
        CircuitBreaker { config, state }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// `true` while clips must be shed without detection work.
    pub fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open { .. })
    }

    /// Records a successfully served, conclusive clip.
    pub fn record_success(&mut self) -> Option<BreakerTransition> {
        match self.state {
            BreakerState::Closed { .. } => {
                self.state = BreakerState::Closed { failures: 0 };
                None
            }
            BreakerState::HalfOpen { successes } => {
                let successes = successes + 1;
                if successes >= self.config.half_open_probes {
                    self.state = BreakerState::Closed { failures: 0 };
                    Some(BreakerTransition::Restored)
                } else {
                    self.state = BreakerState::HalfOpen { successes };
                    None
                }
            }
            // Open sessions are shed before detection, so a success while
            // open cannot arise; keep the state machine total anyway.
            BreakerState::Open { .. } => None,
        }
    }

    /// Records a failure: a watchdog re-trigger or a detection error.
    pub fn record_failure(&mut self) -> Option<BreakerTransition> {
        match self.state {
            BreakerState::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.config.trip_after {
                    self.state = BreakerState::Open {
                        remaining_ticks: self.config.open_ticks,
                    };
                    Some(BreakerTransition::Tripped)
                } else {
                    self.state = BreakerState::Closed { failures };
                    None
                }
            }
            // One failed probe re-opens immediately: half-open exists to
            // confirm recovery, not to re-accumulate a failure budget.
            BreakerState::HalfOpen { .. } => {
                self.state = BreakerState::Open {
                    remaining_ticks: self.config.open_ticks,
                };
                Some(BreakerTransition::Tripped)
            }
            BreakerState::Open { .. } => None,
        }
    }

    /// Advances one tick; an expiring cool-down moves to half-open.
    pub fn tick(&mut self) -> Option<BreakerTransition> {
        if let BreakerState::Open { remaining_ticks } = self.state {
            let remaining_ticks = remaining_ticks.saturating_sub(1);
            if remaining_ticks == 0 {
                self.state = BreakerState::HalfOpen { successes: 0 };
                return Some(BreakerTransition::Probing);
            }
            self.state = BreakerState::Open { remaining_ticks };
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            trip_after: 2,
            open_ticks: 3,
            half_open_probes: 2,
        })
    }

    #[test]
    fn config_validates() {
        assert!(BreakerConfig::default().validate().is_ok());
        for bad in [
            BreakerConfig {
                trip_after: 0,
                ..Default::default()
            },
            BreakerConfig {
                open_ticks: 0,
                ..Default::default()
            },
            BreakerConfig {
                half_open_probes: 0,
                ..Default::default()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn trips_after_consecutive_failures_and_success_resets() {
        let mut b = breaker();
        assert_eq!(b.record_failure(), None);
        assert_eq!(b.record_success(), None); // resets the failure count
        assert_eq!(b.record_failure(), None);
        assert_eq!(b.record_failure(), Some(BreakerTransition::Tripped));
        assert!(b.is_open());
    }

    #[test]
    fn full_cycle_trip_probe_restore() {
        let mut b = breaker();
        b.record_failure();
        assert_eq!(b.record_failure(), Some(BreakerTransition::Tripped));
        assert_eq!(b.tick(), None);
        assert_eq!(b.tick(), None);
        assert_eq!(b.tick(), Some(BreakerTransition::Probing));
        assert_eq!(b.state(), BreakerState::HalfOpen { successes: 0 });
        assert_eq!(b.record_success(), None);
        assert_eq!(b.record_success(), Some(BreakerTransition::Restored));
        assert_eq!(b.state(), BreakerState::Closed { failures: 0 });
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let mut b = breaker();
        b.record_failure();
        b.record_failure();
        for _ in 0..3 {
            b.tick();
        }
        assert_eq!(b.state(), BreakerState::HalfOpen { successes: 0 });
        assert_eq!(b.record_failure(), Some(BreakerTransition::Tripped));
        assert!(b.is_open());
    }

    #[test]
    fn states_round_trip_through_serde() {
        for state in [
            BreakerState::Closed { failures: 1 },
            BreakerState::Open {
                remaining_ticks: 42,
            },
            BreakerState::HalfOpen { successes: 1 },
        ] {
            let back = BreakerState::deserialize(&state.serialize()).unwrap();
            assert_eq!(back, state);
        }
        assert!(BreakerState::deserialize(&Value::Null).is_err());
    }
}
