//! The multi-session supervisor: admission, backpressure, shedding.
//!
//! One [`Supervisor`] owns a fleet of [`StreamingDetector`]s — one per
//! admitted chat session — and multiplexes their clip detections onto a
//! bounded, tick-driven work budget. The paper triggers its detector
//! "multiple times during the real-time video chat" for *one* session
//! (Sec. III-B); a deployment verifying many concurrent sessions must
//! decide what happens when the offered detection load exceeds capacity.
//! The supervisor's answer: clips are *shed, never silently dropped* —
//! every shed is recorded into the session's verdict stream as a
//! [`Withheld`](lumen_core::quality::InconclusiveReason::Withheld)
//! abstention (feeding the inconclusive-clip watchdog), counted in
//! [`ServeStats`], and reported as a [`SessionEvent`], so
//! `served + shed == offered` holds exactly and an attacker cannot DoS
//! the defense into silence.
//!
//! Verdict-order discipline: a session's verdict stream carries exactly
//! one entry per completed clip, *in completion order*, whether the clip
//! was served or shed. Sheds decided at completion time (queue full,
//! breaker open) therefore enqueue an ordering tombstone rather than
//! recording immediately — the tombstone is flushed once every earlier
//! clip has been resolved, which is what keeps served clips' outcomes
//! byte-identical to an unloaded run.

use crate::breaker::{BreakerState, BreakerTransition, CircuitBreaker};
use crate::checkpoint::{QueuedClipSnapshot, SessionSnapshot, SupervisorSnapshot};
use crate::store::{CheckpointStore, QuarantinedGeneration, Storage};
use crate::{BreakerConfig, Result, ServeError};
use lumen_chat::clock::SimClock;
use lumen_chat::trace::TracePair;
use lumen_core::stream::{ClipVerdict, StreamingDetector};
use lumen_obs::{stage, FanoutSink, FlightConfig, FlightSink, Recorder, Sink, Snapshot};
use lumen_probe::{ChallengeSchedule, ProbeDirector, ProbeVerdict};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Sheds recorded within a single [`Supervisor::tick`] at or above this
/// count constitute a *shed burst*: an overload spike worth a
/// flight-recorder post-mortem, not just a counter increment.
pub const SHED_BURST_TRIGGER: u64 = 4;

/// Tuning for a [`Supervisor`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Maximum concurrently admitted sessions.
    pub max_sessions: usize,
    /// Completed clips a session may hold queued for detection; a clip
    /// completing against a full queue is shed with
    /// [`ShedReason::QueueFull`].
    pub queue_clips: usize,
    /// Detection credits granted per budget period: the global work
    /// budget is `budget_clips` clip detections every
    /// `budget_period_ticks` ticks, shared by all sessions round-robin.
    pub budget_clips: u64,
    /// Length of one budget period, in ticks.
    pub budget_period_ticks: u64,
    /// A queued clip older than this many ticks can no longer meet its
    /// latency deadline and is shed with [`ShedReason::DeadlineExceeded`].
    pub deadline_ticks: u64,
    /// Tick rate of the supervisor clock, Hz (the video sample rate).
    pub tick_rate_hz: f64,
    /// Per-session circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 64,
            queue_clips: 2,
            budget_clips: 4,
            budget_period_ticks: 10,
            deadline_ticks: 300,
            tick_rate_hz: 10.0,
            breaker: BreakerConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Validates the tuning.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for any zero capacity,
    /// budget, period or deadline, or a non-positive tick rate.
    pub fn validate(&self) -> Result<()> {
        if self.max_sessions == 0 {
            return Err(ServeError::invalid_config(
                "max_sessions",
                "must be non-zero",
            ));
        }
        if self.queue_clips == 0 {
            return Err(ServeError::invalid_config(
                "queue_clips",
                "must be non-zero",
            ));
        }
        if self.budget_clips == 0 {
            return Err(ServeError::invalid_config(
                "budget_clips",
                "must be non-zero",
            ));
        }
        if self.budget_period_ticks == 0 {
            return Err(ServeError::invalid_config(
                "budget_period_ticks",
                "must be non-zero",
            ));
        }
        if self.deadline_ticks == 0 {
            return Err(ServeError::invalid_config(
                "deadline_ticks",
                "must be non-zero",
            ));
        }
        if !(self.tick_rate_hz.is_finite() && self.tick_rate_hz > 0.0) {
            return Err(ServeError::invalid_config(
                "tick_rate_hz",
                "must be finite and positive",
            ));
        }
        self.breaker.validate()
    }
}

/// Why a clip (or a session) was shed rather than served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The session's clip queue was already at capacity.
    QueueFull,
    /// The clip waited past its detection deadline.
    DeadlineExceeded,
    /// The session's circuit breaker was open.
    BreakerOpen,
    /// Detection failed on the clip; it is counted, not retried.
    DetectionFailed,
    /// The supervisor was at its session capacity (admission only).
    CapacityExhausted,
    /// The session was released with clips still queued.
    SessionClosed,
    /// The supervisor is draining for shutdown (admission only).
    Draining,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let label = match self {
            ShedReason::QueueFull => "queue full",
            ShedReason::DeadlineExceeded => "deadline exceeded",
            ShedReason::BreakerOpen => "breaker open",
            ShedReason::DetectionFailed => "detection failed",
            ShedReason::CapacityExhausted => "capacity exhausted",
            ShedReason::SessionClosed => "session closed",
            ShedReason::Draining => "draining",
        };
        f.write_str(label)
    }
}

/// Outcome of [`Supervisor::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// The session was admitted under the returned id.
    Admitted {
        /// The new session's id.
        session: u64,
    },
    /// The session was turned away.
    Shed {
        /// Why admission was refused.
        reason: ShedReason,
    },
}

impl AdmitOutcome {
    /// The admitted session id, if any.
    pub fn session(&self) -> Option<u64> {
        match self {
            AdmitOutcome::Admitted { session } => Some(*session),
            AdmitOutcome::Shed { .. } => None,
        }
    }
}

/// Disposition of a clip the moment it completes inside
/// [`Supervisor::offer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClipAdmission {
    /// The clip was queued for detection.
    Admitted,
    /// The clip will be shed: its `Withheld` verdict is recorded once
    /// every earlier clip of the session has been resolved, preserving
    /// completion order in the verdict stream.
    Shed {
        /// Why the clip was refused.
        reason: ShedReason,
    },
}

/// What happened inside a session, reported in deterministic order.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionEvent {
    /// The session the event belongs to.
    pub session: u64,
    /// The event itself.
    pub kind: SessionEventKind,
}

/// The payload of a [`SessionEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEventKind {
    /// A clip was served and produced this verdict.
    Verdict(ClipVerdict),
    /// A clip was shed; the recorded `Withheld` verdict is attached.
    Shed {
        /// Why the clip was shed.
        reason: ShedReason,
        /// The abstention recorded into the session's verdict stream.
        verdict: ClipVerdict,
    },
    /// The session's circuit breaker changed position.
    Breaker(BreakerTransition),
    /// The session's probe director wants this challenge transmitted:
    /// the caller-side client should arm a
    /// [`ProbeInjector`](lumen_probe::ProbeInjector) with the schedule
    /// and later hand the resulting trace pair to
    /// [`Supervisor::resolve_probe`].
    ProbeRequested(ChallengeSchedule),
    /// A probe round was verified; conclusive verdicts have already been
    /// fused into the session's vote history as one vote.
    Probe(ProbeVerdict),
}

/// Aggregate counters of one supervisor, exact by construction:
/// `served_clips + shed_clips == offered_clips` once every queue has
/// drained, and `shed_clips` is the sum of the by-reason counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Clips completed by admitted sessions.
    pub offered_clips: u64,
    /// Clips served to detection.
    pub served_clips: u64,
    /// Clips shed (all reasons).
    pub shed_clips: u64,
    /// Sheds because the session queue was full.
    pub shed_queue_full: u64,
    /// Sheds because the clip missed its deadline.
    pub shed_deadline: u64,
    /// Sheds because the session breaker was open.
    pub shed_breaker: u64,
    /// Sheds because detection failed on the clip.
    pub shed_failed: u64,
    /// Sheds because the session was released with clips queued.
    pub shed_closed: u64,
    /// Sessions refused at admission.
    pub rejected_sessions: u64,
}

impl ServeStats {
    /// Sums two stat sets element-wise. A fleet of shards aggregates its
    /// global accounting this way, so `Σ served + Σ shed == Σ offered`
    /// holds across shards exactly as it does within one supervisor.
    #[must_use]
    pub fn merged(&self, other: &ServeStats) -> ServeStats {
        ServeStats {
            offered_clips: self.offered_clips + other.offered_clips,
            served_clips: self.served_clips + other.served_clips,
            shed_clips: self.shed_clips + other.shed_clips,
            shed_queue_full: self.shed_queue_full + other.shed_queue_full,
            shed_deadline: self.shed_deadline + other.shed_deadline,
            shed_breaker: self.shed_breaker + other.shed_breaker,
            shed_failed: self.shed_failed + other.shed_failed,
            shed_closed: self.shed_closed + other.shed_closed,
            rejected_sessions: self.rejected_sessions + other.rejected_sessions,
        }
    }
}

/// One entry of a session's pending-clip queue. Tombstones hold the
/// verdict-stream position of a clip whose shedding was decided at
/// completion time; they cost no detection budget.
#[derive(Debug, Clone)]
enum QueuedClip {
    /// A completed clip awaiting detection.
    Clip {
        tx: Vec<f64>,
        rx: Vec<f64>,
        completed_at: u64,
    },
    /// An ordering placeholder for an already-decided shed.
    Tombstone { reason: ShedReason },
}

#[derive(Debug)]
struct SessionSlot {
    stream: StreamingDetector,
    partial_tx: Vec<f64>,
    partial_rx: Vec<f64>,
    queue: VecDeque<QueuedClip>,
    breaker: CircuitBreaker,
    probe: Option<ProbeDirector>,
}

impl SessionSlot {
    fn queued_real_clips(&self) -> usize {
        self.queue
            .iter()
            .filter(|c| matches!(c, QueuedClip::Clip { .. }))
            .count()
    }
}

/// One session dropped during a graceful (partial) restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedSession {
    /// The session id carried by the rejected snapshot entry.
    pub id: u64,
    /// Why its snapshot failed validation.
    pub reason: String,
}

/// Outcome of [`Supervisor::restore_with_report`]: which sessions came
/// back intact and which were quarantined instead of failing the fleet.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RestoreReport {
    /// Sessions restored intact, in snapshot order.
    pub restored: Vec<u64>,
    /// Sessions whose snapshot entries failed validation and were
    /// dropped (the host re-admits them fresh).
    pub quarantined: Vec<QuarantinedSession>,
    /// The checkpoint generation actually restored, when the supervisor
    /// came back through a [`CheckpointStore`] (`None` for a direct
    /// snapshot restore).
    pub fallback_generation: Option<u64>,
    /// Newer generations rejected before the restored one (0 = the
    /// newest stored generation was valid).
    pub fallback_depth: usize,
    /// Corrupt generations the store quarantined during the load.
    pub generation_quarantines: Vec<QuarantinedGeneration>,
}

/// A supervised fleet of streaming detectors sharing one detection budget.
#[derive(Debug)]
pub struct Supervisor {
    config: ServeConfig,
    clock: SimClock,
    sessions: BTreeMap<u64, SessionSlot>,
    next_id: u64,
    credits: u64,
    cursor: u64,
    events: Vec<SessionEvent>,
    latencies: Vec<u64>,
    stats: ServeStats,
    recorder: Recorder,
    flight: Option<Arc<FlightSink>>,
    draining: bool,
}

impl Supervisor {
    /// A supervisor with no sessions and a full first budget period.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when the config fails
    /// [`ServeConfig::validate`].
    pub fn new(config: ServeConfig) -> Result<Self> {
        config.validate()?;
        let clock = SimClock::at_rate(config.tick_rate_hz);
        let credits = config.budget_clips;
        Ok(Supervisor {
            config,
            clock,
            sessions: BTreeMap::new(),
            next_id: 0,
            credits,
            cursor: 0,
            events: Vec::new(),
            latencies: Vec::new(),
            stats: ServeStats::default(),
            recorder: Recorder::null(),
            flight: None,
            draining: false,
        })
    }

    /// Attaches an observability recorder, propagating it into every
    /// admitted (and subsequently admitted) session's detector so the
    /// whole fleet shares one event stream with session/clip trace tags.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self.propagate_recorder();
        self
    }

    /// Attaches a flight recorder: a bounded tick-stamped event ring with
    /// an always-on metrics fold. All supervisor and per-session
    /// instrumentation flows into it, [`Supervisor::metrics_snapshot`] /
    /// [`Supervisor::dump_flight_record`] become live, and anomaly
    /// triggers (breaker trip, shed burst, watchdog retrigger, suspicious
    /// probe verdicts) freeze post-mortem bundles automatically.
    pub fn with_flight(self, config: FlightConfig) -> Self {
        self.with_flight_tee(config, None)
    }

    /// [`Supervisor::with_flight`] with the event stream additionally
    /// duplicated into `extra` (e.g. a JSONL capture file) via a fanout.
    pub fn with_flight_tee(mut self, config: FlightConfig, extra: Option<Arc<dyn Sink>>) -> Self {
        let flight = Arc::new(FlightSink::new(config));
        flight.set_tick(self.clock.tick());
        self.recorder = match extra {
            Some(extra) => Recorder::new(Arc::new(FanoutSink::new(vec![
                flight.clone() as Arc<dyn Sink>,
                extra,
            ]))),
            None => Recorder::new(flight.clone()),
        };
        self.flight = Some(flight);
        self.propagate_recorder();
        self
    }

    /// Pushes the current recorder into every admitted session's stream.
    fn propagate_recorder(&mut self) {
        if !self.recorder.is_enabled() {
            return;
        }
        for slot in self.sessions.values_mut() {
            slot.stream.set_recorder(self.recorder.clone());
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Admits a new session around the given (already trained) streaming
    /// detector. At capacity the session is explicitly turned away —
    /// counted in [`ServeStats::rejected_sessions`], never queued.
    pub fn admit(&mut self, stream: StreamingDetector) -> AdmitOutcome {
        self.admit_with(stream, None)
    }

    /// [`Supervisor::admit`] with an active-probing director attached:
    /// whenever the passive path abstains, the director may request a
    /// luminance challenge (surfaced as
    /// [`SessionEventKind::ProbeRequested`]) whose verified response is
    /// fused back through [`Supervisor::resolve_probe`].
    pub fn admit_probed(
        &mut self,
        stream: StreamingDetector,
        probe: ProbeDirector,
    ) -> AdmitOutcome {
        self.admit_with(stream, Some(probe))
    }

    fn admit_with(
        &mut self,
        mut stream: StreamingDetector,
        probe: Option<ProbeDirector>,
    ) -> AdmitOutcome {
        if self.draining {
            self.stats.rejected_sessions += 1;
            self.recorder.add("serve.rejected_sessions", 1);
            return AdmitOutcome::Shed {
                reason: ShedReason::Draining,
            };
        }
        if self.sessions.len() >= self.config.max_sessions {
            self.stats.rejected_sessions += 1;
            self.recorder.add("serve.rejected_sessions", 1);
            return AdmitOutcome::Shed {
                reason: ShedReason::CapacityExhausted,
            };
        }
        let session = self.next_id;
        self.next_id += 1;
        if self.recorder.is_enabled() {
            // The fleet shares one recorder; per-session attribution comes
            // from the trace scopes opened around each unit of work.
            stream.set_recorder(self.recorder.clone());
        }
        self.sessions.insert(
            session,
            SessionSlot {
                stream,
                partial_tx: Vec::new(),
                partial_rx: Vec::new(),
                queue: VecDeque::new(),
                breaker: CircuitBreaker::new(self.config.breaker),
                probe,
            },
        );
        self.recorder
            .gauge("serve.sessions", self.sessions.len() as f64);
        AdmitOutcome::Admitted { session }
    }

    /// Releases a session. Clips still queued are shed as
    /// [`ShedReason::SessionClosed`] (recorded into the verdict stream
    /// first, so accounting stays exact), then the detector is dropped.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`] for an id this supervisor
    /// does not own.
    pub fn release(&mut self, session: u64) -> Result<()> {
        let Some(mut slot) = self.sessions.remove(&session) else {
            return Err(ServeError::UnknownSession(session));
        };
        let _scope = self.recorder.session_scope(session);
        while let Some(entry) = slot.queue.pop_front() {
            let reason = match entry {
                QueuedClip::Clip { .. } => ShedReason::SessionClosed,
                QueuedClip::Tombstone { reason } => reason,
            };
            Self::record_shed(
                &mut slot.stream,
                session,
                reason,
                &mut self.stats,
                &mut self.events,
                &self.recorder,
            );
        }
        self.recorder
            .gauge("serve.sessions", self.sessions.len() as f64);
        Ok(())
    }

    /// Feeds one luminance sample pair into a session. Returns the clip's
    /// disposition when this sample completes a clip, `None` mid-clip.
    ///
    /// Samples are accepted unconditionally (backpressure acts on whole
    /// clips, the unit of detection work): when the completed clip cannot
    /// be queued — queue at capacity, or the session's breaker open — it
    /// is shed, with the `Withheld` verdict deferred behind the session's
    /// earlier pending clips to keep the verdict stream in completion
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`] for an id this supervisor
    /// does not own.
    pub fn offer(&mut self, session: u64, tx: f64, rx: f64) -> Result<Option<ClipAdmission>> {
        let Some(slot) = self.sessions.get_mut(&session) else {
            return Err(ServeError::UnknownSession(session));
        };
        slot.partial_tx.push(tx);
        slot.partial_rx.push(rx);
        if slot.partial_tx.len() < slot.stream.clip_samples() {
            return Ok(None);
        }
        let tx = std::mem::take(&mut slot.partial_tx);
        let rx = std::mem::take(&mut slot.partial_rx);
        self.stats.offered_clips += 1;
        let _scope = self.recorder.session_scope(session);
        self.recorder.add("serve.offered", 1);
        let admission = if slot.breaker.is_open() {
            ClipAdmission::Shed {
                reason: ShedReason::BreakerOpen,
            }
        } else if slot.queued_real_clips() >= self.config.queue_clips {
            ClipAdmission::Shed {
                reason: ShedReason::QueueFull,
            }
        } else {
            ClipAdmission::Admitted
        };
        match admission {
            ClipAdmission::Admitted => slot.queue.push_back(QueuedClip::Clip {
                tx,
                rx,
                completed_at: self.clock.tick(),
            }),
            ClipAdmission::Shed { reason } => {
                slot.queue.push_back(QueuedClip::Tombstone { reason })
            }
        }
        Ok(Some(admission))
    }

    /// Advances one tick: refills the budget at period boundaries, walks
    /// breaker cool-downs, sheds deadline-expired clips, then spends
    /// credits serving queued clips round-robin. Returns the new tick.
    // lint:hot-path
    pub fn tick(&mut self) -> u64 {
        self.clock.advance();
        let now = self.clock.tick();
        if let Some(flight) = &self.flight {
            // Stamp before any event of this tick is recorded, so the
            // flight ring's logical timestamps match the tick boundary.
            flight.set_tick(now);
        }
        let _tick_span = self.recorder.span(stage::SERVE_TICK);
        let shed_before = self.stats.shed_clips;
        if now.is_multiple_of(self.config.budget_period_ticks) {
            self.credits = self.config.budget_clips;
        }
        // Breaker cool-downs.
        for (&id, slot) in self.sessions.iter_mut() {
            if let Some(transition) = slot.breaker.tick() {
                self.recorder.mark("serve.breaker", "open->half_open");
                self.events.push(SessionEvent {
                    session: id,
                    kind: SessionEventKind::Breaker(transition),
                });
            }
        }
        // Flush tombstones and deadline-expired clips from queue fronts.
        let ids: Vec<u64> = self.sessions.keys().copied().collect();
        for &id in &ids {
            self.flush_front(id, now);
        }
        // Spend the budget round-robin across sessions with ready clips.
        while self.credits > 0 {
            let Some(id) = self.next_ready() else {
                break;
            };
            self.credits -= 1;
            self.serve_front(id, now);
            self.flush_front(id, now);
            self.cursor = id;
        }
        self.recorder
            .gauge("serve.queue_depth", self.pending_clips() as f64);
        if self.stats.shed_clips - shed_before >= SHED_BURST_TRIGGER {
            self.flight_trigger("shed_burst");
        }
        now
    }

    /// The next session after the fairness cursor whose queue front is a
    /// real (servable) clip.
    fn next_ready(&self) -> Option<u64> {
        let ready =
            |slot: &SessionSlot| matches!(slot.queue.front(), Some(QueuedClip::Clip { .. }));
        self.sessions
            .range(self.cursor.saturating_add(1)..)
            .find(|(_, s)| ready(s))
            .map(|(&id, _)| id)
            .or_else(|| {
                self.sessions
                    .range(..=self.cursor)
                    .find(|(_, s)| ready(s))
                    .map(|(&id, _)| id)
            })
    }

    /// Resolves everything at the queue front that needs no detection
    /// budget: tombstones, and clips already past their deadline.
    fn flush_front(&mut self, session: u64, now: u64) {
        let _scope = self.recorder.session_scope(session);
        loop {
            let Some(slot) = self.sessions.get_mut(&session) else {
                return;
            };
            let reason = match slot.queue.front() {
                Some(QueuedClip::Tombstone { reason }) => *reason,
                Some(QueuedClip::Clip { completed_at, .. })
                    if now.saturating_sub(*completed_at) > self.config.deadline_ticks =>
                {
                    ShedReason::DeadlineExceeded
                }
                _ => return,
            };
            slot.queue.pop_front();
            Self::record_shed(
                &mut slot.stream,
                session,
                reason,
                &mut self.stats,
                &mut self.events,
                &self.recorder,
            );
        }
    }

    /// Serves the clip at a session's queue front (the caller has checked
    /// it is a real clip and paid one credit for it).
    fn serve_front(&mut self, session: u64, now: u64) {
        let _scope = self.recorder.session_scope(session);
        let Some(slot) = self.sessions.get_mut(&session) else {
            // lint:allow(span-early-exit): the serve-clip span measures
            // real clip serving; a vanished session serves nothing
            return;
        };
        let Some(QueuedClip::Clip {
            tx,
            rx,
            completed_at,
        }) = slot.queue.pop_front()
        else {
            return;
        };
        let _clip_span = self.recorder.span(stage::SERVE_CLIP);
        let mut anomalies: Vec<&'static str> = Vec::new();
        // Detection errors must not desynchronise the clip boundary: on
        // failure the stream is rolled back to this pre-clip snapshot and
        // the clip is recorded as a counted shed instead.
        let before = slot.stream.snapshot();
        let mut verdict = None;
        for (t, r) in tx.iter().zip(&rx) {
            match slot.stream.push(*t, *r) {
                Ok(Some(v)) => verdict = Some(v),
                Ok(None) => {}
                Err(_) => break,
            }
        }
        match verdict {
            Some(v) => {
                self.stats.served_clips += 1;
                self.recorder.add("serve.served", 1);
                let latency = now.saturating_sub(completed_at);
                self.latencies.push(latency);
                self.recorder.observe("serve.latency_ticks", latency as f64);
                let transition = if v.retrigger {
                    anomalies.push("watchdog_retrigger");
                    slot.breaker.record_failure()
                } else if v.outcome.accepted().is_some() {
                    slot.breaker.record_success()
                } else {
                    None
                };
                if transition == Some(BreakerTransition::Tripped) {
                    anomalies.push("breaker_tripped");
                }
                // Passive abstention is the probe director's trigger: ask
                // it whether this is the moment to spend a challenge.
                let probe_request = slot.probe.as_mut().and_then(|d| d.observe(&v));
                self.events.push(SessionEvent {
                    session,
                    kind: SessionEventKind::Verdict(v),
                });
                Self::record_breaker_transition(
                    session,
                    transition,
                    &mut self.events,
                    &self.recorder,
                );
                if let Some(schedule) = probe_request {
                    self.recorder.add("serve.probe_requests", 1);
                    self.events.push(SessionEvent {
                        session,
                        kind: SessionEventKind::ProbeRequested(schedule),
                    });
                }
            }
            None => {
                // Either a push failed or the clip never closed (a
                // geometry mismatch); both are detection failures.
                if slot.stream.restore(&before).is_err() {
                    // The snapshot no longer fits the stream's geometry:
                    // the rollback itself failed, and the session may sit
                    // on a half-fed stream. That deserves a post-mortem
                    // bundle, not silence.
                    self.recorder.add("serve.restore_failed", 1);
                    anomalies.push("restore_failed");
                }
                let transition = slot.breaker.record_failure();
                if transition == Some(BreakerTransition::Tripped) {
                    anomalies.push("breaker_tripped");
                }
                Self::record_shed(
                    &mut slot.stream,
                    session,
                    ShedReason::DetectionFailed,
                    &mut self.stats,
                    &mut self.events,
                    &self.recorder,
                );
                Self::record_breaker_transition(
                    session,
                    transition,
                    &mut self.events,
                    &self.recorder,
                );
            }
        }
        for reason in anomalies {
            self.flight_trigger(reason);
        }
    }

    /// Emits a trace mark and freezes the flight ring into a post-mortem
    /// bundle. A no-op without an attached flight recorder.
    fn flight_trigger(&self, reason: &'static str) {
        if let Some(flight) = &self.flight {
            // The mark lands in the ring first, so the bundle itself
            // records what tripped it.
            self.recorder.mark("flight.trigger", reason);
            flight.trigger(reason);
        }
    }

    /// Records one shed into the session's verdict stream and every
    /// counter that must see it.
    fn record_shed(
        stream: &mut StreamingDetector,
        session: u64,
        reason: ShedReason,
        stats: &mut ServeStats,
        events: &mut Vec<SessionEvent>,
        recorder: &Recorder,
    ) {
        let verdict = stream.record_withheld();
        stats.shed_clips += 1;
        match reason {
            ShedReason::QueueFull => stats.shed_queue_full += 1,
            ShedReason::DeadlineExceeded => stats.shed_deadline += 1,
            ShedReason::BreakerOpen => stats.shed_breaker += 1,
            ShedReason::DetectionFailed => stats.shed_failed += 1,
            ShedReason::SessionClosed => stats.shed_closed += 1,
            // CapacityExhausted and Draining are admission outcomes, not
            // clip sheds; they cannot reach here but the match stays total.
            ShedReason::CapacityExhausted | ShedReason::Draining => {}
        }
        recorder.add("serve.shed", 1);
        // Per-cause counters, so a metrics snapshot can apportion the shed
        // total without replaying the event stream.
        recorder.add(
            match reason {
                ShedReason::QueueFull => "serve.shed.queue_full",
                ShedReason::DeadlineExceeded => "serve.shed.deadline",
                ShedReason::BreakerOpen => "serve.shed.breaker_open",
                ShedReason::DetectionFailed => "serve.shed.detection_failed",
                ShedReason::SessionClosed => "serve.shed.session_closed",
                ShedReason::CapacityExhausted => "serve.shed.capacity",
                ShedReason::Draining => "serve.shed.draining",
            },
            1,
        );
        events.push(SessionEvent {
            session,
            kind: SessionEventKind::Shed { reason, verdict },
        });
    }

    fn record_breaker_transition(
        session: u64,
        transition: Option<BreakerTransition>,
        events: &mut Vec<SessionEvent>,
        recorder: &Recorder,
    ) {
        let Some(transition) = transition else {
            return;
        };
        let detail = match transition {
            BreakerTransition::Tripped => "tripped open",
            BreakerTransition::Probing => "open->half_open",
            BreakerTransition::Restored => "restored closed",
        };
        recorder.mark("serve.breaker", detail);
        events.push(SessionEvent {
            session,
            kind: SessionEventKind::Breaker(transition),
        });
    }

    /// Drains every event accumulated since the last call, in the order
    /// they occurred.
    pub fn drain_events(&mut self) -> Vec<SessionEvent> {
        std::mem::take(&mut self.events)
    }

    /// Puts the supervisor into drain mode: every subsequent admission is
    /// turned away with [`ShedReason::Draining`] while already-admitted
    /// sessions keep being served. Drain mode is a property of this
    /// process, not of the fleet state — it is deliberately *not* part of
    /// [`Supervisor::snapshot`], so a restore always comes back accepting
    /// traffic.
    pub fn begin_drain(&mut self) {
        if !self.draining {
            self.draining = true;
            self.recorder.mark("serve.drain", "begin");
        }
    }

    /// Whether [`Supervisor::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Latency (ticks from clip completion to detection) of every served
    /// clip, in serve order.
    pub fn latencies_ticks(&self) -> &[u64] {
        &self.latencies
    }

    /// Number of admitted sessions.
    pub fn sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Admitted session ids, ascending.
    pub fn session_ids(&self) -> Vec<u64> {
        self.sessions.keys().copied().collect()
    }

    /// Queue entries (clips and tombstones) not yet resolved, across all
    /// sessions. Zero means every offered clip has been served or shed.
    pub fn pending_clips(&self) -> usize {
        self.sessions.values().map(|s| s.queue.len()).sum()
    }

    /// Queued *servable* clips (tombstones excluded) across all sessions.
    ///
    /// This is the backlog a fleet's work-stealing tier compares across
    /// shards: tombstones resolve for free at the next tick, so only real
    /// clips represent detection work waiting on budget.
    pub fn backlog_clips(&self) -> usize {
        self.sessions.values().map(|s| s.queued_real_clips()).sum()
    }

    /// Serve credits left in the current budget period.
    pub fn credits(&self) -> u64 {
        self.credits
    }

    /// Removes up to `n` unspent credits from the current budget period,
    /// returning how many were actually taken.
    ///
    /// This is the donor half of fleet work stealing: a shard that ends
    /// its tick with credits left over provably had no ready clips (the
    /// tick loop only stops early when [`Supervisor::tick`] finds no
    /// servable queue front), so those credits can migrate to a hot shard
    /// without starving local work.
    pub fn take_credits(&mut self, n: u64) -> u64 {
        let taken = n.min(self.credits);
        self.credits -= taken;
        taken
    }

    /// Serves one ready clip *without* spending local credits, on a
    /// donated credit from another shard. Returns whether a clip was
    /// served.
    ///
    /// The served clip goes through the exact same path as budgeted
    /// serving — round-robin fairness cursor, deadline flush, breaker and
    /// shed accounting — so `served + shed == offered` still holds on
    /// this shard, and the donor's identity is untouched (it gave up a
    /// credit it was not going to spend).
    pub fn serve_stolen(&mut self) -> bool {
        let Some(id) = self.next_ready() else {
            return false;
        };
        let now = self.clock.tick();
        self.serve_front(id, now);
        self.flush_front(id, now);
        self.cursor = id;
        true
    }

    /// The session's streaming detector (status, clip accounting).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`] for an id this supervisor
    /// does not own.
    pub fn stream(&self, session: u64) -> Result<&StreamingDetector> {
        self.sessions
            .get(&session)
            .map(|s| &s.stream)
            .ok_or(ServeError::UnknownSession(session))
    }

    /// The session's circuit-breaker position.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`] for an id this supervisor
    /// does not own.
    pub fn breaker_state(&self, session: u64) -> Result<BreakerState> {
        self.sessions
            .get(&session)
            .map(|s| s.breaker.state())
            .ok_or(ServeError::UnknownSession(session))
    }

    /// The session's probe director, if the session was admitted with one.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`] for an id this supervisor
    /// does not own.
    pub fn probe_director(&self, session: u64) -> Result<Option<&ProbeDirector>> {
        self.sessions
            .get(&session)
            .map(|s| s.probe.as_ref())
            .ok_or(ServeError::UnknownSession(session))
    }

    /// Verifies the response to a session's outstanding challenge and
    /// fuses the result: a conclusive probe verdict (pass or fail) enters
    /// the session's vote history as exactly one vote — the same 0.7·D
    /// majority the passive clips feed — and counts as breaker success;
    /// an abstaining probe changes nothing. The verdict is also surfaced
    /// as [`SessionEventKind::Probe`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownSession`] for an id this supervisor
    /// does not own and [`ServeError::Probe`] when the session has no
    /// probe director, no challenge is outstanding, or verification
    /// fails (the challenge then stays in flight for a retry).
    pub fn resolve_probe(&mut self, session: u64, pair: &TracePair) -> Result<ProbeVerdict> {
        let Some(slot) = self.sessions.get_mut(&session) else {
            return Err(ServeError::UnknownSession(session));
        };
        let director = slot
            .probe
            .as_mut()
            .ok_or(ServeError::Probe(lumen_probe::ProbeError::NoProbeInFlight))?;
        let _scope = self.recorder.session_scope(session);
        let verdict = director.resolve(pair, &self.recorder)?;
        // A resolve that leaves a challenge outstanding re-issued it: the
        // director judged the missing response a restart casualty, not
        // evidence. Surface the fresh challenge like any other request.
        let reissued = director.in_flight().cloned();
        self.recorder.add("serve.probes_resolved", 1);
        if let Some(accepted) = verdict.accepted() {
            slot.stream.record_probe_vote(accepted);
            let transition = slot.breaker.record_success();
            Self::record_breaker_transition(session, transition, &mut self.events, &self.recorder);
        }
        self.events.push(SessionEvent {
            session,
            kind: SessionEventKind::Probe(verdict.clone()),
        });
        // A response that exists but arrives late, or correlates only
        // weakly, is exactly the timed-verification failure worth a
        // post-mortem (cf. the mistimed challenge rounds of Face
        // Flashing-style defenses).
        match verdict.fail_reason {
            Some(lumen_probe::ProbeFailReason::LateResponse) => {
                self.flight_trigger("probe_late_response");
            }
            Some(lumen_probe::ProbeFailReason::WeakCorrelation) => {
                self.flight_trigger("probe_weak_correlation");
            }
            _ => {}
        }
        if let Some(schedule) = reissued {
            self.recorder.add("serve.probe_reissues", 1);
            self.recorder.mark(
                "serve.probe.reissue",
                &format!("session {session}: challenge re-issued after restart window"),
            );
            self.events.push(SessionEvent {
                session,
                kind: SessionEventKind::ProbeRequested(schedule),
            });
        }
        Ok(verdict)
    }

    /// Live aggregated metrics (counters, gauges, span and value
    /// histograms) from the flight recorder's always-on fold. `None` when
    /// the supervisor was built without [`Supervisor::with_flight`].
    pub fn metrics_snapshot(&self) -> Option<Snapshot> {
        self.flight.as_ref().map(|f| f.registry_snapshot())
    }

    /// The most recent flight-recorder post-mortem rendered as JSONL
    /// (header line, then one tick-stamped event per line, oldest first).
    /// `None` without a flight recorder or before any anomaly trigger.
    pub fn dump_flight_record(&self) -> Option<String> {
        self.flight
            .as_ref()
            .and_then(|f| f.latest_postmortem())
            .map(|p| p.to_jsonl())
    }

    /// The attached flight sink, for direct inspection (all retained
    /// post-mortems, ring drop counters).
    pub fn flight_sink(&self) -> Option<&Arc<FlightSink>> {
        self.flight.as_ref()
    }

    /// The supervisor clock's current tick.
    pub fn tick_now(&self) -> u64 {
        self.clock.tick()
    }

    /// Captures the whole runtime — supervisor bookkeeping plus every
    /// session's queue, breaker and detector state — as a serializable
    /// checkpoint. Detector *models* are excluded (they are immutable and
    /// deterministically re-trainable); [`Supervisor::restore`] takes a
    /// factory that rebuilds them.
    pub fn snapshot(&self) -> SupervisorSnapshot {
        let _span = self.recorder.span(stage::CHECKPOINT);
        self.recorder.add("serve.checkpoints", 1);
        SupervisorSnapshot {
            tick: self.clock.tick(),
            credits: self.credits,
            cursor: self.cursor,
            next_id: self.next_id,
            stats: self.stats.clone(),
            latencies: self.latencies.clone(),
            sessions: self
                .sessions
                .iter()
                .map(|(&id, slot)| SessionSnapshot {
                    id,
                    partial_tx: slot.partial_tx.clone(),
                    partial_rx: slot.partial_rx.clone(),
                    queue: slot
                        .queue
                        .iter()
                        .map(|entry| match entry {
                            QueuedClip::Clip {
                                tx,
                                rx,
                                completed_at,
                            } => QueuedClipSnapshot::Clip {
                                tx: tx.clone(),
                                rx: rx.clone(),
                                completed_at: *completed_at,
                            },
                            QueuedClip::Tombstone { reason } => {
                                QueuedClipSnapshot::Tombstone { reason: *reason }
                            }
                        })
                        .collect(),
                    breaker: slot.breaker.state(),
                    stream: slot.stream.snapshot(),
                    probe: slot.probe.clone(),
                })
                .collect(),
        }
    }

    /// Rebuilds a supervisor from a checkpoint. `factory` reconstructs
    /// each session's trained [`StreamingDetector`] (called with the
    /// session id); its mutable state is then restored from the snapshot,
    /// so the resumed runtime replays the interrupted workload to a
    /// byte-identical verdict sequence.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an invalid `config`,
    /// [`ServeError::BadSnapshot`] for duplicate session ids, a stale
    /// `next_id`, mismatched partial buffers, or a queued clip completed
    /// after the checkpoint tick (a non-monotonic snapshot), and
    /// propagates factory and [`StreamingDetector::restore`] errors.
    pub fn restore<F>(
        config: ServeConfig,
        snap: &SupervisorSnapshot,
        mut factory: F,
    ) -> Result<Supervisor>
    where
        F: FnMut(u64) -> lumen_core::Result<StreamingDetector>,
    {
        config.validate()?;
        let mut sessions = BTreeMap::new();
        for s in &snap.sessions {
            let slot = Self::build_slot(&config, s, snap.tick, snap.next_id, &mut factory)?;
            if sessions.insert(s.id, slot).is_some() {
                return Err(ServeError::bad_snapshot(format!(
                    "duplicate session id {}",
                    s.id
                )));
            }
        }
        Ok(Self::assemble(config, snap, sessions))
    }

    /// [`Supervisor::restore`] with graceful degradation: a session whose
    /// snapshot entry fails validation is *quarantined* — dropped from
    /// the restored fleet and reported — instead of failing the whole
    /// restore. The healthy majority resumes byte-identical replay; the
    /// host re-admits quarantined sessions fresh. Every quarantine is
    /// counted (`serve.restore.quarantined`) and marked
    /// (`serve.restore.quarantine`) on `recorder`, so a flight-recorder
    /// post-mortem shows exactly which sessions failed closed and why.
    ///
    /// A probe director restored with a challenge in flight is put into
    /// its restart window ([`ProbeDirector::note_restart`]), making a
    /// `MissingResponse` on that challenge retry-eligible — the response
    /// may simply have been lost with the crash.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an invalid `config`.
    /// Per-session defects never error — they quarantine.
    pub fn restore_with_report<F>(
        config: ServeConfig,
        snap: &SupervisorSnapshot,
        mut factory: F,
        recorder: &Recorder,
    ) -> Result<(Supervisor, RestoreReport)>
    where
        F: FnMut(u64) -> lumen_core::Result<StreamingDetector>,
    {
        config.validate()?;
        let mut sessions = BTreeMap::new();
        let mut report = RestoreReport::default();
        for s in &snap.sessions {
            if sessions.contains_key(&s.id) {
                Self::quarantine_session(
                    &mut report,
                    s.id,
                    format!("duplicate session id {}", s.id),
                    recorder,
                );
                continue;
            }
            match Self::build_slot(&config, s, snap.tick, snap.next_id, &mut factory) {
                Ok(mut slot) => {
                    if let Some(director) = slot.probe.as_mut() {
                        director.note_restart();
                    }
                    report.restored.push(s.id);
                    sessions.insert(s.id, slot);
                }
                Err(e) => Self::quarantine_session(&mut report, s.id, e.to_string(), recorder),
            }
        }
        recorder.add("serve.restore.sessions", report.restored.len() as u64);
        Ok((Self::assemble(config, snap, sessions), report))
    }

    /// Restores from the newest *valid* generation of a checkpoint store:
    /// corrupt generations are quarantined by the store (fallback), then
    /// corrupt per-session entries are quarantined by
    /// [`Supervisor::restore_with_report`] (graceful degradation). The
    /// report carries both layers.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Store`] for backend failures and
    /// [`ServeError::BadSnapshot`] when no stored generation survives
    /// validation (the host must cold-start instead).
    pub fn restore_from_store<S, F>(
        config: ServeConfig,
        store: &mut CheckpointStore<S>,
        factory: F,
        recorder: &Recorder,
    ) -> Result<(Supervisor, RestoreReport)>
    where
        S: Storage,
        F: FnMut(u64) -> lumen_core::Result<StreamingDetector>,
    {
        let load = store.load_latest()?;
        let Some(loaded) = load.loaded else {
            return Err(ServeError::bad_snapshot(format!(
                "checkpoint store holds no valid generation ({} quarantined)",
                load.quarantined.len()
            )));
        };
        let (sup, mut report) =
            Self::restore_with_report(config, &loaded.snapshot, factory, recorder)?;
        report.fallback_generation = Some(loaded.generation);
        report.fallback_depth = loaded.fallback_depth;
        report.generation_quarantines = load.quarantined;
        if loaded.fallback_depth > 0 {
            recorder.mark(
                "serve.restore.fallback",
                &format!(
                    "fell back {} generation(s) to {}",
                    loaded.fallback_depth, loaded.generation
                ),
            );
        }
        Ok((sup, report))
    }

    /// Validates one snapshot entry and rebuilds its session slot.
    fn build_slot<F>(
        config: &ServeConfig,
        s: &SessionSnapshot,
        snap_tick: u64,
        next_id: u64,
        factory: &mut F,
    ) -> Result<SessionSlot>
    where
        F: FnMut(u64) -> lumen_core::Result<StreamingDetector>,
    {
        if s.id >= next_id {
            return Err(ServeError::bad_snapshot(format!(
                "session {} not below next_id {next_id}",
                s.id
            )));
        }
        if s.partial_tx.len() != s.partial_rx.len() {
            return Err(ServeError::bad_snapshot(format!(
                "session {}: partial tx/rx buffers disagree: {} vs {}",
                s.id,
                s.partial_tx.len(),
                s.partial_rx.len()
            )));
        }
        for entry in &s.queue {
            if let QueuedClipSnapshot::Clip { completed_at, .. } = entry {
                if *completed_at > snap_tick {
                    return Err(ServeError::bad_snapshot(format!(
                        "session {}: queued clip completed at tick {completed_at}, after the \
                         checkpoint tick {snap_tick}",
                        s.id
                    )));
                }
            }
        }
        let mut stream = factory(s.id)?;
        stream.restore(&s.stream)?;
        if s.partial_tx.len() >= stream.clip_samples() {
            return Err(ServeError::bad_snapshot(format!(
                "session {}: partial clip of {} samples does not fit a {}-sample clip",
                s.id,
                s.partial_tx.len(),
                stream.clip_samples()
            )));
        }
        Ok(SessionSlot {
            stream,
            partial_tx: s.partial_tx.clone(),
            partial_rx: s.partial_rx.clone(),
            queue: s
                .queue
                .iter()
                .map(|entry| match entry {
                    QueuedClipSnapshot::Clip {
                        tx,
                        rx,
                        completed_at,
                    } => QueuedClip::Clip {
                        tx: tx.clone(),
                        rx: rx.clone(),
                        completed_at: *completed_at,
                    },
                    QueuedClipSnapshot::Tombstone { reason } => {
                        QueuedClip::Tombstone { reason: *reason }
                    }
                })
                .collect(),
            breaker: CircuitBreaker::with_state(config.breaker, s.breaker),
            probe: s.probe.clone(),
        })
    }

    /// Assembles the restored supervisor around the rebuilt sessions.
    fn assemble(
        config: ServeConfig,
        snap: &SupervisorSnapshot,
        sessions: BTreeMap<u64, SessionSlot>,
    ) -> Supervisor {
        let clock = SimClock::resumed_at(1.0 / config.tick_rate_hz, snap.tick);
        Supervisor {
            config,
            clock,
            sessions,
            next_id: snap.next_id,
            credits: snap.credits,
            cursor: snap.cursor,
            events: Vec::new(),
            latencies: snap.latencies.clone(),
            stats: snap.stats.clone(),
            recorder: Recorder::null(),
            flight: None,
            draining: false,
        }
    }

    /// Records one quarantined session on the report and the recorder.
    fn quarantine_session(
        report: &mut RestoreReport,
        id: u64,
        reason: String,
        recorder: &Recorder,
    ) {
        recorder.add("serve.restore.quarantined", 1);
        recorder.mark(
            "serve.restore.quarantine",
            &format!("session {id}: {reason}"),
        );
        report.quarantined.push(QuarantinedSession { id, reason });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_chat::scenario::ScenarioBuilder;
    use lumen_chat::trace::TracePair;
    use lumen_core::detector::Detector;
    use lumen_core::quality::QualityGate;
    use lumen_core::Config;
    use std::sync::OnceLock;

    fn detector() -> Detector {
        static DET: OnceLock<Detector> = OnceLock::new();
        DET.get_or_init(|| {
            let chats = ScenarioBuilder::default();
            let training: Vec<_> = (0..15)
                .map(|i| chats.legitimate(0, 70_000 + i).unwrap())
                .collect();
            Detector::train_from_traces(&training, Config::default()).unwrap()
        })
        .clone()
    }

    fn stream() -> StreamingDetector {
        StreamingDetector::new(detector(), 15.0, 3).unwrap()
    }

    fn gated_stream() -> StreamingDetector {
        stream().with_quality_gate(QualityGate::default())
    }

    /// A config whose budget easily covers a handful of sessions.
    fn relaxed() -> ServeConfig {
        ServeConfig {
            deadline_ticks: 1_000,
            ..ServeConfig::default()
        }
    }

    /// Offers one trace pair to a session, ticking the supervisor after
    /// every sample.
    fn feed_pair(sup: &mut Supervisor, session: u64, pair: &TracePair) {
        for (tx, rx) in pair.tx.samples().iter().zip(pair.rx.samples()) {
            sup.offer(session, *tx, *rx).unwrap();
            sup.tick();
        }
    }

    fn verdicts_of(events: &[SessionEvent], session: u64) -> Vec<ClipVerdict> {
        events
            .iter()
            .filter(|e| e.session == session)
            .filter_map(|e| match &e.kind {
                SessionEventKind::Verdict(v) => Some(v.clone()),
                SessionEventKind::Shed { verdict, .. } => Some(verdict.clone()),
                SessionEventKind::Breaker(_)
                | SessionEventKind::ProbeRequested(_)
                | SessionEventKind::Probe(_) => None,
            })
            .collect()
    }

    #[test]
    fn config_validates() {
        assert!(ServeConfig::default().validate().is_ok());
        for bad in [
            ServeConfig {
                max_sessions: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                queue_clips: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                budget_clips: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                budget_period_ticks: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                deadline_ticks: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                tick_rate_hz: 0.0,
                ..ServeConfig::default()
            },
        ] {
            assert!(Supervisor::new(bad).is_err());
        }
    }

    #[test]
    fn admission_respects_capacity() {
        let mut sup = Supervisor::new(ServeConfig {
            max_sessions: 1,
            ..relaxed()
        })
        .unwrap();
        let first = sup.admit(stream());
        assert_eq!(first.session(), Some(0));
        let second = sup.admit(stream());
        assert_eq!(
            second,
            AdmitOutcome::Shed {
                reason: ShedReason::CapacityExhausted
            }
        );
        assert_eq!(sup.stats().rejected_sessions, 1);
        assert_eq!(sup.sessions(), 1);
        sup.release(0).unwrap();
        assert!(sup.admit(stream()).session().is_some());
        assert!(sup.release(99).is_err());
        assert!(sup.stream(99).is_err());
        assert!(sup.breaker_state(99).is_err());
    }

    #[test]
    fn unloaded_run_matches_bare_streaming_detector() {
        let chats = ScenarioBuilder::default();
        let pairs: Vec<TracePair> = (0..2)
            .map(|s| chats.legitimate(0, 71_000 + s).unwrap())
            .collect();
        // Reference: the same detector fed directly.
        let mut reference = stream();
        let mut expected = Vec::new();
        for p in &pairs {
            for (tx, rx) in p.tx.samples().iter().zip(p.rx.samples()) {
                if let Some(v) = reference.push(*tx, *rx).unwrap() {
                    expected.push(v);
                }
            }
        }
        // Served through the supervisor with slack capacity.
        let mut sup = Supervisor::new(relaxed()).unwrap();
        let id = sup.admit(stream()).session().unwrap();
        for p in &pairs {
            feed_pair(&mut sup, id, p);
        }
        while sup.pending_clips() > 0 {
            sup.tick();
        }
        let events = sup.drain_events();
        assert_eq!(verdicts_of(&events, id), expected);
        assert_eq!(sup.stats().offered_clips, 2);
        assert_eq!(sup.stats().served_clips, 2);
        assert_eq!(sup.stats().shed_clips, 0);
        assert_eq!(sup.latencies_ticks().len(), 2);
        assert!(sup.latencies_ticks().iter().all(|&l| l <= 10));
    }

    #[test]
    fn overload_sheds_exactly_and_never_silently() {
        // Capacity: 1 clip per 150 ticks. Offered: 3 sessions × 1 clip per
        // 150 ticks = 3× saturation.
        let config = ServeConfig {
            max_sessions: 8,
            queue_clips: 1,
            budget_clips: 1,
            budget_period_ticks: 150,
            deadline_ticks: 150,
            ..ServeConfig::default()
        };
        let mut sup = Supervisor::new(config).unwrap();
        let ids: Vec<u64> = (0..3)
            .map(|_| sup.admit(stream()).session().unwrap())
            .collect();
        let chats = ScenarioBuilder::default();
        let pair = chats.legitimate(0, 72_000).unwrap();
        for clip in 0..2 {
            let _ = clip;
            for (tx, rx) in pair.tx.samples().iter().zip(pair.rx.samples()) {
                for &id in &ids {
                    sup.offer(id, *tx, *rx).unwrap();
                }
                sup.tick();
            }
        }
        let mut guard = 0;
        while sup.pending_clips() > 0 {
            sup.tick();
            guard += 1;
            assert!(guard < 2_000, "queues must drain under deadline shedding");
        }
        let stats = sup.stats().clone();
        assert_eq!(stats.offered_clips, 6);
        assert!(stats.shed_clips > 0, "3x saturation must shed");
        assert_eq!(
            stats.served_clips + stats.shed_clips,
            stats.offered_clips,
            "every offered clip is either served or a counted shed"
        );
        assert_eq!(
            stats.shed_clips,
            stats.shed_queue_full
                + stats.shed_deadline
                + stats.shed_breaker
                + stats.shed_failed
                + stats.shed_closed
        );
        // Nothing vanished: each session's verdict stream carries one
        // entry per offered clip, and sheds surfaced as events.
        let events = sup.drain_events();
        for &id in &ids {
            assert_eq!(sup.stream(id).unwrap().clips_done(), 2);
            assert_eq!(verdicts_of(&events, id).len(), 2);
        }
        let shed_events = events
            .iter()
            .filter(|e| matches!(e.kind, SessionEventKind::Shed { .. }))
            .count() as u64;
        assert_eq!(shed_events, stats.shed_clips);
    }

    #[test]
    fn served_clips_under_overload_match_unloaded_outcomes() {
        let chats = ScenarioBuilder::default();
        let pairs: Vec<TracePair> = (0..2)
            .map(|s| chats.legitimate(0, 73_000 + s).unwrap())
            .collect();
        // Unloaded reference verdict per clip position.
        let mut reference = stream();
        let mut expected = Vec::new();
        for p in &pairs {
            for (tx, rx) in p.tx.samples().iter().zip(p.rx.samples()) {
                if let Some(v) = reference.push(*tx, *rx).unwrap() {
                    expected.push(v);
                }
            }
        }
        // Overloaded: two sessions share one clip of budget per period, so
        // some clips shed — but every *served* clip must reproduce the
        // unloaded outcome at its clip position.
        let config = ServeConfig {
            queue_clips: 1,
            budget_clips: 1,
            budget_period_ticks: 150,
            deadline_ticks: 150,
            ..ServeConfig::default()
        };
        let mut sup = Supervisor::new(config).unwrap();
        let ids: Vec<u64> = (0..2)
            .map(|_| sup.admit(stream()).session().unwrap())
            .collect();
        for p in &pairs {
            for (tx, rx) in p.tx.samples().iter().zip(p.rx.samples()) {
                for &id in &ids {
                    sup.offer(id, *tx, *rx).unwrap();
                }
                sup.tick();
            }
        }
        while sup.pending_clips() > 0 {
            sup.tick();
        }
        let events = sup.drain_events();
        let mut saw_served = false;
        for &id in &ids {
            for v in verdicts_of(&events, id) {
                if let Some(d) = v.detection() {
                    saw_served = true;
                    assert_eq!(
                        Some(d),
                        expected[v.clip_index].detection(),
                        "served clip {} must match the unloaded outcome",
                        v.clip_index
                    );
                }
            }
        }
        assert!(saw_served, "at least one clip must be served");
    }

    #[test]
    fn breaker_trips_sheds_probes_and_restores() {
        let config = ServeConfig {
            breaker: BreakerConfig {
                trip_after: 2,
                open_ticks: 400,
                half_open_probes: 1,
            },
            ..relaxed()
        };
        let mut sup = Supervisor::new(config).unwrap();
        let id = sup.admit(gated_stream()).session().unwrap();
        // Six flatline clips: the quality gate abstains on each, the
        // stream watchdog re-triggers twice (after 2 and 4+2 abstentions),
        // and the second re-trigger trips the breaker.
        for _ in 0..6 * 150 {
            sup.offer(id, 100.0, 42.0).unwrap();
            sup.tick();
        }
        while sup.pending_clips() > 0 {
            sup.tick();
        }
        assert!(matches!(
            sup.breaker_state(id).unwrap(),
            BreakerState::Open { .. }
        ));
        // A clip completed while open is shed without detection work.
        for _ in 0..150 {
            sup.offer(id, 100.0, 42.0).unwrap();
            sup.tick();
        }
        sup.tick(); // flush the tombstone
                    // Cool-down expires into half-open probing...
        for _ in 0..500 {
            sup.tick();
        }
        assert_eq!(
            sup.breaker_state(id).unwrap(),
            BreakerState::HalfOpen { successes: 0 }
        );
        // ...and one conclusive probe clip restores the session.
        let pair = ScenarioBuilder::default().legitimate(0, 74_000).unwrap();
        feed_pair(&mut sup, id, &pair);
        while sup.pending_clips() > 0 {
            sup.tick();
        }
        assert_eq!(
            sup.breaker_state(id).unwrap(),
            BreakerState::Closed { failures: 0 }
        );
        let events = sup.drain_events();
        let transitions: Vec<BreakerTransition> = events
            .iter()
            .filter_map(|e| match e.kind {
                SessionEventKind::Breaker(t) => Some(t),
                _ => None,
            })
            .collect();
        assert_eq!(
            transitions,
            vec![
                BreakerTransition::Tripped,
                BreakerTransition::Probing,
                BreakerTransition::Restored
            ]
        );
        assert!(
            events.iter().any(|e| matches!(
                e.kind,
                SessionEventKind::Shed {
                    reason: ShedReason::BreakerOpen,
                    ..
                }
            )),
            "the clip completed while open must shed as BreakerOpen"
        );
        assert_eq!(sup.stats().shed_breaker, 1);
    }

    #[test]
    fn passive_abstention_requests_probe_and_fuses_verdict() {
        use lumen_chat::session::SessionConfig;
        use lumen_probe::{ProbeConfig, ProbeDecision, ProbeInjector, ProbePolicy};

        let mut sup = Supervisor::new(relaxed()).unwrap();
        let director = ProbeDirector::new(ProbePolicy::default(), 31).unwrap();
        let id = sup
            .admit_probed(gated_stream(), director)
            .session()
            .unwrap();
        // A flatline clip: the passive gate abstains, which is the
        // director's trigger.
        for _ in 0..150 {
            sup.offer(id, 100.0, 42.0).unwrap();
            sup.tick();
        }
        while sup.pending_clips() > 0 {
            sup.tick();
        }
        let events = sup.drain_events();
        let schedule = events
            .iter()
            .find_map(|e| match &e.kind {
                SessionEventKind::ProbeRequested(s) => Some(s.clone()),
                _ => None,
            })
            .expect("an inconclusive clip must raise a probe request");
        assert_eq!(
            sup.probe_director(id).unwrap().unwrap().in_flight(),
            Some(&schedule)
        );
        // The client transmits the challenge; a live face reflects it.
        let pair = ProbeInjector::new(schedule.clone())
            .armed_scenario(
                ScenarioBuilder::default()
                    .with_session(
                        ProbeConfig::default().session_config(1.5, &SessionConfig::default()),
                    )
                    .with_static_caller(120.0),
            )
            .legitimate(0, 77_000)
            .unwrap();
        let clips_before = sup.stream(id).unwrap().clips_done();
        let verdict = sup.resolve_probe(id, &pair).unwrap();
        assert_eq!(verdict.decision, ProbeDecision::Pass, "{verdict:?}");
        // Fused as a vote, not as a clip; the challenge is spent.
        assert_eq!(sup.stream(id).unwrap().clips_done(), clips_before);
        assert!(sup
            .probe_director(id)
            .unwrap()
            .unwrap()
            .in_flight()
            .is_none());
        let events = sup.drain_events();
        assert!(events.iter().any(
            |e| matches!(&e.kind, SessionEventKind::Probe(v) if v.decision == ProbeDecision::Pass)
        ));
        // No second response to verify.
        assert!(matches!(
            sup.resolve_probe(id, &pair),
            Err(ServeError::Probe(lumen_probe::ProbeError::NoProbeInFlight))
        ));
        // Unprobed sessions and unknown ids are both refused.
        let plain = sup.admit(stream()).session().unwrap();
        assert!(matches!(
            sup.resolve_probe(plain, &pair),
            Err(ServeError::Probe(lumen_probe::ProbeError::NoProbeInFlight))
        ));
        assert!(matches!(
            sup.resolve_probe(99, &pair),
            Err(ServeError::UnknownSession(99))
        ));
        assert!(sup.probe_director(plain).unwrap().is_none());
        assert!(sup.probe_director(99).is_err());
    }

    #[test]
    fn release_sheds_queued_clips_as_closed() {
        let config = ServeConfig {
            budget_clips: 1,
            budget_period_ticks: 10_000,
            ..relaxed()
        };
        let mut sup = Supervisor::new(config).unwrap();
        let id = sup.admit(stream()).session().unwrap();
        let pair = ScenarioBuilder::default().legitimate(0, 75_000).unwrap();
        // Complete one clip without granting any budget ticks afterwards.
        for (tx, rx) in pair.tx.samples().iter().zip(pair.rx.samples()) {
            sup.offer(id, *tx, *rx).unwrap();
        }
        assert_eq!(sup.pending_clips(), 1);
        sup.release(id).unwrap();
        assert_eq!(sup.pending_clips(), 0);
        assert_eq!(sup.stats().shed_closed, 1);
        let events = sup.drain_events();
        assert!(events.iter().any(|e| matches!(
            e.kind,
            SessionEventKind::Shed {
                reason: ShedReason::SessionClosed,
                ..
            }
        )));
    }

    #[test]
    fn checkpoint_round_trips_and_resumes_identically() {
        let chats = ScenarioBuilder::default();
        let pair_a = chats.legitimate(0, 76_000).unwrap();
        let pair_b = chats.legitimate(0, 76_001).unwrap();
        let build = |session: u64| -> lumen_core::Result<StreamingDetector> {
            let _ = session;
            StreamingDetector::new(detector(), 15.0, 3)
        };
        let mut sup = Supervisor::new(relaxed()).unwrap();
        let a = sup.admit(stream()).session().unwrap();
        let b = sup.admit(stream()).session().unwrap();
        // Session a completes one clip; session b is 80 samples into one.
        feed_pair(&mut sup, a, &pair_a);
        for (tx, rx) in pair_b.tx.samples()[..80]
            .iter()
            .zip(&pair_b.rx.samples()[..80])
        {
            sup.offer(b, *tx, *rx).unwrap();
            sup.tick();
        }
        while sup.pending_clips() > 0 {
            sup.tick();
        }
        let drained = sup.drain_events();
        assert!(!drained.is_empty());
        // Snapshot → JSON → snapshot must be lossless.
        let snap = sup.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: SupervisorSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        // The restored supervisor is indistinguishable going forward.
        let mut restored = Supervisor::restore(sup.config().clone(), &back, build).unwrap();
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.tick_now(), sup.tick_now());
        for (tx, rx) in pair_b.tx.samples()[80..]
            .iter()
            .zip(&pair_b.rx.samples()[80..])
        {
            sup.offer(b, *tx, *rx).unwrap();
            sup.tick();
            restored.offer(b, *tx, *rx).unwrap();
            restored.tick();
        }
        while sup.pending_clips() > 0 || restored.pending_clips() > 0 {
            sup.tick();
            restored.tick();
        }
        assert_eq!(restored.drain_events(), sup.drain_events());
        assert_eq!(restored.stats(), sup.stats());
    }

    #[test]
    fn restore_rejects_corrupt_snapshots() {
        let build = |_: u64| StreamingDetector::new(detector(), 15.0, 3);
        let mut sup = Supervisor::new(relaxed()).unwrap();
        sup.admit(stream());
        let good = sup.snapshot();
        let mut bad = good.clone();
        bad.next_id = 0; // session 0 exists, so next_id must exceed it
        assert!(Supervisor::restore(relaxed(), &bad, build).is_err());
        let mut bad = good.clone();
        bad.sessions[0].partial_rx.push(1.0);
        assert!(Supervisor::restore(relaxed(), &bad, build).is_err());
        let mut bad = good.clone();
        bad.sessions.push(bad.sessions[0].clone());
        assert!(Supervisor::restore(relaxed(), &bad, build).is_err());
        assert!(Supervisor::restore(relaxed(), &good, build).is_ok());
    }

    #[test]
    fn restore_rejects_duplicate_ids_and_future_clips_with_typed_errors() {
        let build = |_: u64| StreamingDetector::new(detector(), 15.0, 3);
        let mut sup = Supervisor::new(relaxed()).unwrap();
        sup.admit(stream());
        let good = sup.snapshot();
        // Duplicate session ids are a distinct, named defect.
        let mut bad = good.clone();
        bad.sessions.push(bad.sessions[0].clone());
        match Supervisor::restore(relaxed(), &bad, build) {
            Err(ServeError::BadSnapshot(reason)) => {
                assert!(reason.contains("duplicate session id"), "{reason}");
            }
            other => panic!("expected BadSnapshot, got {other:?}"),
        }
        // A queued clip completed after the checkpoint tick is a
        // non-monotonic snapshot: the clip claims to come from the future.
        let mut bad = good.clone();
        bad.sessions[0].queue.push(QueuedClipSnapshot::Clip {
            tx: vec![1.0],
            rx: vec![1.0],
            completed_at: bad.tick + 1,
        });
        match Supervisor::restore(relaxed(), &bad, build) {
            Err(ServeError::BadSnapshot(reason)) => {
                assert!(reason.contains("after the checkpoint tick"), "{reason}");
            }
            other => panic!("expected BadSnapshot, got {other:?}"),
        }
    }

    #[test]
    fn restore_with_report_quarantines_bad_sessions_and_keeps_the_rest() {
        let build = |_: u64| StreamingDetector::new(detector(), 15.0, 3);
        let (recorder, sink) = Recorder::in_memory();
        let mut sup = Supervisor::new(relaxed()).unwrap();
        let a = sup.admit(stream()).session().unwrap();
        let b = sup.admit(stream()).session().unwrap();
        let mut snap = sup.snapshot();
        // Rot session b's entry: its partial buffers disagree in shape.
        let slot = snap.sessions.iter_mut().find(|s| s.id == b).unwrap();
        slot.partial_rx.push(0.0);
        let (restored, report) =
            Supervisor::restore_with_report(relaxed(), &snap, build, &recorder).unwrap();
        assert_eq!(report.restored, vec![a]);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].id, b);
        assert!(
            report.quarantined[0].reason.contains("partial tx/rx"),
            "{}",
            report.quarantined[0].reason
        );
        assert_eq!(restored.sessions(), 1);
        assert_eq!(restored.session_ids(), vec![a]);
        let registry = sink.registry();
        assert_eq!(registry.counter("serve.restore.quarantined"), 1);
        assert_eq!(registry.counter("serve.restore.sessions"), 1);
        // The strict path refuses the same snapshot outright.
        assert!(Supervisor::restore(relaxed(), &snap, build).is_err());
    }

    #[test]
    fn restored_in_flight_probe_is_retry_eligible_and_reissued() {
        use lumen_core::quality::InconclusiveReason;
        use lumen_probe::{ProbeDecision, ProbePolicy};

        let build = |_: u64| StreamingDetector::new(detector(), 15.0, 3);
        let mut sup = Supervisor::new(relaxed()).unwrap();
        let director = ProbeDirector::new(ProbePolicy::default(), 31).unwrap();
        let id = sup
            .admit_probed(gated_stream(), director)
            .session()
            .unwrap();
        // A flatline clip makes the gate abstain, which issues a probe.
        for _ in 0..150 {
            sup.offer(id, 100.0, 42.0).unwrap();
            sup.tick();
        }
        while sup.pending_clips() > 0 {
            sup.tick();
        }
        sup.drain_events();
        let challenge = sup
            .probe_director(id)
            .unwrap()
            .unwrap()
            .in_flight()
            .cloned()
            .expect("challenge in flight");

        // Crash with the challenge outstanding; recover gracefully.
        let snap = sup.snapshot();
        drop(sup);
        let (recorder, _sink) = Recorder::in_memory();
        let (mut sup, report) =
            Supervisor::restore_with_report(relaxed(), &snap, build, &recorder).unwrap();
        assert_eq!(report.restored, vec![id]);
        let director = sup.probe_director(id).unwrap().unwrap();
        assert!(
            director.in_restart_window(),
            "a restored in-flight challenge opens the restart window"
        );

        // The response went down with the crash: rx carries only a faint
        // copy of the challenge (high correlation, no physical gain).
        // Inside the restart window that is retry-eligible, not a reject.
        let rate = challenge.sample_rate;
        let samples: Vec<f64> = challenge
            .waveform()
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let dither = if i % 2 == 0 { 0.05 } else { -0.05 };
                128.0 + 0.005 * w + dither
            })
            .collect();
        let rx = lumen_dsp::Signal::new(samples, rate).unwrap();
        let pair = TracePair {
            tx: rx.clone(),
            rx,
            kind: lumen_chat::trace::ScenarioKind::Legitimate { user: 0 },
            seed: 0,
            forward_delay: 0.0,
            backward_delay: 0.0,
        };
        let verdict = sup.resolve_probe(id, &pair).unwrap();
        assert_eq!(verdict.decision, ProbeDecision::Abstain);
        assert_eq!(verdict.abstain_reason, Some(InconclusiveReason::Withheld));
        // The challenge was re-issued, not silently dropped.
        let reissued = sup
            .probe_director(id)
            .unwrap()
            .unwrap()
            .in_flight()
            .cloned()
            .expect("a fresh challenge is re-issued");
        assert_ne!(reissued, challenge);
        let events = sup.drain_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(&e.kind, SessionEventKind::ProbeRequested(s) if *s == reissued)),
            "the re-issue must surface as a ProbeRequested event"
        );

        // The strict restore path must NOT arm the window: byte-identical
        // replay forbids behavioural drift.
        let strict = Supervisor::restore(relaxed(), &snap, build).unwrap();
        assert!(!strict
            .probe_director(id)
            .unwrap()
            .unwrap()
            .in_restart_window());
    }

    #[test]
    fn restore_from_store_falls_back_past_a_corrupt_generation() {
        use crate::store::{entry_name, MemStorage, StoreConfig};

        let build = |_: u64| StreamingDetector::new(detector(), 15.0, 3);
        let (recorder, _sink) = Recorder::in_memory();
        let mut sup = Supervisor::new(relaxed()).unwrap();
        let id = sup.admit(stream()).session().unwrap();
        let mut store = CheckpointStore::new(MemStorage::new(), StoreConfig::default()).unwrap();
        store.commit(sup.tick_now(), &sup.snapshot()).unwrap();
        sup.tick();
        store.commit(sup.tick_now(), &sup.snapshot()).unwrap();
        // Bit-rot the newest generation; the restore must fall back.
        assert!(store.storage_mut().tamper(&entry_name(2), 30, 0x40));
        let (restored, report) =
            Supervisor::restore_from_store(relaxed(), &mut store, build, &recorder).unwrap();
        assert_eq!(report.fallback_generation, Some(1));
        assert_eq!(report.fallback_depth, 1);
        assert_eq!(report.generation_quarantines.len(), 1);
        assert_eq!(report.restored, vec![id]);
        assert_eq!(restored.tick_now(), 0, "generation 1 predates the tick");
        // Nothing valid at all is a typed cold-start signal.
        let mut empty = CheckpointStore::new(MemStorage::new(), StoreConfig::default()).unwrap();
        assert!(matches!(
            Supervisor::restore_from_store(relaxed(), &mut empty, build, &recorder),
            Err(ServeError::BadSnapshot(_))
        ));
    }
}
