//! Corruption fuzz for the checkpoint store's framing and fallback: any
//! single-byte flip of a stored generation — and any torn-write prefix —
//! must be *detected*, never silently restored. The CRC-32 trailer covers
//! the whole header and payload, so a flip anywhere in the record breaks
//! validation; a flip in the trailer breaks the stored checksum itself.

use lumen_serve::store::{decode_record, encode_record, entry_name, Storage};
use lumen_serve::{CheckpointStore, MemStorage, ServeConfig, StoreConfig, Supervisor};
use proptest::prelude::*;

/// A store holding two committed generations of an (empty) supervisor
/// snapshot — generation 2 is the newest, generation 1 the fallback.
fn two_generation_store() -> CheckpointStore<MemStorage> {
    let sup = Supervisor::new(ServeConfig::default()).expect("default config");
    let mut store =
        CheckpointStore::new(MemStorage::new(), StoreConfig::default()).expect("default store");
    store.commit(0, &sup.snapshot()).expect("first commit");
    store.commit(1, &sup.snapshot()).expect("second commit");
    store
}

proptest! {
    /// Flipping any single byte of a framed record anywhere — magic,
    /// version, generation, length, payload or trailer — fails decoding.
    #[test]
    fn any_single_byte_flip_fails_decode(
        payload in prop::collection::vec(any::<u8>(), 0..300),
        generation in any::<u64>(),
        index in any::<usize>(),
        mask in 1u8..,
    ) {
        let mut record = encode_record(generation, &payload);
        let index = index % record.len();
        record[index] ^= mask;
        prop_assert!(decode_record(&record).is_err());
    }

    /// Any strict prefix of a framed record fails decoding (a torn write
    /// never yields a shorter-but-valid record).
    #[test]
    fn any_torn_prefix_fails_decode(
        payload in prop::collection::vec(any::<u8>(), 0..300),
        generation in any::<u64>(),
        cut in any::<usize>(),
    ) {
        let record = encode_record(generation, &payload);
        let cut = cut % record.len();
        prop_assert!(decode_record(&record[..cut]).is_err());
    }

    /// Arbitrary garbage never decodes by accident (and never panics).
    #[test]
    fn garbage_never_decodes(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        prop_assert!(decode_record(&bytes).is_err());
    }

    /// End to end: flip one byte of the newest stored generation, then
    /// restore. The store must quarantine the damaged record and fall
    /// back to the older valid generation — never load the damaged one.
    #[test]
    fn flipped_generation_is_quarantined_and_fallen_back(
        index in any::<usize>(),
        mask in 1u8..,
    ) {
        let mut store = two_generation_store();
        let len = store
            .storage()
            .read(&entry_name(2))
            .expect("generation 2 stored")
            .len();
        prop_assert!(store.storage_mut().tamper(&entry_name(2), index % len, mask));
        let report = store.load_latest().expect("listing never fails in memory");
        let loaded = report.loaded.expect("generation 1 is intact");
        prop_assert_eq!(loaded.generation, 1);
        prop_assert_eq!(loaded.fallback_depth, 1);
        prop_assert_eq!(report.quarantined.len(), 1);
        prop_assert_eq!(&report.quarantined[0].name, &entry_name(2));
    }

    /// End to end: tear the newest stored generation to any strict
    /// prefix, then restore — same quarantine-and-fallback guarantee.
    #[test]
    fn torn_generation_is_quarantined_and_fallen_back(cut in any::<usize>()) {
        let mut store = two_generation_store();
        let len = store
            .storage()
            .read(&entry_name(2))
            .expect("generation 2 stored")
            .len();
        prop_assert!(store.storage_mut().truncate(&entry_name(2), cut % len));
        let report = store.load_latest().expect("listing never fails in memory");
        let loaded = report.loaded.expect("generation 1 is intact");
        prop_assert_eq!(loaded.generation, 1);
        prop_assert_eq!(loaded.fallback_depth, 1);
        prop_assert_eq!(report.quarantined.len(), 1);
        prop_assert_eq!(&report.quarantined[0].name, &entry_name(2));
    }
}
