//! Soak: hundreds of sessions surviving repeated checkpoint/restore
//! cycles with exact shed accounting and byte-identical verdicts.
//!
//! Ignored by default (it detects hundreds of real clips); run with
//! `cargo test -- --ignored soak`.

use lumen_chat::scenario::ScenarioBuilder;
use lumen_core::detector::Detector;
use lumen_core::stream::StreamingDetector;
use lumen_core::Config;
use lumen_serve::{ServeConfig, Supervisor, SupervisorSnapshot};

fn trained() -> Detector {
    let chats = ScenarioBuilder::default();
    let training: Vec<_> = (0..15)
        .map(|i| chats.legitimate(0, 50_000 + i).unwrap())
        .collect();
    Detector::train_from_traces(&training, Config::default()).unwrap()
}

fn config(sessions: usize) -> ServeConfig {
    ServeConfig {
        max_sessions: sessions,
        queue_clips: 2,
        // Ample budget: the soak exercises checkpoint cycles, not
        // shedding (the overload experiment covers that).
        budget_clips: sessions as u64,
        budget_period_ticks: 10,
        deadline_ticks: 10_000,
        ..ServeConfig::default()
    }
}

#[test]
#[ignore = "soak: hundreds of sessions x checkpoint cycles; run with --ignored"]
fn soak_hundreds_of_sessions_survive_checkpoint_cycles() {
    const SESSIONS: usize = 200;
    const CLIPS: usize = 3;
    let detector = trained();
    let fresh = |detector: &Detector| StreamingDetector::new(detector.clone(), 15.0, 3).unwrap();

    // Two supervisors driven identically: `straight` never checkpoints,
    // `cycled` is torn down and restored from a serde snapshot at every
    // clip boundary AND mid-clip. Their event streams must stay equal.
    let mut straight = Supervisor::new(config(SESSIONS)).unwrap();
    let mut cycled = Supervisor::new(config(SESSIONS)).unwrap();
    let ids: Vec<u64> = (0..SESSIONS)
        .map(|_| {
            let a = straight.admit(fresh(&detector)).session().unwrap();
            let b = cycled.admit(fresh(&detector)).session().unwrap();
            assert_eq!(a, b);
            a
        })
        .collect();

    let chats = ScenarioBuilder::default();
    let clip_samples = 150;
    let mut checkpoints = 0usize;
    for clip in 0..CLIPS {
        // Each session replays its own legitimate trace for this clip.
        let traces: Vec<_> = ids
            .iter()
            .map(|&id| {
                chats
                    .legitimate(0, 51_000 + clip as u64 * 1_000 + id)
                    .unwrap()
            })
            .collect();
        for sample in 0..clip_samples {
            for (&id, pair) in ids.iter().zip(&traces) {
                let tx = pair.tx.samples()[sample];
                let rx = pair.rx.samples()[sample];
                straight.offer(id, tx, rx).unwrap();
                cycled.offer(id, tx, rx).unwrap();
            }
            straight.tick();
            cycled.tick();
            // Mid-clip checkpoint cycle: partial buffers must survive.
            if sample == 73 {
                cycled = cycle(cycled, &detector);
                checkpoints += 1;
            }
        }
        while straight.pending_clips() > 0 || cycled.pending_clips() > 0 {
            straight.tick();
            cycled.tick();
        }
        assert_eq!(
            cycled.drain_events(),
            straight.drain_events(),
            "clip {clip}: checkpoint cycles must not change any verdict"
        );
        // Clip-boundary checkpoint cycle.
        cycled = cycle(cycled, &detector);
        checkpoints += 1;
    }

    assert_eq!(checkpoints, 2 * CLIPS);
    assert_eq!(cycled.stats(), straight.stats());
    let stats = straight.stats();
    assert_eq!(stats.offered_clips, (SESSIONS * CLIPS) as u64);
    assert_eq!(
        stats.served_clips + stats.shed_clips,
        stats.offered_clips,
        "every offered clip must be served or a counted shed"
    );
    for &id in &ids {
        assert_eq!(straight.stream(id).unwrap().clips_done(), CLIPS);
        assert_eq!(cycled.stream(id).unwrap().clips_done(), CLIPS);
    }
}

/// One checkpoint cycle: snapshot, serialize, drop the runtime, restore
/// from the decoded snapshot.
fn cycle(sup: Supervisor, detector: &Detector) -> Supervisor {
    let config = sup.config().clone();
    let snap = sup.snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    drop(sup); // the "crash"
    let back: SupervisorSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snap);
    Supervisor::restore(config, &back, |_| {
        StreamingDetector::new(detector.clone(), 15.0, 3)
    })
    .unwrap()
}
