//! Real-filesystem integration tests for [`DirStorage`]: checkpoints
//! survive a process restart (drop + reopen), generation numbering
//! resumes from what is on disk, corrupt generations are quarantined by
//! rename (visible as `.quarantined` files), and hostile entry names
//! never escape the store directory.

use std::fs;
use std::path::{Path, PathBuf};

use lumen_serve::store::dir::DirStorage;
use lumen_serve::store::{entry_name, Storage};
use lumen_serve::{CheckpointStore, ServeConfig, StoreConfig, Supervisor};

/// A fresh per-test directory under cargo's target tmpdir, so the tests
/// never write outside the build tree and never collide with each other.
fn scratch(test: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(test);
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    dir
}

fn store_at(dir: &Path) -> CheckpointStore<DirStorage> {
    CheckpointStore::new(
        DirStorage::new(dir.to_path_buf()).expect("create store dir"),
        StoreConfig::default(),
    )
    .expect("open store")
}

#[test]
fn checkpoints_survive_reopen_and_numbering_resumes() {
    let dir = scratch("reopen");
    let sup = Supervisor::new(ServeConfig::default()).expect("default config");

    let mut store = store_at(&dir);
    store.commit(0, &sup.snapshot()).expect("first commit");
    store.commit(1, &sup.snapshot()).expect("second commit");
    drop(store);

    let mut reopened = store_at(&dir);
    let report = reopened.load_latest().expect("list store dir");
    let loaded = report.loaded.expect("newest generation is intact");
    assert_eq!(loaded.generation, 2);
    assert_eq!(loaded.fallback_depth, 0);
    assert!(report.quarantined.is_empty());

    // Numbering continues past what the previous incarnation wrote.
    let outcome = reopened.commit(2, &sup.snapshot()).expect("third commit");
    assert!(format!("{outcome:?}").contains("Committed"));
    assert!(dir.join(entry_name(3)).is_file());
}

#[test]
fn corrupt_newest_generation_is_quarantined_on_disk() {
    let dir = scratch("quarantine");
    let sup = Supervisor::new(ServeConfig::default()).expect("default config");

    let mut store = store_at(&dir);
    store.commit(0, &sup.snapshot()).expect("first commit");
    store.commit(1, &sup.snapshot()).expect("second commit");
    drop(store);

    // Flip one payload byte of the newest generation, as a crash mid
    // write or silent media rot would.
    let newest = dir.join(entry_name(2));
    let mut bytes = fs::read(&newest).expect("read newest generation");
    let index = bytes.len() / 2;
    bytes[index] ^= 0x20;
    fs::write(&newest, bytes).expect("write damaged generation");

    let mut reopened = store_at(&dir);
    let report = reopened.load_latest().expect("list store dir");
    let loaded = report.loaded.expect("older generation is intact");
    assert_eq!(loaded.generation, 1);
    assert_eq!(loaded.fallback_depth, 1);
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.quarantined[0].name, entry_name(2));

    // The damaged record is set aside by rename, not deleted: the
    // original path is gone and a `.quarantined` twin holds the bytes.
    assert!(!newest.exists());
    let quarantined = dir.join(format!("{}.quarantined", entry_name(2)));
    assert!(quarantined.is_file());
}

#[test]
fn torn_write_on_disk_falls_back_to_previous_generation() {
    let dir = scratch("torn");
    let sup = Supervisor::new(ServeConfig::default()).expect("default config");

    let mut store = store_at(&dir);
    store.commit(0, &sup.snapshot()).expect("first commit");
    store.commit(1, &sup.snapshot()).expect("second commit");
    drop(store);

    let newest = dir.join(entry_name(2));
    let bytes = fs::read(&newest).expect("read newest generation");
    fs::write(&newest, &bytes[..bytes.len() / 3]).expect("tear newest generation");

    let mut reopened = store_at(&dir);
    let report = reopened.load_latest().expect("list store dir");
    assert_eq!(report.loaded.expect("fallback").generation, 1);
    assert_eq!(report.quarantined.len(), 1);
}

#[test]
fn hostile_entry_names_never_escape_the_store_directory() {
    let dir = scratch("traversal");
    let mut storage = DirStorage::new(dir.clone()).expect("create store dir");

    for name in ["", "../escape", "a/b", "a\\b", ".hidden"] {
        assert!(
            storage.write(name, b"payload").is_err(),
            "name {name:?} must be rejected"
        );
        assert!(
            storage.read(name).is_err(),
            "name {name:?} must be rejected"
        );
        assert!(
            storage.remove(name).is_err(),
            "name {name:?} must be rejected"
        );
    }
    // Nothing outside (or inside) the directory was created.
    assert_eq!(
        fs::read_dir(&dir).expect("store dir exists").count(),
        0,
        "rejected names must leave the directory untouched"
    );
    assert!(!dir
        .parent()
        .expect("scratch parent")
        .join("escape")
        .exists());
}
