//! End-to-end challenge–response rounds through the full duplex session
//! simulator: a live face passes, every attacker class fails or is
//! caught, and the documented blind spot (an instant forger) is pinned.

use lumen_attack::adaptive::AdaptiveForger;
use lumen_chat::endpoint::AdaptiveCallee;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_chat::session::{run_session_with, SessionConfig};
use lumen_chat::trace::ScenarioKind;
use lumen_obs::Recorder;
use lumen_probe::{
    ChallengeSchedule, ProbeConfig, ProbeDecision, ProbeFailReason, ProbeInjector, ProbeVerifier,
    VerifierConfig,
};
use lumen_video::profile::UserProfile;

const STATIC_LEVEL: f64 = 120.0;

fn probed_scenario(schedule: &ChallengeSchedule) -> ScenarioBuilder {
    let session = ProbeConfig::default().session_config(1.5, &SessionConfig::default());
    ProbeInjector::new(schedule.clone()).armed_scenario(
        ScenarioBuilder::default()
            .with_session(session)
            .with_static_caller(STATIC_LEVEL),
    )
}

fn schedule(seed: u64) -> ChallengeSchedule {
    ChallengeSchedule::generate(&ProbeConfig::default(), seed).unwrap()
}

fn verifier() -> ProbeVerifier {
    ProbeVerifier::new(VerifierConfig::default()).unwrap()
}

#[test]
fn live_face_passes_probe() {
    for seed in 0..6u64 {
        let s = schedule(500 + seed);
        let pair = probed_scenario(&s).legitimate(0, 90_500 + seed).unwrap();
        let v = verifier().verify(&s, &pair).unwrap();
        assert_eq!(
            v.decision,
            ProbeDecision::Pass,
            "seed {seed}: live face failed: {v:?}"
        );
    }
}

#[test]
fn delayed_forger_fails_on_timing() {
    for seed in 0..4u64 {
        let s = schedule(600 + seed);
        let pair = probed_scenario(&s).adaptive(0, 0.3, 90_600 + seed).unwrap();
        let v = verifier().verify(&s, &pair).unwrap();
        assert_eq!(
            v.decision,
            ProbeDecision::Fail,
            "seed {seed}: delayed forger passed: {v:?}"
        );
        assert_eq!(v.fail_reason, Some(ProbeFailReason::LateResponse), "{v:?}");
        assert!(v.extra_delay_s > 0.2, "measured extra delay {v:?}");
    }
}

#[test]
fn reenactment_fails_on_missing_response() {
    for seed in 0..4u64 {
        let s = schedule(700 + seed);
        let pair = probed_scenario(&s).reenactment(0, 90_700 + seed).unwrap();
        let v = verifier().verify(&s, &pair).unwrap();
        assert_eq!(
            v.decision,
            ProbeDecision::Fail,
            "seed {seed}: reenactment passed: {v:?}"
        );
    }
}

#[test]
fn probe_stripping_forger_fails() {
    // A probe-aware forger smooths its forged output to scrub the
    // challenge before shipping it (on time otherwise).
    let s = schedule(800);
    let builder = probed_scenario(&s);
    let session = builder.session;
    let caller = ProbeInjector::new(s.clone()).armed_caller({
        let mut c = lumen_chat::endpoint::Caller::new(
            lumen_video::content::MeteringScript::constant(STATIC_LEVEL, session.duration).unwrap(),
        );
        c.scene_noise = 0.0;
        c
    });
    let callee = AdaptiveCallee {
        forger: AdaptiveForger::new(builder.conditions, 0.0)
            .unwrap()
            .with_smoothing(75),
        victim: UserProfile::preset(0),
    };
    let pair = run_session_with(
        &caller,
        &callee,
        &session,
        ScenarioKind::Adaptive {
            victim: 0,
            delay: 0.0,
        },
        90_800,
        &Recorder::null(),
    )
    .unwrap();
    let v = verifier().verify(&s, &pair).unwrap();
    assert_eq!(
        v.decision,
        ProbeDecision::Fail,
        "stripped probe passed: {v:?}"
    );
}

#[test]
fn instant_forger_is_the_documented_blind_spot() {
    // Sec. VIII-J's bound is a *timing* bound: a forger with zero
    // processing delay reproduces the reflection perfectly and passes.
    // The probe's guarantee is exactly that real pipelines cannot do
    // this faster than the 20 ms budget.
    let s = schedule(900);
    let pair = probed_scenario(&s).adaptive(0, 0.0, 90_900).unwrap();
    let v = verifier().verify(&s, &pair).unwrap();
    assert_eq!(v.decision, ProbeDecision::Pass, "{v:?}");
}
