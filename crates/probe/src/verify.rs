//! Matched-filter verification of a probe response.
//!
//! The verifier knows three things an attacker does not control: the
//! secret challenge waveform, the session's out-of-band round-trip time
//! (RTCP-style receiver reports, carried on [`TracePair`] as
//! `forward_delay + backward_delay`), and the physics that a live face
//! reflects the challenge *instantly*. It cross-correlates the detrended
//! challenge against the detrended received ROI luminance, finds the
//! best response lag, and demands that the response (a) exists with
//! enough energy, (b) matches segment-by-segment, and (c) arrives no
//! later than the known round trip plus the paper's 20 ms forgery bound
//! (Sec. VIII-J). An adaptive forger reproduces the waveform exactly —
//! but late, and (c) is the check it cannot pass.

use crate::schedule::ChallengeSchedule;
use crate::{ProbeError, Result};
use lumen_chat::trace::TracePair;
use lumen_core::quality::{InconclusiveReason, QualityGate};
use lumen_dsp::filters::moving::moving_average;
use lumen_dsp::xcorr::{best_lag, normalized_xcorr_at};
use lumen_dsp::Signal;
use lumen_obs::{stage, Recorder};
use serde::{Deserialize, Serialize};

/// Decision thresholds for probe verification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerifierConfig {
    /// Minimum normalized cross-correlation between the expected and the
    /// received challenge at the best lag.
    pub min_correlation: f64,
    /// Minimum response gain (received grey levels per transmitted grey
    /// level of challenge). The physical chain delivers roughly 0.1; a
    /// probe-stripping forger delivers ~0.
    pub min_response_gain: f64,
    /// Minimum fraction of segments whose response matches the challenge
    /// sign at the *expected* (RTT-derived) alignment.
    pub min_hit_rate: f64,
    /// Maximum tolerated response delay beyond the known network round
    /// trip, seconds — the paper's 20 ms adaptive-forgery budget.
    pub max_extra_delay: f64,
    /// How far *before* the nominal round trip the lag search and the
    /// acceptance window extend, in ticks. Jitter-buffer release and
    /// display quantization can make a live reflection appear slightly
    /// early relative to the RTT estimate; arriving early is never the
    /// forger's signature, so this slack is applied to the early side
    /// only. The late bound is `max_extra_delay` plus a single tick of
    /// sampling quantization.
    pub timing_slack_ticks: f64,
    /// How far beyond the expected round trip the lag search extends,
    /// seconds. Must cover the largest forgery delay worth measuring:
    /// the peak of a delayed copy must fall *inside* the searched range
    /// for its lag — and hence the forgery delay — to be measured.
    pub search_margin: f64,
    /// Moving-average window used to detrend both the challenge and the
    /// response before correlation, seconds. Longer than a segment,
    /// shorter than the schedule.
    pub detrend_window_s: f64,
}

impl Default for VerifierConfig {
    // Calibrated jointly with the `ProbeConfig` defaults: across a
    // 60-seed sweep of the synth pipeline, live faces score correlation
    // ≥ 0.20 and hit rate ≥ 0.62 on every draw, while challenge-blind
    // attackers whose chance alignment clears both thresholds are still
    // rejected because their correlation peak lands outside the
    // acceptance window. Timing is the primary separator; correlation,
    // gain and hits reject the attacks too weak to even mimic a copy.
    // A rare unlucky camera-gain draw (~1–2% of seeds) halves the live
    // reflection and falls under `min_correlation`; the probe
    // experiment's amplitude ladder shows those gone by 12 grey levels.
    fn default() -> Self {
        VerifierConfig {
            min_correlation: 0.2,
            min_response_gain: 0.02,
            min_hit_rate: 0.6,
            max_extra_delay: 0.02,
            timing_slack_ticks: 2.5,
            search_margin: 1.5,
            detrend_window_s: 0.9,
        }
    }
}

impl VerifierConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ProbeError::InvalidConfig`] for thresholds outside their
    /// domains.
    pub fn validate(&self) -> Result<()> {
        if !(self.min_correlation.is_finite() && (0.0..=1.0).contains(&self.min_correlation)) {
            return Err(ProbeError::invalid_config(
                "min_correlation",
                "must lie in [0, 1]",
            ));
        }
        if !(self.min_response_gain.is_finite() && self.min_response_gain >= 0.0) {
            return Err(ProbeError::invalid_config(
                "min_response_gain",
                "must be finite and non-negative",
            ));
        }
        if !(self.min_hit_rate.is_finite() && (0.0..=1.0).contains(&self.min_hit_rate)) {
            return Err(ProbeError::invalid_config(
                "min_hit_rate",
                "must lie in [0, 1]",
            ));
        }
        if !(self.max_extra_delay.is_finite() && self.max_extra_delay >= 0.0) {
            return Err(ProbeError::invalid_config(
                "max_extra_delay",
                "must be finite and non-negative",
            ));
        }
        if !(self.timing_slack_ticks.is_finite() && self.timing_slack_ticks >= 0.0) {
            return Err(ProbeError::invalid_config(
                "timing_slack_ticks",
                "must be finite and non-negative",
            ));
        }
        if !(self.search_margin.is_finite() && self.search_margin > 0.0) {
            return Err(ProbeError::invalid_config(
                "search_margin",
                "must be finite and positive",
            ));
        }
        if !(self.detrend_window_s.is_finite() && self.detrend_window_s > 0.0) {
            return Err(ProbeError::invalid_config(
                "detrend_window_s",
                "must be finite and positive",
            ));
        }
        Ok(())
    }
}

/// The verifier's decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeDecision {
    /// The challenge came back on time with matching structure.
    Pass,
    /// The response is missing, wrong or late.
    Fail,
    /// The received clip is too damaged to judge either way.
    Abstain,
}

/// Why a probe failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeFailReason {
    /// The matched filter found no convincing copy of the challenge.
    WeakCorrelation,
    /// A correlated shape exists but its amplitude is far below the
    /// physical reflection gain (e.g. a smoothed/stripped probe).
    MissingResponse,
    /// Too few segments matched at the RTT-derived alignment.
    LowHitRate,
    /// The response exists but arrives later than the network round trip
    /// plus the forgery budget allows.
    LateResponse,
}

/// Typed outcome of one challenge–response round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeVerdict {
    /// The decision.
    pub decision: ProbeDecision,
    /// Failure cause, when [`ProbeDecision::Fail`].
    pub fail_reason: Option<ProbeFailReason>,
    /// Abstention cause, when [`ProbeDecision::Abstain`].
    pub abstain_reason: Option<InconclusiveReason>,
    /// Normalized cross-correlation at the best lag.
    pub correlation: f64,
    /// Estimated response gain: received grey levels per transmitted grey
    /// level of challenge (regression slope at the best lag).
    pub response_gain: f64,
    /// Best response lag, seconds.
    pub lag_s: f64,
    /// Lag beyond the known network round trip, seconds.
    pub extra_delay_s: f64,
    /// Fraction of judged segments matching at the expected alignment.
    pub hit_rate: f64,
    /// Number of segments that were judged.
    pub segments_judged: usize,
    /// Confidence in the decision, `[0, 1]` (0 for abstentions).
    pub confidence: f64,
}

impl ProbeVerdict {
    /// The probe vote, if conclusive: `Some(true)` for a pass,
    /// `Some(false)` for a fail, `None` for an abstention.
    pub fn accepted(&self) -> Option<bool> {
        match self.decision {
            ProbeDecision::Pass => Some(true),
            ProbeDecision::Fail => Some(false),
            ProbeDecision::Abstain => None,
        }
    }
}

/// Matched-filter verifier for one challenge.
#[derive(Debug, Clone)]
pub struct ProbeVerifier {
    config: VerifierConfig,
    gate: QualityGate,
}

impl ProbeVerifier {
    /// Creates a verifier with the given thresholds and the default
    /// signal-quality gate.
    ///
    /// # Errors
    ///
    /// Propagates [`VerifierConfig::validate`] failures.
    pub fn new(config: VerifierConfig) -> Result<Self> {
        config.validate()?;
        Ok(ProbeVerifier {
            config,
            gate: QualityGate::default(),
        })
    }

    /// The configured thresholds.
    pub fn config(&self) -> &VerifierConfig {
        &self.config
    }

    /// Verifies the response to `schedule` carried in `pair` (the probed
    /// session's transmitted and received traces).
    ///
    /// # Errors
    ///
    /// Returns [`ProbeError::InvalidConfig`] when the received trace's
    /// sample rate disagrees with the schedule, and propagates DSP errors.
    pub fn verify(&self, schedule: &ChallengeSchedule, pair: &TracePair) -> Result<ProbeVerdict> {
        self.verify_with(schedule, pair, &Recorder::null())
    }

    /// [`ProbeVerifier::verify`] with observability: emits a
    /// `probe_verify` span and `probe.pass` / `probe.fail` /
    /// `probe.abstain` counters.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ProbeVerifier::verify`].
    // lint:hot-path
    pub fn verify_with(
        &self,
        schedule: &ChallengeSchedule,
        pair: &TracePair,
        recorder: &Recorder,
    ) -> Result<ProbeVerdict> {
        let _span = recorder.span(stage::PROBE_VERIFY);
        let rate = schedule.sample_rate;
        if (pair.rx.sample_rate() - rate).abs() > f64::EPSILON {
            return Err(ProbeError::invalid_config(
                "sample_rate",
                format!(
                    "received trace at {} Hz but the schedule was issued at {rate} Hz",
                    pair.rx.sample_rate()
                ),
            ));
        }

        // 1. Screen the received clip: a probe on a badly damaged link
        //    abstains instead of accusing the callee.
        let screened = self.gate.screen(pair.rx.samples(), rate);
        let rx_samples = match screened.decision {
            lumen_core::quality::GateDecision::Inconclusive(reason) => {
                recorder.add("probe.abstain", 1);
                return Ok(abstention(reason));
            }
            lumen_core::quality::GateDecision::Pass { samples, .. } => samples,
        };

        // 2. Detrend challenge and response with the same moving-average
        //    high-pass: slow content/AE drift is removed from both, and
        //    the (identical) filter distortion cancels in the lag search.
        let window = detrend_window(self.config.detrend_window_s, rate, rx_samples.len());
        let w = Signal::new(schedule.waveform(), rate)?;
        let w_f = detrended(&w, window)?;
        let r = Signal::new(rx_samples, rate)?;
        let r_f = detrended(&r, window.min(r.len()))?;

        // 3. Lag search from just before the known round trip out to the
        //    search margin, deciding on the *location* of the peak. The
        //    challenge is piecewise constant, so its autocorrelation
        //    decays slowly — correlation at the edge of the acceptance
        //    window is still high even when the true peak sits several
        //    ticks late. Thresholding correlation inside the window would
        //    therefore admit 50–100 ms forgers; demanding that the argmax
        //    itself lands on time does not.
        let expected_ticks = (pair.round_trip_delay() * rate).round() as isize;
        let slack_ticks = self.config.timing_slack_ticks.ceil() as isize;
        let accept_lo = expected_ticks - slack_ticks - 2;
        let accept_hi = expected_ticks + (self.config.max_extra_delay * rate).ceil() as isize + 1;
        let search_hi = expected_ticks + (self.config.search_margin * rate).ceil() as isize;
        let mut peak = (expected_ticks, f64::MIN);
        for lag in accept_lo..=search_hi {
            let c = normalized_xcorr_at(&w_f, &r_f, lag);
            if c > peak.1 {
                peak = (lag, c);
            }
        }
        let (peak_lag, peak_corr) = peak;
        let peak_gain = regression_gain(&w_f, &r_f, peak_lag);
        // Segment hits are judged at the *measured* alignment — the peak
        // lag — which the acceptance check already constrains to the
        // physical window, so this cannot help a late forger; it only
        // stops a one-tick RTT-estimate error from shaving live hits.
        let hits_lag = if peak_lag <= accept_hi {
            peak_lag
        } else {
            expected_ticks
        };
        let (hit_rate, segments_judged) = segment_hits(schedule, &w_f, &r_f, hits_lag);

        // 4. Decide. An on-time peak with enough energy and matching
        //    structure passes. A convincing copy of the challenge whose
        //    peak arrives past the acceptance window is the adaptive
        //    forger's signature. When no convincing copy exists near the
        //    round trip at all, a *global* lag search (built on
        //    `best_lag`) characterizes what went wrong — no response,
        //    a too-weak response, or response energy at a wild lag.
        let response_present =
            peak_corr >= self.config.min_correlation && peak_gain >= self.config.min_response_gain;
        let on_time = response_present && peak_lag <= accept_hi;
        let (lag, correlation, response_gain, fail_reason) =
            if on_time && hit_rate >= self.config.min_hit_rate {
                (peak_lag, peak_corr, peak_gain, None)
            } else if on_time {
                (
                    peak_lag,
                    peak_corr,
                    peak_gain,
                    Some(ProbeFailReason::LowHitRate),
                )
            } else if response_present {
                (
                    peak_lag,
                    peak_corr,
                    peak_gain,
                    Some(ProbeFailReason::LateResponse),
                )
            } else {
                let hard_cap = w_f.len().max(r_f.len()).saturating_sub(2);
                let max_lag = (expected_ticks.unsigned_abs())
                    .saturating_add((self.config.search_margin * rate).ceil() as usize)
                    .min(hard_cap);
                let (global_lag, global_corr) = best_lag(&w_f, &r_f, max_lag)?;
                let global_gain = regression_gain(&w_f, &r_f, global_lag);
                let reason = if global_corr < self.config.min_correlation {
                    ProbeFailReason::WeakCorrelation
                } else if global_gain < self.config.min_response_gain {
                    ProbeFailReason::MissingResponse
                } else if (accept_lo..=accept_hi).contains(&global_lag) {
                    // The challenge came back on time but its structure does
                    // not line up segment-for-segment.
                    ProbeFailReason::LowHitRate
                } else {
                    ProbeFailReason::LateResponse
                };
                (global_lag, global_corr, global_gain, Some(reason))
            };
        let lag_s = lag as f64 / rate;
        let extra_delay_s = (lag - expected_ticks) as f64 / rate;

        // A weak response on a marginal link is not evidence of forgery:
        // when the clip lost most of the gate's gap tolerance, abstain
        // rather than reject. The factor is deliberately high — frozen
        // stretches are also what a *recorded* fake looks like, so a
        // generous abstention band would hand attackers a shield.
        if matches!(fail_reason, Some(ProbeFailReason::WeakCorrelation))
            && screened.quality.gap_fraction > 0.8 * self.gate.thresholds().max_gap_fraction
        {
            recorder.add("probe.abstain", 1);
            return Ok(abstention(InconclusiveReason::ExcessiveGaps {
                gap_fraction: screened.quality.gap_fraction,
            }));
        }

        let c = correlation.clamp(0.0, 1.0);
        let (decision, confidence) = match fail_reason {
            None => (
                ProbeDecision::Pass,
                ((c / self.config.min_correlation).min(2.0) / 2.0) * hit_rate,
            ),
            Some(ProbeFailReason::WeakCorrelation) | Some(ProbeFailReason::MissingResponse) => {
                // Confident precisely because the response is absent.
                (ProbeDecision::Fail, 1.0 - c)
            }
            Some(_) => {
                // A response was measured and it is wrong: confidence
                // follows how clearly it was measured.
                (ProbeDecision::Fail, c)
            }
        };
        recorder.add(
            match decision {
                ProbeDecision::Pass => "probe.pass",
                _ => "probe.fail",
            },
            1,
        );
        Ok(ProbeVerdict {
            decision,
            fail_reason,
            abstain_reason: None,
            correlation,
            response_gain,
            lag_s,
            extra_delay_s,
            hit_rate,
            segments_judged,
            confidence,
        })
    }
}

/// An abstention verdict with zeroed measurements.
fn abstention(reason: InconclusiveReason) -> ProbeVerdict {
    ProbeVerdict {
        decision: ProbeDecision::Abstain,
        fail_reason: None,
        abstain_reason: Some(reason),
        correlation: 0.0,
        response_gain: 0.0,
        lag_s: 0.0,
        extra_delay_s: 0.0,
        hit_rate: 0.0,
        segments_judged: 0,
        confidence: 0.0,
    }
}

/// Odd moving-average window for `seconds` at `rate`, bounded by `len`.
fn detrend_window(seconds: f64, rate: f64, len: usize) -> usize {
    let ticks = (seconds * rate).round().max(3.0) as usize;
    let ticks = ticks | 1; // odd, so the average is centered
    ticks
        .min(if len.is_multiple_of(2) {
            len.saturating_sub(1)
        } else {
            len
        })
        .max(1)
}

/// Signal minus its centered moving average (a zero-phase high-pass).
fn detrended(signal: &Signal, window: usize) -> Result<Vec<f64>> {
    let baseline = moving_average(signal, window.max(1).min(signal.len()))?;
    Ok(signal
        .samples()
        .iter()
        .zip(baseline.samples())
        .map(|(&s, &b)| s - b)
        .collect())
}

/// Least-squares gain of `r` against `w` at integer lag `lag`
/// (`r[i + lag] ≈ gain * w[i]`); `0.0` when the overlap is degenerate.
fn regression_gain(w: &[f64], r: &[f64], lag: isize) -> f64 {
    let n = w.len() as isize;
    let m = r.len() as isize;
    let start = (-lag).max(0);
    let end = n.min(m - lag);
    if end - start < 2 {
        return 0.0;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for i in start..end {
        let wi = w[i as usize];
        num += wi * r[(i + lag) as usize];
        den += wi * wi;
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Per-segment sign agreement at the expected (RTT-derived) alignment.
///
/// Segment interiors are trimmed by three ticks on each side so display
/// quantization and transition smear do not decide a segment, and a
/// segment whose detrended reference is too small to carry a sign (its
/// level sits at the local baseline) is skipped rather than guessed.
fn segment_hits(
    schedule: &ChallengeSchedule,
    w_f: &[f64],
    r_f: &[f64],
    expected_lag: isize,
) -> (f64, usize) {
    const TRIM: usize = 3;
    let mut judged = 0usize;
    let mut hits = 0usize;
    let mut at = 0usize;
    let sign_floor = 0.05 * schedule.amplitude;
    for segment in &schedule.segments {
        let start = at + TRIM;
        let end = (at + segment.ticks).saturating_sub(TRIM);
        at += segment.ticks;
        if end <= start {
            continue;
        }
        let r_start = start as isize + expected_lag;
        let r_end = end as isize + expected_lag;
        if r_start < 0 || r_end as usize > r_f.len() || end > w_f.len() {
            continue;
        }
        let ref_mean = mean(&w_f[start..end]);
        if ref_mean.abs() < sign_floor {
            continue;
        }
        let resp_mean = mean(&r_f[r_start as usize..r_end as usize]);
        judged += 1;
        if ref_mean * resp_mean > 0.0 {
            hits += 1;
        }
    }
    let rate = if judged == 0 {
        0.0
    } else {
        hits as f64 / judged as f64
    };
    (rate, judged)
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}
