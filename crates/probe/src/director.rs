//! Probe scheduling and fusion policy.
//!
//! A [`ProbeDirector`] sits beside one streaming session. It watches the
//! passive verdict stream; when the passive path abstains (low-variance
//! content, a degraded stretch) it issues a fresh seeded challenge —
//! under a cooldown and a per-session budget, because probes cost
//! transmitted-video fidelity and verification work. The resulting
//! [`ProbeVerdict`] is fused into the *same* 0.7·D
//! vote history the passive clips feed
//! (`StreamingDetector::record_probe_vote`), so active evidence carries
//! exactly one vote, not a side-channel override.
//!
//! The director is plain serializable state: checkpointing a serving
//! runtime mid-probe captures the in-flight challenge byte-identically,
//! and the restored runtime can still verify the response.

use crate::schedule::{ChallengeSchedule, ProbeConfig};
use crate::verify::{ProbeDecision, ProbeFailReason, ProbeVerdict, ProbeVerifier, VerifierConfig};
use crate::{ProbeError, Result};
use lumen_chat::trace::TracePair;
use lumen_core::detector::ClipOutcome;
use lumen_core::quality::InconclusiveReason;
use lumen_core::stream::ClipVerdict;
use lumen_obs::Recorder;
use serde::{Deserialize, Serialize};

/// When and how a session may be probed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbePolicy {
    /// Challenge generation parameters.
    pub challenge: ProbeConfig,
    /// Verification thresholds.
    pub verifier: VerifierConfig,
    /// Passive verdicts that must elapse after a probe is issued before
    /// the next one may fire.
    pub cooldown_clips: u64,
    /// Maximum probes per session lifetime.
    pub max_probes: u64,
    /// Challenges that may be re-issued free of budget when a
    /// [`MissingResponse`](ProbeFailReason::MissingResponse) lands inside
    /// the restart window (see [`ProbeDirector::note_restart`]): after a
    /// checkpoint/restore, a missing response most likely means the
    /// response frames were lost with the crash, not that the callee
    /// stripped the probe. Zero disables restart retries.
    pub restart_retries: u64,
}

impl Default for ProbePolicy {
    fn default() -> Self {
        ProbePolicy {
            challenge: ProbeConfig::default(),
            verifier: VerifierConfig::default(),
            cooldown_clips: 2,
            max_probes: 8,
            restart_retries: 2,
        }
    }
}

impl ProbePolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Propagates challenge and verifier validation failures; a zero
    /// probe budget is also rejected (use no director instead).
    pub fn validate(&self) -> Result<()> {
        self.challenge.validate()?;
        self.verifier.validate()?;
        if self.max_probes == 0 {
            return Err(ProbeError::invalid_config(
                "max_probes",
                "a director with no probe budget can never act",
            ));
        }
        Ok(())
    }
}

/// Per-session probe state machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeDirector {
    policy: ProbePolicy,
    seed: u64,
    issued: u64,
    cooldown: u64,
    in_flight: Option<ChallengeSchedule>,
    /// Whether the outstanding challenge crossed a checkpoint/restore
    /// boundary (armed by [`ProbeDirector::note_restart`], cleared by the
    /// first conclusive resolve or abandon).
    restart_window: bool,
    /// Restart-window retries consumed so far.
    restart_retries_used: u64,
    /// Challenges re-issued inside restart windows (drives the reserved
    /// re-issue seed ordinals, `max_probes + n`).
    reissued: u64,
}

impl ProbeDirector {
    /// Creates a director drawing challenge seeds from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates [`ProbePolicy::validate`] failures.
    pub fn new(policy: ProbePolicy, seed: u64) -> Result<Self> {
        policy.validate()?;
        Ok(ProbeDirector {
            policy,
            seed,
            issued: 0,
            cooldown: 0,
            in_flight: None,
            restart_window: false,
            restart_retries_used: 0,
            reissued: 0,
        })
    }

    /// The governing policy.
    pub fn policy(&self) -> &ProbePolicy {
        &self.policy
    }

    /// Probes issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The outstanding challenge, if a probe is awaiting its response.
    pub fn in_flight(&self) -> Option<&ChallengeSchedule> {
        self.in_flight.as_ref()
    }

    /// Whether the outstanding challenge is inside its restart window.
    pub fn in_restart_window(&self) -> bool {
        self.restart_window
    }

    /// Marks the outstanding challenge as having crossed a restart: the
    /// supervisor calls this when the director is restored from a
    /// checkpoint with a challenge still in flight. Inside the window a
    /// [`MissingResponse`](ProbeFailReason::MissingResponse) is
    /// retry-eligible — up to [`ProbePolicy::restart_retries`] fresh
    /// challenges are re-issued (budget-free, under an exponentially
    /// growing cooldown) instead of burning the session's probe budget on
    /// a response that was probably lost with the crash. No-op when
    /// nothing is in flight.
    pub fn note_restart(&mut self) {
        if self.in_flight.is_some() {
            self.restart_window = true;
        }
    }

    /// Observes one passive clip verdict; returns a fresh challenge when
    /// the policy says this is the moment to probe.
    ///
    /// A probe fires when the clip was inconclusive for a *signal* reason
    /// (not a load shed — `Withheld` clips say nothing about the callee),
    /// no probe is already outstanding, the cooldown has elapsed and the
    /// session budget is not exhausted. Each challenge draws from a
    /// deterministic per-probe seed, so a director restored from a
    /// checkpoint issues the same future challenges.
    pub fn observe(&mut self, verdict: &ClipVerdict) -> Option<ChallengeSchedule> {
        let cooling = self.cooldown > 0;
        self.cooldown = self.cooldown.saturating_sub(1);
        let wants_probe = matches!(
            &verdict.outcome,
            ClipOutcome::Inconclusive(reason) if !matches!(reason, InconclusiveReason::Withheld)
        );
        if !wants_probe
            || cooling
            || self.in_flight.is_some()
            || self.issued >= self.policy.max_probes
        {
            return None;
        }
        // Policy was validated at construction, so generation cannot
        // fail; a defensive None keeps the path panic-free regardless.
        let schedule =
            ChallengeSchedule::generate(&self.policy.challenge, probe_seed(self.seed, self.issued))
                .ok()?;
        self.issued += 1;
        self.cooldown = self.policy.cooldown_clips;
        self.in_flight = Some(schedule.clone());
        Some(schedule)
    }

    /// Verifies the response to the outstanding challenge and clears it.
    ///
    /// Inside a restart window (see [`ProbeDirector::note_restart`]) a
    /// [`MissingResponse`](ProbeFailReason::MissingResponse) does not
    /// become a reject vote: while retries remain, the verdict is
    /// neutralized to an abstention and a *fresh* challenge is re-issued
    /// in its place (left in [`ProbeDirector::in_flight`], budget-free,
    /// with the cooldown doubling per retry). Any other outcome closes
    /// the window.
    ///
    /// # Errors
    ///
    /// Returns [`ProbeError::NoProbeInFlight`] when no challenge is
    /// outstanding; verification errors leave the challenge in flight so
    /// a transient failure can be retried.
    pub fn resolve(&mut self, pair: &TracePair, recorder: &Recorder) -> Result<ProbeVerdict> {
        let schedule = self.in_flight.clone().ok_or(ProbeError::NoProbeInFlight)?;
        let verifier = ProbeVerifier::new(self.policy.verifier)?;
        let verdict = verifier.verify_with(&schedule, pair, recorder)?;
        if verdict.fail_reason == Some(ProbeFailReason::MissingResponse)
            && self.restart_window
            && self.restart_retries_used < self.policy.restart_retries
        {
            // Re-issue seeds come from the ordinal range above
            // `max_probes`, which regular probes can never reach, so a
            // restored director still draws the same future challenges.
            let fresh = ChallengeSchedule::generate(
                &self.policy.challenge,
                probe_seed(self.seed, self.policy.max_probes + self.reissued),
            )
            .ok();
            if let Some(fresh) = fresh {
                self.restart_retries_used += 1;
                self.reissued += 1;
                let doublings = (self.restart_retries_used - 1).min(16) as u32;
                self.cooldown = self
                    .policy
                    .cooldown_clips
                    .max(1)
                    .saturating_mul(1u64 << doublings);
                self.in_flight = Some(fresh);
                recorder.add("probe.retry.missing_response", 1);
                return Ok(retry_withheld(&verdict));
            }
        }
        self.restart_window = false;
        if let Some(reason) = verdict.fail_reason {
            // Per-cause counters: a flight recorder or metrics snapshot can
            // tell a mistimed response apart from a missing one.
            recorder.add(
                match reason {
                    ProbeFailReason::WeakCorrelation => "probe.fail.weak_correlation",
                    ProbeFailReason::MissingResponse => "probe.fail.missing_response",
                    ProbeFailReason::LowHitRate => "probe.fail.low_hit_rate",
                    ProbeFailReason::LateResponse => "probe.fail.late_response",
                },
                1,
            );
        }
        self.in_flight = None;
        Ok(verdict)
    }

    /// Discards the outstanding challenge without verification (e.g. the
    /// probed clip was shed before its response completed).
    pub fn abandon(&mut self) -> Option<ChallengeSchedule> {
        self.restart_window = false;
        self.in_flight.take()
    }
}

/// Neutralizes a restart-window missing response: the measurements stay
/// for diagnostics, but the decision becomes a vote-free abstention (the
/// re-issued challenge will produce the real verdict).
fn retry_withheld(verdict: &ProbeVerdict) -> ProbeVerdict {
    ProbeVerdict {
        decision: ProbeDecision::Abstain,
        fail_reason: None,
        abstain_reason: Some(InconclusiveReason::Withheld),
        confidence: 0.0,
        ..verdict.clone()
    }
}

/// Deterministic per-probe seed derivation: the shared workspace mixer
/// over `(seed, ordinal + 1)`, tag 0. The `+ 1` keeps ordinal 0 from
/// collapsing its coordinate to the raw seed — the formula (and thus
/// every historical challenge schedule) is unchanged by the move to
/// [`lumen_dsp::mix::splitmix`].
fn probe_seed(seed: u64, ordinal: u64) -> u64 {
    lumen_dsp::mix::splitmix(seed, 0, ordinal.wrapping_add(1), 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_core::stream::SessionStatus;

    fn inconclusive(clip_index: usize) -> ClipVerdict {
        ClipVerdict {
            clip_index,
            outcome: ClipOutcome::Inconclusive(InconclusiveReason::Flatline),
            status: SessionStatus::Gathering,
            retrigger: false,
        }
    }

    fn withheld(clip_index: usize) -> ClipVerdict {
        ClipVerdict {
            clip_index,
            outcome: ClipOutcome::Inconclusive(InconclusiveReason::Withheld),
            status: SessionStatus::Gathering,
            retrigger: false,
        }
    }

    #[test]
    fn zero_budget_rejected() {
        let policy = ProbePolicy {
            max_probes: 0,
            ..ProbePolicy::default()
        };
        assert!(ProbeDirector::new(policy, 1).is_err());
    }

    #[test]
    fn fires_on_inconclusive_with_cooldown_and_budget() {
        let policy = ProbePolicy {
            cooldown_clips: 2,
            max_probes: 2,
            ..ProbePolicy::default()
        };
        let mut director = ProbeDirector::new(policy, 99).unwrap();
        let first = director.observe(&inconclusive(0)).expect("first probe");
        assert_eq!(director.issued(), 1);
        assert_eq!(director.in_flight(), Some(&first));
        // Outstanding probe and cooldown both block the next request.
        assert!(director.observe(&inconclusive(1)).is_none());
        director.abandon();
        assert!(director.observe(&inconclusive(2)).is_none(), "cooling down");
        let second = director.observe(&inconclusive(3)).expect("second probe");
        assert_ne!(first, second, "each probe draws a fresh challenge");
        director.abandon();
        // Budget of two is now exhausted forever.
        for i in 4..10 {
            assert!(director.observe(&inconclusive(i)).is_none());
        }
    }

    #[test]
    fn withheld_clips_do_not_trigger() {
        let mut director = ProbeDirector::new(ProbePolicy::default(), 7).unwrap();
        assert!(director.observe(&withheld(0)).is_none());
        assert_eq!(director.issued(), 0);
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = ProbeDirector::new(ProbePolicy::default(), 123).unwrap();
        let mut b = a.clone();
        let sa = a.observe(&inconclusive(0)).unwrap();
        let sb = b.observe(&inconclusive(0)).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(a, b);
    }

    /// A pair whose rx carries a faint exact copy of `schedule` (high
    /// correlation, gain far below the physical reflection) — the
    /// verifier's `MissingResponse` signature.
    fn faint_copy_pair(schedule: &ChallengeSchedule) -> TracePair {
        let rate = schedule.sample_rate;
        // The sample-to-sample dither keeps the quality gate from reading
        // the piecewise-constant challenge copy as frozen frames; it is
        // small enough that the regression gain stays under the
        // `MissingResponse` threshold.
        let samples: Vec<f64> = schedule
            .waveform()
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let dither = if i % 2 == 0 { 0.05 } else { -0.05 };
                128.0 + 0.005 * w + dither
            })
            .collect();
        let rx = lumen_dsp::Signal::new(samples, rate).unwrap();
        TracePair {
            tx: rx.clone(),
            rx,
            kind: lumen_chat::trace::ScenarioKind::Legitimate { user: 0 },
            seed: 0,
            forward_delay: 0.0,
            backward_delay: 0.0,
        }
    }

    #[test]
    fn restart_window_retries_missing_response() {
        let policy = ProbePolicy {
            cooldown_clips: 2,
            restart_retries: 2,
            ..ProbePolicy::default()
        };
        let mut director = ProbeDirector::new(policy, 42).unwrap();
        let first = director.observe(&inconclusive(0)).expect("probe fires");
        assert_eq!(director.issued(), 1);

        // Simulate the checkpoint cycle: the director crosses a restore
        // with the challenge still outstanding.
        director.note_restart();
        assert!(director.in_restart_window());

        let verdict = director
            .resolve(&faint_copy_pair(&first), &Recorder::null())
            .unwrap();
        // The missing response is neutralized, not fused as a reject...
        assert_eq!(verdict.decision, ProbeDecision::Abstain);
        assert_eq!(verdict.accepted(), None);
        assert_eq!(verdict.abstain_reason, Some(InconclusiveReason::Withheld));
        // ...a fresh challenge is re-issued, budget-free, under a
        // doubled-on-next-retry cooldown.
        let second = director.in_flight().cloned().expect("re-issued");
        assert_ne!(second, first, "the re-issue draws a fresh challenge");
        assert_eq!(director.issued(), 1, "no budget burned");
        assert_eq!(director.cooldown, 2);

        // Second retry: cooldown backoff doubles.
        let verdict = director
            .resolve(&faint_copy_pair(&second), &Recorder::null())
            .unwrap();
        assert_eq!(verdict.decision, ProbeDecision::Abstain);
        let third = director.in_flight().cloned().expect("re-issued again");
        assert_ne!(third, second);
        assert_eq!(director.cooldown, 4);

        // Retries exhausted: the next missing response is a real fail.
        let verdict = director
            .resolve(&faint_copy_pair(&third), &Recorder::null())
            .unwrap();
        assert_eq!(verdict.decision, ProbeDecision::Fail);
        assert_eq!(verdict.fail_reason, Some(ProbeFailReason::MissingResponse));
        assert!(director.in_flight().is_none());
        assert!(!director.in_restart_window());
    }

    #[test]
    fn missing_response_outside_restart_window_fails_normally() {
        let mut director = ProbeDirector::new(ProbePolicy::default(), 42).unwrap();
        let schedule = director.observe(&inconclusive(0)).expect("probe fires");
        let verdict = director
            .resolve(&faint_copy_pair(&schedule), &Recorder::null())
            .unwrap();
        assert_eq!(verdict.decision, ProbeDecision::Fail);
        assert_eq!(verdict.fail_reason, Some(ProbeFailReason::MissingResponse));
        assert!(director.in_flight().is_none(), "no re-issue");
    }

    #[test]
    fn note_restart_without_challenge_is_a_noop() {
        let mut director = ProbeDirector::new(ProbePolicy::default(), 42).unwrap();
        director.note_restart();
        assert!(!director.in_restart_window());
    }

    #[test]
    fn abandon_closes_the_restart_window() {
        let mut director = ProbeDirector::new(ProbePolicy::default(), 42).unwrap();
        director.observe(&inconclusive(0)).expect("probe fires");
        director.note_restart();
        director.abandon();
        assert!(!director.in_restart_window());
    }

    #[test]
    fn resolve_without_probe_errors() {
        let mut director = ProbeDirector::new(ProbePolicy::default(), 5).unwrap();
        let tx = lumen_dsp::Signal::new(vec![100.0; 10], 50.0).unwrap();
        let pair = TracePair {
            tx: tx.clone(),
            rx: tx,
            kind: lumen_chat::trace::ScenarioKind::Legitimate { user: 0 },
            seed: 0,
            forward_delay: 0.0,
            backward_delay: 0.0,
        };
        assert_eq!(
            director.resolve(&pair, &Recorder::null()),
            Err(ProbeError::NoProbeInFlight)
        );
    }
}
