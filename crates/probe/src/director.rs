//! Probe scheduling and fusion policy.
//!
//! A [`ProbeDirector`] sits beside one streaming session. It watches the
//! passive verdict stream; when the passive path abstains (low-variance
//! content, a degraded stretch) it issues a fresh seeded challenge —
//! under a cooldown and a per-session budget, because probes cost
//! transmitted-video fidelity and verification work. The resulting
//! [`ProbeVerdict`] is fused into the *same* 0.7·D
//! vote history the passive clips feed
//! (`StreamingDetector::record_probe_vote`), so active evidence carries
//! exactly one vote, not a side-channel override.
//!
//! The director is plain serializable state: checkpointing a serving
//! runtime mid-probe captures the in-flight challenge byte-identically,
//! and the restored runtime can still verify the response.

use crate::schedule::{ChallengeSchedule, ProbeConfig};
use crate::verify::{ProbeFailReason, ProbeVerdict, ProbeVerifier, VerifierConfig};
use crate::{ProbeError, Result};
use lumen_chat::trace::TracePair;
use lumen_core::detector::ClipOutcome;
use lumen_core::quality::InconclusiveReason;
use lumen_core::stream::ClipVerdict;
use lumen_obs::Recorder;
use serde::{Deserialize, Serialize};

/// When and how a session may be probed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbePolicy {
    /// Challenge generation parameters.
    pub challenge: ProbeConfig,
    /// Verification thresholds.
    pub verifier: VerifierConfig,
    /// Passive verdicts that must elapse after a probe is issued before
    /// the next one may fire.
    pub cooldown_clips: u64,
    /// Maximum probes per session lifetime.
    pub max_probes: u64,
}

impl Default for ProbePolicy {
    fn default() -> Self {
        ProbePolicy {
            challenge: ProbeConfig::default(),
            verifier: VerifierConfig::default(),
            cooldown_clips: 2,
            max_probes: 8,
        }
    }
}

impl ProbePolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Propagates challenge and verifier validation failures; a zero
    /// probe budget is also rejected (use no director instead).
    pub fn validate(&self) -> Result<()> {
        self.challenge.validate()?;
        self.verifier.validate()?;
        if self.max_probes == 0 {
            return Err(ProbeError::invalid_config(
                "max_probes",
                "a director with no probe budget can never act",
            ));
        }
        Ok(())
    }
}

/// Per-session probe state machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeDirector {
    policy: ProbePolicy,
    seed: u64,
    issued: u64,
    cooldown: u64,
    in_flight: Option<ChallengeSchedule>,
}

impl ProbeDirector {
    /// Creates a director drawing challenge seeds from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates [`ProbePolicy::validate`] failures.
    pub fn new(policy: ProbePolicy, seed: u64) -> Result<Self> {
        policy.validate()?;
        Ok(ProbeDirector {
            policy,
            seed,
            issued: 0,
            cooldown: 0,
            in_flight: None,
        })
    }

    /// The governing policy.
    pub fn policy(&self) -> &ProbePolicy {
        &self.policy
    }

    /// Probes issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The outstanding challenge, if a probe is awaiting its response.
    pub fn in_flight(&self) -> Option<&ChallengeSchedule> {
        self.in_flight.as_ref()
    }

    /// Observes one passive clip verdict; returns a fresh challenge when
    /// the policy says this is the moment to probe.
    ///
    /// A probe fires when the clip was inconclusive for a *signal* reason
    /// (not a load shed — `Withheld` clips say nothing about the callee),
    /// no probe is already outstanding, the cooldown has elapsed and the
    /// session budget is not exhausted. Each challenge draws from a
    /// deterministic per-probe seed, so a director restored from a
    /// checkpoint issues the same future challenges.
    pub fn observe(&mut self, verdict: &ClipVerdict) -> Option<ChallengeSchedule> {
        let cooling = self.cooldown > 0;
        self.cooldown = self.cooldown.saturating_sub(1);
        let wants_probe = matches!(
            &verdict.outcome,
            ClipOutcome::Inconclusive(reason) if !matches!(reason, InconclusiveReason::Withheld)
        );
        if !wants_probe
            || cooling
            || self.in_flight.is_some()
            || self.issued >= self.policy.max_probes
        {
            return None;
        }
        // Policy was validated at construction, so generation cannot
        // fail; a defensive None keeps the path panic-free regardless.
        let schedule =
            ChallengeSchedule::generate(&self.policy.challenge, probe_seed(self.seed, self.issued))
                .ok()?;
        self.issued += 1;
        self.cooldown = self.policy.cooldown_clips;
        self.in_flight = Some(schedule.clone());
        Some(schedule)
    }

    /// Verifies the response to the outstanding challenge and clears it.
    ///
    /// # Errors
    ///
    /// Returns [`ProbeError::NoProbeInFlight`] when no challenge is
    /// outstanding; verification errors leave the challenge in flight so
    /// a transient failure can be retried.
    pub fn resolve(&mut self, pair: &TracePair, recorder: &Recorder) -> Result<ProbeVerdict> {
        let schedule = self.in_flight.clone().ok_or(ProbeError::NoProbeInFlight)?;
        let verifier = ProbeVerifier::new(self.policy.verifier)?;
        let verdict = verifier.verify_with(&schedule, pair, recorder)?;
        if let Some(reason) = verdict.fail_reason {
            // Per-cause counters: a flight recorder or metrics snapshot can
            // tell a mistimed response apart from a missing one.
            recorder.add(
                match reason {
                    ProbeFailReason::WeakCorrelation => "probe.fail.weak_correlation",
                    ProbeFailReason::MissingResponse => "probe.fail.missing_response",
                    ProbeFailReason::LowHitRate => "probe.fail.low_hit_rate",
                    ProbeFailReason::LateResponse => "probe.fail.late_response",
                },
                1,
            );
        }
        self.in_flight = None;
        Ok(verdict)
    }

    /// Discards the outstanding challenge without verification (e.g. the
    /// probed clip was shed before its response completed).
    pub fn abandon(&mut self) -> Option<ChallengeSchedule> {
        self.in_flight.take()
    }
}

/// Deterministic per-probe seed derivation (splitmix-style mix of the
/// director seed and the probe ordinal).
fn probe_seed(seed: u64, ordinal: u64) -> u64 {
    let mut z = seed ^ (ordinal.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_core::stream::SessionStatus;

    fn inconclusive(clip_index: usize) -> ClipVerdict {
        ClipVerdict {
            clip_index,
            outcome: ClipOutcome::Inconclusive(InconclusiveReason::Flatline),
            status: SessionStatus::Gathering,
            retrigger: false,
        }
    }

    fn withheld(clip_index: usize) -> ClipVerdict {
        ClipVerdict {
            clip_index,
            outcome: ClipOutcome::Inconclusive(InconclusiveReason::Withheld),
            status: SessionStatus::Gathering,
            retrigger: false,
        }
    }

    #[test]
    fn zero_budget_rejected() {
        let policy = ProbePolicy {
            max_probes: 0,
            ..ProbePolicy::default()
        };
        assert!(ProbeDirector::new(policy, 1).is_err());
    }

    #[test]
    fn fires_on_inconclusive_with_cooldown_and_budget() {
        let policy = ProbePolicy {
            cooldown_clips: 2,
            max_probes: 2,
            ..ProbePolicy::default()
        };
        let mut director = ProbeDirector::new(policy, 99).unwrap();
        let first = director.observe(&inconclusive(0)).expect("first probe");
        assert_eq!(director.issued(), 1);
        assert_eq!(director.in_flight(), Some(&first));
        // Outstanding probe and cooldown both block the next request.
        assert!(director.observe(&inconclusive(1)).is_none());
        director.abandon();
        assert!(director.observe(&inconclusive(2)).is_none(), "cooling down");
        let second = director.observe(&inconclusive(3)).expect("second probe");
        assert_ne!(first, second, "each probe draws a fresh challenge");
        director.abandon();
        // Budget of two is now exhausted forever.
        for i in 4..10 {
            assert!(director.observe(&inconclusive(i)).is_none());
        }
    }

    #[test]
    fn withheld_clips_do_not_trigger() {
        let mut director = ProbeDirector::new(ProbePolicy::default(), 7).unwrap();
        assert!(director.observe(&withheld(0)).is_none());
        assert_eq!(director.issued(), 0);
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = ProbeDirector::new(ProbePolicy::default(), 123).unwrap();
        let mut b = a.clone();
        let sa = a.observe(&inconclusive(0)).unwrap();
        let sb = b.observe(&inconclusive(0)).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(a, b);
    }

    #[test]
    fn resolve_without_probe_errors() {
        let mut director = ProbeDirector::new(ProbePolicy::default(), 5).unwrap();
        let tx = lumen_dsp::Signal::new(vec![100.0; 10], 50.0).unwrap();
        let pair = TracePair {
            tx: tx.clone(),
            rx: tx,
            kind: lumen_chat::trace::ScenarioKind::Legitimate { user: 0 },
            seed: 0,
            forward_delay: 0.0,
            backward_delay: 0.0,
        };
        assert_eq!(
            director.resolve(&pair, &Recorder::null()),
            Err(ProbeError::NoProbeInFlight)
        );
    }
}
