//! Embedding a challenge into the transmitted display luma.
//!
//! Injection is deliberately *additive and upstream*: the challenge is an
//! offset on the display-luma trace the caller transmits, so the
//! reflected response is produced by the same physical chain the passive
//! detector already models — `Screen::incident` (with its black-level
//! floor and 0–255 clamp), skin reflectance, ambient mixing,
//! auto-exposure and the camera. Nothing in the receive path knows a
//! probe is running.

use crate::schedule::ChallengeSchedule;
use crate::Result;
use lumen_chat::endpoint::Caller;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_dsp::Signal;
use lumen_video::screen::Screen;

/// Embeds a [`ChallengeSchedule`] into transmitted display luma.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeInjector {
    schedule: ChallengeSchedule,
}

impl ProbeInjector {
    /// Creates an injector for one challenge.
    pub fn new(schedule: ChallengeSchedule) -> Self {
        ProbeInjector { schedule }
    }

    /// The carried challenge.
    pub fn schedule(&self) -> &ChallengeSchedule {
        &self.schedule
    }

    /// Adds the challenge waveform to `tx` over the overlapping prefix,
    /// clamping each sample to the displayable `[0, 255]` range. Ticks
    /// past the end of the schedule are transmitted unchanged.
    ///
    /// # Errors
    ///
    /// Propagates signal-construction errors.
    pub fn inject(&self, tx: &Signal) -> Result<Signal> {
        let waveform = self.schedule.waveform();
        let samples: Vec<f64> = tx
            .samples()
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let offset = waveform.get(i).copied().unwrap_or(0.0);
                (s + offset).clamp(0.0, 255.0)
            })
            .collect();
        Ok(Signal::new(samples, tx.sample_rate())?)
    }

    /// Attaches the challenge to a [`Caller`] as a display-luma overlay,
    /// so every trace the caller transmits carries the probe.
    #[must_use]
    pub fn armed_caller(&self, caller: Caller) -> Caller {
        caller.with_overlay(self.schedule.waveform())
    }

    /// Attaches the challenge to every caller a [`ScenarioBuilder`]
    /// generates — the probe then rides through the full duplex session
    /// simulation (network, callee behaviour, camera) for any scenario
    /// kind.
    #[must_use]
    pub fn armed_scenario(&self, builder: ScenarioBuilder) -> ScenarioBuilder {
        builder.with_tx_overlay(self.schedule.waveform())
    }

    /// Predicted incident-illuminance swing of a full challenge step
    /// (`-amplitude → +amplitude`) on `screen` at operating point
    /// `base_luma` — the physical signal the face must reflect. Probes on
    /// near-black or near-white content are partially swallowed by the
    /// display clamp; callers can check this before spending a probe.
    pub fn predicted_incident_swing(&self, screen: &Screen, base_luma: f64) -> f64 {
        screen.incident_swing(base_luma, self.schedule.amplitude)
            - screen.incident_swing(base_luma, -self.schedule.amplitude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ProbeConfig;

    fn schedule() -> ChallengeSchedule {
        ChallengeSchedule::generate(&ProbeConfig::default(), 11).unwrap()
    }

    #[test]
    fn inject_adds_waveform_and_clamps() {
        let s = schedule();
        let injector = ProbeInjector::new(s.clone());
        let n = s.total_ticks() + 10;
        let tx = Signal::new(vec![120.0; n], s.sample_rate).unwrap();
        let probed = injector.inject(&tx).unwrap();
        let w = s.waveform();
        for (i, &v) in probed.samples().iter().enumerate() {
            let expect = (120.0 + w.get(i).copied().unwrap_or(0.0)).clamp(0.0, 255.0);
            assert!((v - expect).abs() < 1e-12);
        }
        // Near white the sum clamps instead of exceeding the range.
        let bright = Signal::new(vec![253.0; n], s.sample_rate).unwrap();
        let clamped = injector.inject(&bright).unwrap();
        assert!(clamped.samples().iter().all(|&v| v <= 255.0));
    }

    #[test]
    fn armed_caller_carries_probe() {
        let s = schedule();
        let injector = ProbeInjector::new(s.clone());
        let caller = injector.armed_caller(Caller::new(
            lumen_video::content::MeteringScript::constant(100.0, 8.0).unwrap(),
        ));
        assert_eq!(caller.overlay.as_deref(), Some(&s.waveform()[..]));
    }

    #[test]
    fn predicted_swing_shrinks_off_midrange() {
        let injector = ProbeInjector::new(schedule());
        let screen = Screen::default();
        let mid = injector.predicted_incident_swing(&screen, 128.0);
        let dark = injector.predicted_incident_swing(&screen, 2.0);
        assert!(mid > 0.0);
        assert!(dark < mid, "dark content must swallow part of the probe");
    }
}
