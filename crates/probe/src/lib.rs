//! Active luminance challenge–response probing.
//!
//! The paper's defense is *passive*: it correlates the callee's
//! face-reflected luminance with whatever the caller's video happens to
//! emit. When the caller's content is static — a frozen slide, a dark
//! talking head — the transmitted trace carries no usable luminance
//! changes and the quality gate rightly abstains. This crate closes that
//! gap the way Face Flashing (Tang et al.) does: the verifier *creates*
//! the luminance evidence it needs by embedding a small pseudorandom
//! challenge into its own transmitted video and checking that the
//! challenge's reflection comes back from the callee's face at the
//! physically possible time.
//!
//! The subsystem has four parts:
//!
//! 1. [`schedule::ChallengeSchedule`] — a seeded, bounded-amplitude,
//!    multi-level luminance sequence with randomized segment timing. The
//!    amplitude is capped at
//!    [`schedule::MAX_IMPERCEPTIBLE_AMPLITUDE`] grey levels (< 5 % of
//!    full scale) so the challenge is invisible to the remote human but
//!    plainly visible to a matched filter that knows the seed.
//! 2. [`inject::ProbeInjector`] — embeds the challenge into the
//!    transmitted display-luma trace. The reflected response then flows
//!    through the *existing* physical path: `Screen::incident`, skin
//!    reflectance, auto-exposure and the camera model of `lumen-video`.
//! 3. [`verify::ProbeVerifier`] — a matched-filter/lag-search verifier on
//!    `lumen_dsp::xcorr::best_lag`, producing a typed
//!    [`verify::ProbeVerdict`] (correlation, response gain, lag beyond
//!    the known network round trip, per-segment hit rate, confidence).
//!    An adaptive forger can replicate the reflection perfectly, but
//!    only *after* observing the challenge — its response is late, and
//!    lateness beyond the round-trip bound (Sec. VIII-J's 20 ms forgery
//!    budget) is exactly what the verifier rejects.
//! 4. [`director::ProbeDirector`] — fusion policy: probes fire on demand
//!    when the passive path reports an inconclusive clip, under a
//!    cooldown and a per-session budget, and their verdicts enter the
//!    passive 0.7·D vote history via
//!    `StreamingDetector::record_probe_vote`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod error;

pub mod director;
pub mod inject;
pub mod schedule;
pub mod verify;

pub use director::{ProbeDirector, ProbePolicy};
pub use error::ProbeError;
pub use inject::ProbeInjector;
pub use schedule::{ChallengeSchedule, ChallengeSegment, ProbeConfig, MAX_IMPERCEPTIBLE_AMPLITUDE};
pub use verify::{ProbeDecision, ProbeFailReason, ProbeVerdict, ProbeVerifier, VerifierConfig};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ProbeError>;
