//! Seeded pseudorandom luminance challenge schedules.
//!
//! A challenge is a piecewise-constant display-luma *offset* sequence:
//! a handful of segments, each holding one of four levels
//! (±amplitude, ±amplitude/2) for a randomized number of ticks.
//! Randomized multi-level structure matters for security: a replayed or
//! precomputed response cannot match a sequence the verifier draws fresh
//! from a secret seed, and the randomized segment timing stops an
//! attacker from predicting transition instants. Bounded amplitude
//! matters for usability: the offset stays far below what a human
//! notices on moving video content, while a matched filter that knows
//! the seed integrates the reflection across the whole schedule.

use crate::{ProbeError, Result};
use lumen_chat::channel::ChannelConfig;
use lumen_chat::session::SessionConfig;
use lumen_video::noise::substream;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Upper bound on the challenge amplitude, in display grey levels.
///
/// 12 grey levels is < 5 % of the 0–255 range — on the mid-grey operating
/// points of real video content this is a Weber contrast well under the
/// ~10 % step that casual viewers notice on moving imagery, and the
/// schedule changes level only every few hundred milliseconds, far from
/// the flicker-fusion regime. Schedules refuse to generate above it.
pub const MAX_IMPERCEPTIBLE_AMPLITUDE: f64 = 12.0;

/// Generation parameters for a challenge schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeConfig {
    /// Peak display-luma offset in grey levels, in
    /// `(0, MAX_IMPERCEPTIBLE_AMPLITUDE]`.
    pub amplitude: f64,
    /// Number of constant-level segments (≥ 2).
    pub segments: usize,
    /// Minimum segment length in ticks (≥ 2).
    pub min_segment_ticks: usize,
    /// Maximum segment length in ticks (≥ `min_segment_ticks`).
    pub max_segment_ticks: usize,
    /// Probe sampling rate in Hz. The default of 50 Hz makes one tick
    /// exactly the paper's 20 ms adaptive-forgery budget (Sec. VIII-J),
    /// so the verifier's lag search operates at the granularity of the
    /// bound it enforces.
    pub sample_rate: f64,
}

impl Default for ProbeConfig {
    // Calibrated empirically against the synth pipeline: sweeping
    // amplitude × segment count × seeds, 16 segments at 9 grey levels is
    // the smallest schedule whose live-face correlation distribution
    // clears the chance-alignment distribution of challenge-blind
    // attackers with zero overlap across 60 seeds (~10 s per probe,
    // within one passive clip).
    fn default() -> Self {
        ProbeConfig {
            amplitude: 9.0,
            segments: 16,
            min_segment_ticks: 20,
            max_segment_ticks: 45,
            sample_rate: 50.0,
        }
    }
}

impl ProbeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ProbeError::InvalidConfig`] for an amplitude outside
    /// `(0, MAX_IMPERCEPTIBLE_AMPLITUDE]`, fewer than two segments, a
    /// degenerate tick range or a non-positive sample rate.
    pub fn validate(&self) -> Result<()> {
        if !(self.amplitude.is_finite()
            && self.amplitude > 0.0
            && self.amplitude <= MAX_IMPERCEPTIBLE_AMPLITUDE)
        {
            return Err(ProbeError::invalid_config(
                "amplitude",
                format!("must lie in (0, {MAX_IMPERCEPTIBLE_AMPLITUDE}] grey levels"),
            ));
        }
        if self.segments < 2 {
            return Err(ProbeError::invalid_config(
                "segments",
                "a challenge needs at least two segments",
            ));
        }
        if self.min_segment_ticks < 2 || self.max_segment_ticks < self.min_segment_ticks {
            return Err(ProbeError::invalid_config(
                "segment_ticks",
                "need 2 <= min_segment_ticks <= max_segment_ticks",
            ));
        }
        if !(self.sample_rate.is_finite() && self.sample_rate > 0.0) {
            return Err(ProbeError::invalid_config(
                "sample_rate",
                "must be finite and positive",
            ));
        }
        Ok(())
    }

    /// Longest possible schedule duration in seconds.
    pub fn max_duration(&self) -> f64 {
        (self.segments * self.max_segment_ticks) as f64 / self.sample_rate
    }

    /// A channel as seen through a probe-side jitter buffer.
    ///
    /// Probing samples at [`ProbeConfig::sample_rate`] (50 Hz default),
    /// where raw transport jitter of ±15 ms spans whole display ticks and
    /// would hold a third of the frames. Real clients do not display raw
    /// arrivals: a jitter buffer trades a *fixed* extra delay for smooth
    /// playout. Modeled here as `base_delay + 3σ` of added buffering with
    /// the residual jitter shrunk to `σ/4`. The added delay is part of
    /// `base_delay` and therefore part of the round trip the verifier
    /// already knows — buffering hides nothing from the timing check.
    pub fn jitter_buffered(channel: ChannelConfig) -> ChannelConfig {
        ChannelConfig {
            base_delay: channel.base_delay + 3.0 * channel.jitter,
            jitter: channel.jitter / 4.0,
            drop_prob: channel.drop_prob,
        }
    }

    /// Session parameters for one probe round on top of `base`: the
    /// probe's sampling rate, a duration covering the longest schedule
    /// plus `margin` seconds of response tail, and jitter-buffered
    /// versions of both network directions (faults are kept).
    pub fn session_config(&self, margin: f64, base: &SessionConfig) -> SessionConfig {
        SessionConfig {
            duration: self.max_duration() + margin.max(0.0),
            sample_rate: self.sample_rate,
            forward: Self::jitter_buffered(base.forward),
            backward: Self::jitter_buffered(base.backward),
            faults: base.faults,
        }
    }
}

/// One constant-level stretch of a challenge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChallengeSegment {
    /// Display-luma offset held during the segment, grey levels.
    pub level: f64,
    /// Segment length in ticks.
    pub ticks: usize,
}

/// A complete seeded challenge: the verifier keeps it secret until the
/// response has been judged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChallengeSchedule {
    /// The seed the schedule was drawn from (for reproduction).
    pub seed: u64,
    /// Probe sampling rate in Hz.
    pub sample_rate: f64,
    /// Peak offset amplitude in grey levels.
    pub amplitude: f64,
    /// The segment sequence. Consecutive segments always hold *different*
    /// levels, so every boundary is a guaranteed luminance transition the
    /// matched filter can lock onto.
    pub segments: Vec<ChallengeSegment>,
}

/// Substream label reserved for challenge-schedule randomness. Labels are
/// allocated workspace-wide in SUBSTREAMS.md; the challenge draw must
/// never share a stream with the synthesis-side noise, or a probe-aware
/// forger could predict upcoming challenges from observed motion.
const CHALLENGE_SUBSTREAM: u64 = 91;

impl ChallengeSchedule {
    /// Draws a schedule from `config` and `seed`. Identical inputs yield
    /// byte-identical schedules.
    ///
    /// # Errors
    ///
    /// Propagates [`ProbeConfig::validate`] failures.
    pub fn generate(config: &ProbeConfig, seed: u64) -> Result<ChallengeSchedule> {
        config.validate()?;
        let levels = [
            config.amplitude,
            config.amplitude / 2.0,
            -config.amplitude / 2.0,
            -config.amplitude,
        ];
        let mut rng = substream(seed, CHALLENGE_SUBSTREAM);
        let mut segments = Vec::with_capacity(config.segments);
        let mut idx = rng.gen_range(0..levels.len());
        for _ in 0..config.segments {
            let ticks = rng.gen_range(config.min_segment_ticks..=config.max_segment_ticks);
            segments.push(ChallengeSegment {
                level: levels[idx],
                ticks,
            });
            // Next level is drawn from the three *other* levels, so the
            // draw is bounded and the transition guaranteed.
            idx = (idx + 1 + rng.gen_range(0..levels.len() - 1)) % levels.len();
        }
        Ok(ChallengeSchedule {
            seed,
            sample_rate: config.sample_rate,
            amplitude: config.amplitude,
            segments,
        })
    }

    /// Total schedule length in ticks.
    pub fn total_ticks(&self) -> usize {
        self.segments.iter().map(|s| s.ticks).sum()
    }

    /// Schedule duration in seconds.
    pub fn duration(&self) -> f64 {
        self.total_ticks() as f64 / self.sample_rate
    }

    /// The per-tick display-luma offset sequence (the challenge waveform).
    pub fn waveform(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.total_ticks());
        for segment in &self.segments {
            out.extend(std::iter::repeat_n(segment.level, segment.ticks));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validates() {
        assert!(ProbeConfig::default().validate().is_ok());
        let too_loud = ProbeConfig {
            amplitude: MAX_IMPERCEPTIBLE_AMPLITUDE + 1.0,
            ..ProbeConfig::default()
        };
        assert!(too_loud.validate().is_err());
        let one_segment = ProbeConfig {
            segments: 1,
            ..ProbeConfig::default()
        };
        assert!(one_segment.validate().is_err());
        let bad_ticks = ProbeConfig {
            min_segment_ticks: 10,
            max_segment_ticks: 5,
            ..ProbeConfig::default()
        };
        assert!(bad_ticks.validate().is_err());
    }

    #[test]
    fn same_seed_same_schedule() {
        let config = ProbeConfig::default();
        let a = ChallengeSchedule::generate(&config, 42).unwrap();
        let b = ChallengeSchedule::generate(&config, 42).unwrap();
        assert_eq!(a, b);
        let c = ChallengeSchedule::generate(&config, 43).unwrap();
        assert_ne!(a, c, "different seeds must draw different schedules");
    }

    #[test]
    fn schedule_respects_bounds() {
        let config = ProbeConfig::default();
        let s = ChallengeSchedule::generate(&config, 7).unwrap();
        assert_eq!(s.segments.len(), config.segments);
        for seg in &s.segments {
            assert!(seg.level.abs() <= config.amplitude);
            assert!(seg.level.abs() >= config.amplitude / 2.0 - 1e-12);
            assert!((config.min_segment_ticks..=config.max_segment_ticks).contains(&seg.ticks));
        }
        // Every boundary is a transition.
        for pair in s.segments.windows(2) {
            assert!(
                (pair[0].level - pair[1].level).abs() > 1e-12,
                "consecutive segments share a level"
            );
        }
        assert_eq!(s.waveform().len(), s.total_ticks());
    }

    #[test]
    fn waveform_matches_segments() {
        let s = ChallengeSchedule::generate(&ProbeConfig::default(), 9).unwrap();
        let w = s.waveform();
        let mut at = 0usize;
        for seg in &s.segments {
            assert!(w[at..at + seg.ticks]
                .iter()
                .all(|&v| (v - seg.level).abs() < 1e-12));
            at += seg.ticks;
        }
    }
}
