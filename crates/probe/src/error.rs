//! Typed errors for the probing subsystem.

use std::fmt;

/// Errors produced by challenge generation, injection or verification.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProbeError {
    /// A configuration field is outside its valid domain.
    InvalidConfig {
        /// Field name.
        field: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// A probe resolution was requested with no challenge outstanding.
    NoProbeInFlight,
    /// Propagated signal-processing error.
    Dsp(lumen_dsp::DspError),
}

impl ProbeError {
    /// Convenience constructor for [`ProbeError::InvalidConfig`].
    pub fn invalid_config(field: &'static str, reason: impl Into<String>) -> Self {
        ProbeError::InvalidConfig {
            field,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ProbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeError::InvalidConfig { field, reason } => {
                write!(f, "invalid probe config `{field}`: {reason}")
            }
            ProbeError::NoProbeInFlight => write!(f, "no probe in flight"),
            ProbeError::Dsp(e) => write!(f, "probe signal processing failed: {e}"),
        }
    }
}

impl std::error::Error for ProbeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProbeError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lumen_dsp::DspError> for ProbeError {
    fn from(e: lumen_dsp::DspError) -> Self {
        ProbeError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(ProbeError::invalid_config("amplitude", "too large")
            .to_string()
            .contains("amplitude"));
        assert!(ProbeError::NoProbeInFlight.to_string().contains("flight"));
        use std::error::Error;
        let e = ProbeError::from(lumen_dsp::DspError::EmptySignal);
        assert!(e.source().is_some());
    }
}
