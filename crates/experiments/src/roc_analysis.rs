//! ROC analysis (extension): threshold-free separability of the LOF scores
//! between legitimate users and reenactment attacks, per volunteer and
//! pooled, with AUC.

use crate::runner::{parallel_map, render_table, user_features};
use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_core::dataset::split_train_test;
use lumen_core::detector::Detector;
use lumen_core::roc::{roc_curve, RocCurve};
use lumen_core::Config;
use serde::{Deserialize, Serialize};

/// Options for the ROC analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocOpts {
    /// Volunteers.
    pub users: usize,
    /// Clips per role per volunteer.
    pub clips: usize,
    /// Training instances per volunteer.
    pub train_count: usize,
}

impl Default for RocOpts {
    fn default() -> Self {
        RocOpts {
            users: 10,
            clips: 40,
            train_count: 20,
        }
    }
}

/// The ROC-analysis result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocResult {
    /// AUC per volunteer.
    pub per_user_auc: Vec<(usize, f64)>,
    /// Pooled ROC over all volunteers' scores.
    pub pooled: RocCurve,
}

impl RocResult {
    /// Renders the result as an aligned table plus the pooled curve sketch.
    pub fn print(&self) -> String {
        let mut rows: Vec<Vec<String>> = self
            .per_user_auc
            .iter()
            .map(|(u, auc)| vec![format!("user-{}", u + 1), format!("{auc:.3}")])
            .collect();
        rows.push(vec!["pooled".into(), format!("{:.3}", self.pooled.auc)]);
        let mut out = render_table(
            "ROC analysis — LOF score separability",
            &["user", "AUC"],
            &rows,
        );
        out.push_str("pooled ROC (FPR → TPR): ");
        for target in [0.01, 0.02, 0.05, 0.1, 0.2] {
            // The last point at or below the target FPR.
            let tpr = self
                .pooled
                .points
                .iter()
                .filter(|p| p.fpr <= target + 1e-12)
                .map(|p| p.tpr)
                .fold(0.0f64, f64::max);
            out.push_str(&format!("{:.0}%→{:.0}%  ", target * 100.0, tpr * 100.0));
        }
        out.push('\n');
        out
    }
}

/// Runs the ROC analysis.
///
/// # Errors
///
/// Propagates simulation and scoring errors.
pub fn run(opts: RocOpts) -> ExpResult<RocResult> {
    let builder = ScenarioBuilder::default();
    let config = Config::default();
    let users: Vec<usize> = (0..opts.users).collect();
    let feature_sets = parallel_map(users, |&u| user_features(&builder, u, opts.clips, &config))?;

    let mut per_user_auc = Vec::new();
    let mut pooled_legit = Vec::new();
    let mut pooled_attack = Vec::new();
    for (u, (legit, attack)) in feature_sets.iter().enumerate() {
        let (train, test) = split_train_test(legit, opts.train_count, 500 + u as u64);
        let det = Detector::train(&train, config)?;
        let legit_scores: Vec<f64> = test
            .iter()
            .map(|f| det.score(f))
            .collect::<Result<_, _>>()?;
        let attack_scores: Vec<f64> = attack
            .iter()
            .map(|f| det.score(f))
            .collect::<Result<_, _>>()?;
        let roc = roc_curve(&legit_scores, &attack_scores)?;
        per_user_auc.push((u, roc.auc));
        pooled_legit.extend(legit_scores);
        pooled_attack.extend(attack_scores);
    }
    let pooled = roc_curve(&pooled_legit, &pooled_attack)?;
    Ok(RocResult {
        per_user_auc,
        pooled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_is_high_for_the_detector() {
        let r = run(RocOpts {
            users: 3,
            clips: 16,
            train_count: 10,
        })
        .unwrap();
        assert_eq!(r.per_user_auc.len(), 3);
        assert!(r.pooled.auc > 0.9, "pooled AUC {}", r.pooled.auc);
    }
}
