//! Baseline comparison (extension; motivated by Sec. VII-A's argument
//! against the naive timestamp check): the full LOF detector versus the
//! naive timestamp-matching check and a fixed-correlation threshold, across
//! every attacker model in the workspace.

use crate::runner::{pct, render_table};
use crate::ExpResult;
use lumen_attack::baseline::{
    BaselineDetector, CorrelationThresholdDetector, NaiveTimestampDetector,
};
use lumen_chat::scenario::ScenarioBuilder;
use lumen_chat::trace::TracePair;
use lumen_core::detector::Detector;
use lumen_core::Config;
use serde::{Deserialize, Serialize};

/// Options for the baseline comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineOpts {
    /// The protected volunteer.
    pub user: usize,
    /// Clips per condition.
    pub clips: usize,
    /// LOF training clips.
    pub train_clips: usize,
    /// Adaptive forger delay used in its column, seconds.
    pub adaptive_delay: f64,
}

impl Default for BaselineOpts {
    fn default() -> Self {
        BaselineOpts {
            user: 0,
            clips: 30,
            train_clips: 20,
            adaptive_delay: 1.5,
        }
    }
}

/// One detector's row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineRow {
    /// Detector name.
    pub detector: String,
    /// Acceptance rate on legitimate clips.
    pub tar: f64,
    /// Rejection rate vs face reenactment.
    pub trr_reenactment: f64,
    /// Rejection rate vs media replay.
    pub trr_replay: f64,
    /// Rejection rate vs the adaptive forger (at the configured delay).
    pub trr_adaptive: f64,
}

/// The baseline-comparison result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineResult {
    /// One row per detector.
    pub rows: Vec<BaselineRow>,
}

impl BaselineResult {
    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.detector.clone(),
                    pct(r.tar),
                    pct(r.trr_reenactment),
                    pct(r.trr_replay),
                    pct(r.trr_adaptive),
                ]
            })
            .collect();
        render_table(
            "Baselines — LOF detector vs naive checks (TRR per attack type)",
            &["detector", "TAR", "reenact", "replay", "adaptive"],
            &rows,
        )
    }
}

enum AnyDetector<'a> {
    Lumen(&'a Detector),
    Baseline(&'a dyn BaselineDetector),
}

impl AnyDetector<'_> {
    fn accepts(&self, pair: &TracePair) -> ExpResult<bool> {
        match self {
            AnyDetector::Lumen(d) => Ok(d.detect(pair)?.accepted),
            AnyDetector::Baseline(d) => Ok(d.accepts(&pair.tx, &pair.rx)?),
        }
    }
}

/// Runs the baseline comparison.
///
/// # Errors
///
/// Propagates simulation and detection errors.
pub fn run(opts: BaselineOpts) -> ExpResult<BaselineResult> {
    let chats = ScenarioBuilder::default();
    let config = Config::default();
    let training: Vec<TracePair> = (0..opts.train_clips as u64)
        .map(|i| chats.legitimate(opts.user, 40_000 + i))
        .collect::<Result<_, _>>()?;
    let lumen = Detector::train_from_traces(&training, config)?;
    let naive = NaiveTimestampDetector::default();
    let corr = CorrelationThresholdDetector::default();

    let legit: Vec<TracePair> = (0..opts.clips as u64)
        .map(|i| chats.legitimate(opts.user, 41_000 + i))
        .collect::<Result<_, _>>()?;
    let reenact: Vec<TracePair> = (0..opts.clips as u64)
        .map(|i| chats.reenactment(opts.user, 42_000 + i))
        .collect::<Result<_, _>>()?;
    let replay: Vec<TracePair> = (0..opts.clips as u64)
        .map(|i| chats.replay(opts.user, 43_000 + i))
        .collect::<Result<_, _>>()?;
    let adaptive: Vec<TracePair> = (0..opts.clips as u64)
        .map(|i| chats.adaptive(opts.user, opts.adaptive_delay, 44_000 + i))
        .collect::<Result<_, _>>()?;

    let mut rows = Vec::new();
    for (name, det) in [
        ("lumen-lof", AnyDetector::Lumen(&lumen)),
        ("naive-timestamp", AnyDetector::Baseline(&naive)),
        ("fixed-correlation", AnyDetector::Baseline(&corr)),
    ] {
        let rate = |pairs: &[TracePair], want_accept: bool| -> ExpResult<f64> {
            let mut hits = 0usize;
            for p in pairs {
                if det.accepts(p)? == want_accept {
                    hits += 1;
                }
            }
            Ok(hits as f64 / pairs.len().max(1) as f64)
        };
        rows.push(BaselineRow {
            detector: name.to_string(),
            tar: rate(&legit, true)?,
            trr_reenactment: rate(&reenact, false)?,
            trr_replay: rate(&replay, false)?,
            trr_adaptive: rate(&adaptive, false)?,
        });
    }
    Ok(BaselineResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lof_beats_naive_on_security() {
        let r = run(BaselineOpts {
            user: 0,
            clips: 14,
            train_clips: 12,
            adaptive_delay: 1.5,
        })
        .unwrap();
        let lumen = &r.rows[0];
        let naive = &r.rows[1];
        // The naive timestamp check must be weaker against at least one
        // attack class while Lumen holds across all three.
        let lumen_min = lumen
            .trr_reenactment
            .min(lumen.trr_replay)
            .min(lumen.trr_adaptive);
        let naive_min = naive
            .trr_reenactment
            .min(naive.trr_replay)
            .min(naive.trr_adaptive);
        assert!(
            lumen_min > naive_min,
            "lumen worst-case TRR {lumen_min} not above naive {naive_min}"
        );
    }
}
