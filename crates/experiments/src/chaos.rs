//! Fleet chaos (durability extension): kill and restore the supervised
//! runtime mid-traffic, under seeded storage faults and rotting
//! checkpoints, and prove the recovery path never lies.
//!
//! The harness drives a fleet of sessions through one
//! [`lumen_serve::Supervisor`], checkpointing periodically into a
//! [`CheckpointStore`] over a fault-injected [`MemStorage`]: writes fail
//! loudly (exercising the bounded-backoff retry), tear, or flip a bit
//! (exercising CRC detection and generation fallback), and a seeded
//! [`ChaosInjector`] rots individual session entries *before* framing
//! (exercising per-session quarantine), poisons clips into the detection
//! error path, and stalls the clock. At each of `cycles` kill points the
//! supervisor is dropped — a crash — and rebuilt from the newest valid
//! stored generation via [`Supervisor::restore_from_store`]; the harness
//! rewinds its feed to the restored position and re-serves the window.
//!
//! Three built-in checks make the run falsifiable:
//!
//! * **verdict match** — every session that was never quarantined ends
//!   with a verdict stream byte-identical to an uninterrupted reference
//!   run under the *same* chaos schedule (all fault decisions are pure
//!   hashes of stable coordinates, so the two runs see identical faults);
//! * **zero silent mis-restores** — a re-served clip must reproduce the
//!   verdict recorded before the crash, and a sabotaged (torn or
//!   bit-flipped) record must never be the generation a restore loads;
//! * **quarantine exactness** — the set of sessions quarantined at each
//!   restore equals exactly the set whose entries the injector corrupted
//!   in the restored generation: nothing corrupt slips through, nothing
//!   healthy is discarded.

use crate::runner::{pct, render_table};
use crate::ExpResult;
use lumen_chat::fault::{BurstLoss, FaultPlan};
use lumen_chat::scenario::ScenarioBuilder;
use lumen_chat::trace::TracePair;
use lumen_core::detector::Detector;
use lumen_core::stream::{ClipVerdict, StreamingDetector};
use lumen_core::Config;
use lumen_obs::Recorder;
use lumen_serve::store::entry_name;
use lumen_serve::{
    ChaosInjector, ChaosPlan, CheckpointStore, CommitOutcome, MemStorage, ServeConfig, ServeError,
    SessionEvent, SessionEventKind, StorageFaults, StoreConfig, StoreStats, Supervisor,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Options for the chaos run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosOpts {
    /// Concurrent sessions in the fleet.
    pub sessions: usize,
    /// Clips each session streams.
    pub clips: usize,
    /// Clean training instances for the shared enrolment.
    pub train_count: usize,
    /// Kill/restore cycles, spread evenly across the run.
    pub cycles: usize,
    /// Feed steps between checkpoint commits.
    pub checkpoint_every_steps: usize,
    /// Per-session pending-clip queue depth.
    pub queue_clips: usize,
    /// Detections allowed per budget period (kept generous: contention is
    /// the overload experiment's subject, durability is this one's).
    pub budget_clips: u64,
    /// Budget period length, ticks.
    pub budget_period_ticks: u64,
    /// Queued-clip deadline, ticks.
    pub deadline_ticks: u64,
    /// Bad-state loss probability of the transport-level burst plan
    /// (zero = clean link).
    pub burst_loss: f64,
    /// The runtime chaos plan (storage faults, snapshot rot, poisoned
    /// clips, stalls).
    pub plan: ChaosPlan,
    /// Checkpoint-store retention and retry policy.
    pub store: StoreConfig,
}

impl Default for ChaosOpts {
    fn default() -> Self {
        ChaosOpts {
            sessions: 4,
            clips: 3,
            train_count: 10,
            cycles: 3,
            checkpoint_every_steps: 40,
            queue_clips: 4,
            budget_clips: 16,
            budget_period_ticks: 30,
            deadline_ticks: 600,
            burst_loss: 0.5,
            plan: ChaosPlan {
                storage: StorageFaults {
                    write_fail: 0.25,
                    torn_write: 0.3,
                    bit_flip: 0.3,
                },
                poison_clip: 0.08,
                stall: 0.05,
                stall_ticks: 3,
                corrupt_session: 0.25,
                ..ChaosPlan::seeded(0x5EED)
            },
            store: StoreConfig::default(),
        }
    }
}

/// One kill/restore cycle's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosCycle {
    /// The feed step the crash landed on.
    pub kill_step: usize,
    /// The generation the restore loaded (`None` = no valid generation
    /// survived; the fleet cold-started).
    pub restored_generation: Option<u64>,
    /// Newer generations rejected (quarantined) before the loaded one.
    pub fallback_depth: usize,
    /// Corrupt generations quarantined by the store during this load.
    pub generation_quarantines: usize,
    /// Sessions restored intact.
    pub restored_sessions: usize,
    /// Sessions quarantined by per-session validation and re-admitted
    /// fresh.
    pub quarantined_sessions: usize,
    /// Feed steps re-served between the restored checkpoint and the
    /// crash (the re-serve window).
    pub reserve_steps: usize,
    /// Clock ticks of progress lost to the crash (kill tick minus the
    /// restored checkpoint's tick).
    pub recovery_ticks: u64,
}

/// The chaos result: per-cycle recovery rows, the three integrity
/// verdicts, and durability counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosResult {
    /// One row per kill/restore cycle.
    pub cycles: Vec<ChaosCycle>,
    /// Clips offered (final supervisor accounting, replay collapsed).
    pub offered: u64,
    /// Clips served.
    pub served: u64,
    /// Clips shed (every shed counted under a reason).
    pub shed: u64,
    /// Quarantined session-restores over all session-restores.
    pub quarantine_fraction: f64,
    /// Restores that found no valid generation at all.
    pub cold_starts: usize,
    /// Re-served clips whose verdict differed from the pre-crash record
    /// (must be zero).
    pub misrestores: u64,
    /// Never-quarantined sessions ended byte-identical to the
    /// uninterrupted reference run.
    pub verdict_match_ok: bool,
    /// No restore ever loaded a generation the storage had silently
    /// damaged.
    pub sabotage_detection_ok: bool,
    /// Each restore quarantined exactly the sessions whose entries were
    /// corrupted in the loaded generation.
    pub quarantine_exact_ok: bool,
    /// All of the above, plus zero mis-restores and all cycles completed.
    pub integrity_ok: bool,
    /// Checkpoint-store counters summed across crash incarnations.
    pub store: StoreStats,
    /// Records the storage silently damaged at write time (all of which
    /// must have been detected downstream).
    pub sabotaged_writes: usize,
    /// Selected lumen-obs counters accumulated over the chaos run.
    pub counters: Vec<(String, u64)>,
}

impl ChaosResult {
    /// Renders the result as an aligned table plus a verdict footer.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .cycles
            .iter()
            .enumerate()
            .map(|(i, c)| {
                vec![
                    (i + 1).to_string(),
                    c.kill_step.to_string(),
                    c.restored_generation
                        .map_or("cold".to_string(), |g| g.to_string()),
                    c.fallback_depth.to_string(),
                    c.generation_quarantines.to_string(),
                    c.restored_sessions.to_string(),
                    c.quarantined_sessions.to_string(),
                    c.reserve_steps.to_string(),
                    c.recovery_ticks.to_string(),
                ]
            })
            .collect();
        let mut out = render_table(
            "Chaos — kill/restore recovery under storage faults and snapshot rot",
            &[
                "cycle",
                "kill step",
                "gen",
                "fallback",
                "gen quar",
                "restored",
                "quarantined",
                "re-serve",
                "rec ticks",
            ],
            &rows,
        );
        out.push('\n');
        out.push_str(&format!(
            "offered {} served {} shed {}; quarantine fraction {}; cold starts {}\n",
            self.offered,
            self.served,
            self.shed,
            pct(self.quarantine_fraction),
            self.cold_starts,
        ));
        out.push_str(&format!(
            "store: commits {} write-failures {} retries {} gave-up {} quarantined {} \
             sabotaged-writes {}\n",
            self.store.commits,
            self.store.write_failures,
            self.store.retries,
            self.store.gave_up,
            self.store.quarantined,
            self.sabotaged_writes,
        ));
        out.push_str(&format!(
            "verdict match: {}; sabotage detection: {}; quarantine exactness: {}; \
             mis-restores: {}\n",
            ok(self.verdict_match_ok),
            ok(self.sabotage_detection_ok),
            ok(self.quarantine_exact_ok),
            self.misrestores,
        ));
        out.push_str(&format!("chaos integrity: {}\n", ok(self.integrity_ok)));
        for (name, value) in &self.counters {
            out.push_str(&format!("{name}: {value}\n"));
        }
        out
    }
}

fn ok(flag: bool) -> String {
    if flag { "ok" } else { "FAIL" }.to_string()
}

/// What the harness remembers about one committed generation: where to
/// resume the feed, the clock at the snapshot, the id→workload mapping,
/// and which session entries the injector corrupted in the record.
#[derive(Debug, Clone)]
struct GenMeta {
    resume_step: usize,
    tick: u64,
    mapping: BTreeMap<u64, usize>,
    corrupted: Vec<u64>,
}

/// Per-session verdict books plus the mis-restore tallies they feed.
#[derive(Default)]
struct VerdictBook {
    books: Vec<Vec<ClipVerdict>>,
    misrestores: u64,
    holes: u64,
}

impl VerdictBook {
    fn new(sessions: usize) -> Self {
        VerdictBook {
            books: vec![Vec::new(); sessions],
            misrestores: 0,
            holes: 0,
        }
    }

    /// Absorbs drained events. A verdict below the book's length is a
    /// re-serve and must reproduce the recorded verdict exactly; above it
    /// is a hole (clips skipped silently). Degraded (once-quarantined)
    /// sessions are excluded — their replay alignment is forfeit by
    /// design.
    fn absorb(
        &mut self,
        events: &[SessionEvent],
        mapping: &BTreeMap<u64, usize>,
        degraded: &[bool],
    ) {
        for event in events {
            let SessionEventKind::Verdict(v) = &event.kind else {
                continue;
            };
            let Some(&si) = mapping.get(&event.session) else {
                continue;
            };
            if degraded[si] {
                continue;
            }
            let book = &mut self.books[si];
            match v.clip_index.cmp(&book.len()) {
                std::cmp::Ordering::Less => {
                    if book[v.clip_index] != *v {
                        self.misrestores += 1;
                    }
                }
                std::cmp::Ordering::Equal => book.push(v.clone()),
                std::cmp::Ordering::Greater => self.holes += 1,
            }
        }
    }
}

/// Runs the chaos experiment.
///
/// # Errors
///
/// Propagates scenario, training, serving and checkpoint-store errors;
/// injected faults are never errors (they are the subject).
pub fn run(opts: ChaosOpts) -> ExpResult<ChaosResult> {
    let injector = ChaosInjector::new(opts.plan)?;
    let (recorder, sink) = Recorder::in_memory();
    let faults = if opts.burst_loss > 0.0 {
        FaultPlan {
            burst: BurstLoss::bursty(0.08, 6.0, opts.burst_loss),
            ..FaultPlan::none()
        }
    } else {
        FaultPlan::none()
    };
    let chats = ScenarioBuilder::default().with_faults(faults);
    let clean = ScenarioBuilder::default();
    let training: Vec<TracePair> = (0..opts.train_count)
        .map(|i| clean.legitimate(0, 95_000 + i as u64))
        .collect::<Result<_, _>>()?;
    let detector = Detector::train_from_traces(&training, Config::default())?;

    // Per-session workloads, flattened to one sample array per session so
    // the whole fleet feeds in lockstep; reused identically by the
    // reference run and the chaos run.
    let mut feeds: Vec<(Vec<f64>, Vec<f64>)> = Vec::with_capacity(opts.sessions);
    for si in 0..opts.sessions {
        let mut tx = Vec::new();
        let mut rx = Vec::new();
        for clip in 0..opts.clips {
            let pair = chats.legitimate(0, 96_000 + clip as u64 * 1_000 + si as u64)?;
            tx.extend_from_slice(pair.tx.samples());
            rx.extend_from_slice(pair.rx.samples());
        }
        feeds.push((tx, rx));
    }
    let total_steps = feeds.first().map_or(0, |(tx, _)| tx.len());
    let clip_samples = fresh_stream(&detector)?.clip_samples();

    let config = ServeConfig {
        max_sessions: opts.sessions,
        queue_clips: opts.queue_clips,
        budget_clips: opts.budget_clips,
        budget_period_ticks: opts.budget_period_ticks,
        deadline_ticks: opts.deadline_ticks,
        ..ServeConfig::default()
    };

    // Uninterrupted reference run: same fleet, same chaos schedule (all
    // decisions are hashes of stable coordinates), no store, no kills.
    let reference = {
        let mut sup = Supervisor::new(config.clone())?;
        let mut mapping = BTreeMap::new();
        for si in 0..opts.sessions {
            let id = sup
                .admit(fresh_stream(&detector)?)
                .session()
                .ok_or("admission rejected below max_sessions")?;
            mapping.insert(id, si);
        }
        let degraded = vec![false; opts.sessions];
        let mut book = VerdictBook::new(opts.sessions);
        for step in 0..total_steps {
            feed_step(&mut sup, &mapping, &feeds, &injector, clip_samples, step)?;
            book.absorb(&sup.drain_events(), &mapping, &degraded);
        }
        drain(&mut sup, &mapping, &degraded, &mut book)?;
        book
    };

    // Chaos run: checkpoints into a fault-injected store, kills at the
    // planned steps, restores from the newest valid generation.
    let mut sup = Supervisor::new(config.clone()).map(|s| s.with_recorder(recorder.clone()))?;
    let mut mapping: BTreeMap<u64, usize> = BTreeMap::new();
    for si in 0..opts.sessions {
        let id = sup
            .admit(fresh_stream(&detector)?)
            .session()
            .ok_or("admission rejected below max_sessions")?;
        mapping.insert(id, si);
    }
    let mut degraded = vec![false; opts.sessions];
    let mut book = VerdictBook::new(opts.sessions);

    // The first checkpoint is written fault-free (a deployment checkpoints
    // once before enabling anything risky), so the store always holds at
    // least one loadable generation and a restore never *has* to
    // cold-start; the fault mix switches on right after.
    let storage = MemStorage::with_faults(opts.plan.seed, StorageFaults::none())?;
    let mut store = CheckpointStore::new(storage, opts.store)?.with_recorder(recorder.clone());
    let mut staged: BTreeMap<u64, GenMeta> = BTreeMap::new();
    let mut durable: BTreeMap<u64, GenMeta> = BTreeMap::new();
    checkpoint(
        &mut store,
        &sup,
        &injector,
        &mapping,
        0,
        &mut staged,
        &mut durable,
    )?;
    store.storage_mut().set_faults(opts.plan.storage)?;

    let kill_steps: Vec<usize> = (1..=opts.cycles)
        .map(|c| total_steps * c / (opts.cycles + 1))
        .collect();
    let mut cycles = Vec::with_capacity(opts.cycles);
    let mut store_totals = StoreStats::default();
    let mut cold_starts = 0usize;
    let mut sabotage_detection_ok = true;
    let mut quarantine_exact_ok = true;
    let mut restored_total = 0usize;
    let mut quarantined_total = 0usize;

    let mut step = 0usize;
    let mut next_kill = 0usize;
    while step < total_steps {
        feed_step(&mut sup, &mapping, &feeds, &injector, clip_samples, step)?;
        book.absorb(&sup.drain_events(), &mapping, &degraded);
        let now = sup.tick_now();
        if let Some(outcome) = store.tick(now) {
            settle(outcome, &mut staged, &mut durable);
        }
        if step > 0 && step.is_multiple_of(opts.checkpoint_every_steps) {
            checkpoint(
                &mut store,
                &sup,
                &injector,
                &mapping,
                step + 1,
                &mut staged,
                &mut durable,
            )?;
        }
        // Each kill fires exactly once: the replay after a rewind passes
        // the same step again without re-crashing.
        if next_kill < kill_steps.len() && step == kill_steps[next_kill] {
            next_kill += 1;
            let kill_tick = sup.tick_now();
            drop(sup); // the crash: runtime state and pending retries die
            let surviving = store.storage().clone();
            store_totals = store_totals.merged(store.stats());
            store = CheckpointStore::new(surviving, opts.store)?.with_recorder(recorder.clone());
            staged.clear();
            let restore = Supervisor::restore_from_store(
                config.clone(),
                &mut store,
                |_| StreamingDetector::new(detector.clone(), 15.0, 3),
                &recorder,
            );
            match restore {
                Ok((restored, report)) => {
                    let generation = report
                        .fallback_generation
                        .ok_or("restore succeeded without a generation")?;
                    if store
                        .storage()
                        .sabotaged()
                        .contains(&entry_name(generation))
                    {
                        // A torn or bit-flipped record decoded cleanly: a
                        // silent mis-restore the framing failed to catch.
                        sabotage_detection_ok = false;
                    }
                    let meta = durable
                        .get(&generation)
                        .ok_or("restored a generation the harness never committed")?
                        .clone();
                    let mut expected: Vec<u64> = meta.corrupted.clone();
                    expected.sort_unstable();
                    let mut got: Vec<u64> = report.quarantined.iter().map(|q| q.id).collect();
                    got.sort_unstable();
                    if expected != got {
                        quarantine_exact_ok = false;
                    }
                    sup = restored;
                    mapping = meta
                        .mapping
                        .iter()
                        .filter(|(id, _)| report.restored.contains(id))
                        .map(|(&id, &si)| (id, si))
                        .collect();
                    for q in &report.quarantined {
                        let Some(&si) = meta.mapping.get(&q.id) else {
                            quarantine_exact_ok = false;
                            continue;
                        };
                        degraded[si] = true;
                        let id = sup
                            .admit(fresh_stream(&detector)?)
                            .session()
                            .ok_or("re-admission rejected after quarantine")?;
                        mapping.insert(id, si);
                    }
                    restored_total += report.restored.len();
                    quarantined_total += report.quarantined.len();
                    cycles.push(ChaosCycle {
                        kill_step: step,
                        restored_generation: Some(generation),
                        fallback_depth: report.fallback_depth,
                        generation_quarantines: report.generation_quarantines.len(),
                        restored_sessions: report.restored.len(),
                        quarantined_sessions: report.quarantined.len(),
                        reserve_steps: (step + 1).saturating_sub(meta.resume_step),
                        recovery_ticks: kill_tick.saturating_sub(meta.tick),
                    });
                    step = meta.resume_step;
                    continue;
                }
                Err(ServeError::BadSnapshot(_)) => {
                    // Nothing valid stored: cold-start the fleet fresh.
                    cold_starts += 1;
                    sup = Supervisor::new(config.clone())
                        .map(|s| s.with_recorder(recorder.clone()))?;
                    mapping.clear();
                    for (si, flag) in degraded.iter_mut().enumerate() {
                        *flag = true;
                        let id = sup
                            .admit(fresh_stream(&detector)?)
                            .session()
                            .ok_or("re-admission rejected after cold start")?;
                        mapping.insert(id, si);
                    }
                    cycles.push(ChaosCycle {
                        kill_step: step,
                        restored_generation: None,
                        fallback_depth: 0,
                        generation_quarantines: store.stats().quarantined as usize,
                        restored_sessions: 0,
                        quarantined_sessions: opts.sessions,
                        reserve_steps: 0,
                        recovery_ticks: 0,
                    });
                    quarantined_total += opts.sessions;
                }
                Err(e) => return Err(e.into()),
            }
        }
        step += 1;
    }
    drain(&mut sup, &mapping, &degraded, &mut book)?;
    store_totals = store_totals.merged(store.stats());

    let verdict_match_ok =
        (0..opts.sessions).all(|si| degraded[si] || book.books[si] == reference.books[si]);
    let restores = restored_total + quarantined_total;
    let integrity_ok = verdict_match_ok
        && sabotage_detection_ok
        && quarantine_exact_ok
        && book.misrestores == 0
        && book.holes == 0
        && cycles.len() == opts.cycles;

    let registry = sink.registry();
    let counters = [
        "serve.restore.sessions",
        "serve.restore.quarantined",
        "store.commit",
        "store.write_failure",
        "store.retry",
        "store.quarantined",
    ]
    .iter()
    .map(|&name| (name.to_string(), registry.counter(name)))
    .collect();

    Ok(ChaosResult {
        cycles,
        offered: sup.stats().offered_clips,
        served: sup.stats().served_clips,
        shed: sup.stats().shed_clips,
        quarantine_fraction: if restores == 0 {
            0.0
        } else {
            quarantined_total as f64 / restores as f64
        },
        cold_starts,
        misrestores: book.misrestores,
        verdict_match_ok,
        sabotage_detection_ok,
        quarantine_exact_ok,
        integrity_ok,
        store: store_totals,
        sabotaged_writes: store.storage().sabotaged().len(),
        counters,
    })
}

fn fresh_stream(detector: &Detector) -> ExpResult<StreamingDetector> {
    Ok(StreamingDetector::new(detector.clone(), 15.0, 3)?)
}

/// Feeds one lockstep sample to every session (poisoning the clips the
/// plan selects), then advances the clock — plus any injected stall.
fn feed_step(
    sup: &mut Supervisor,
    mapping: &BTreeMap<u64, usize>,
    feeds: &[(Vec<f64>, Vec<f64>)],
    injector: &ChaosInjector,
    clip_samples: usize,
    step: usize,
) -> ExpResult<()> {
    let clip = (step / clip_samples.max(1)) as u64;
    for (&id, &si) in mapping {
        let (tx, rx) = &feeds[si];
        let (Some(&t), Some(&r)) = (tx.get(step), rx.get(step)) else {
            continue;
        };
        let r = if injector.poison_clip(si as u64, clip) {
            f64::NAN
        } else {
            r
        };
        sup.offer(id, t, r)?;
    }
    sup.tick();
    for _ in 0..injector.stall_ticks(step as u64) {
        sup.tick();
    }
    Ok(())
}

/// Idle-ticks the supervisor until every queued clip is served or sheds
/// on its deadline, absorbing verdicts as they land.
fn drain(
    sup: &mut Supervisor,
    mapping: &BTreeMap<u64, usize>,
    degraded: &[bool],
    book: &mut VerdictBook,
) -> ExpResult<()> {
    let mut guard = 0u64;
    while sup.pending_clips() > 0 {
        sup.tick();
        book.absorb(&sup.drain_events(), mapping, degraded);
        guard += 1;
        if guard > 1_000_000 {
            return Err("supervisor queues failed to drain".into());
        }
    }
    book.absorb(&sup.drain_events(), mapping, degraded);
    Ok(())
}

/// Snapshots the supervisor, lets the injector rot per-session entries
/// for the upcoming generation, and commits. The staged metadata is
/// promoted to durable only when the write (or a later retry) lands.
fn checkpoint(
    store: &mut CheckpointStore<MemStorage>,
    sup: &Supervisor,
    injector: &ChaosInjector,
    mapping: &BTreeMap<u64, usize>,
    resume_step: usize,
    staged: &mut BTreeMap<u64, GenMeta>,
    durable: &mut BTreeMap<u64, GenMeta>,
) -> ExpResult<()> {
    let generation = store.next_generation();
    let mut snap = sup.snapshot();
    let corrupted = injector.corrupt_snapshot(generation, &mut snap);
    staged.insert(
        generation,
        GenMeta {
            resume_step,
            tick: snap.tick,
            mapping: mapping.clone(),
            corrupted,
        },
    );
    let outcome = store.commit(sup.tick_now(), &snap)?;
    settle(outcome, staged, durable);
    Ok(())
}

/// Promotes or abandons staged generation metadata per commit outcome.
fn settle(
    outcome: CommitOutcome,
    staged: &mut BTreeMap<u64, GenMeta>,
    durable: &mut BTreeMap<u64, GenMeta>,
) {
    match outcome {
        CommitOutcome::Committed { generation } => {
            if let Some(meta) = staged.remove(&generation) {
                durable.insert(generation, meta);
            }
        }
        CommitOutcome::Retrying { .. } => {}
        CommitOutcome::GaveUp { generation, .. } => {
            staged.remove(&generation);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChaosOpts {
        ChaosOpts {
            sessions: 3,
            clips: 2,
            cycles: 3,
            checkpoint_every_steps: 30,
            ..ChaosOpts::default()
        }
    }

    #[test]
    fn recovery_is_exact_under_faults() {
        let r = run(small()).unwrap();
        assert_eq!(r.cycles.len(), 3);
        assert!(r.integrity_ok, "integrity must hold: {r:?}");
        assert_eq!(r.misrestores, 0);
        assert_eq!(r.cold_starts, 0, "first checkpoint is fault-free");
        assert!(
            r.store.write_failures > 0,
            "the fault plan must actually bite the store"
        );
        assert!(
            r.store.quarantined > 0 || r.cycles.iter().any(|c| c.quarantined_sessions > 0),
            "some corruption must surface: {r:?}"
        );
        let rendered = r.print();
        assert!(rendered.contains("chaos integrity: ok"));
        assert!(rendered.contains("re-serve"));
    }

    #[test]
    fn is_deterministic() {
        let a = run(small()).unwrap();
        let b = run(small()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn quiet_plan_recovers_everything() {
        let mut opts = small();
        opts.plan = ChaosPlan::seeded(9);
        let r = run(opts).unwrap();
        assert!(r.integrity_ok);
        assert_eq!(r.quarantine_fraction, 0.0);
        assert!(r.cycles.iter().all(|c| c.fallback_depth == 0));
        assert_eq!(r.store.write_failures, 0);
    }
}
