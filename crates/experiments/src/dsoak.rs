//! Daemon kill/restore soak: the crash-recovery claim, proven at the
//! socket. An uninterrupted reference run records, per client, the exact
//! encoded bytes of every verdict/shed frame the daemon emits. The soak
//! run then drives the *same* client feeds while the daemon process is
//! killed mid-traffic (≥ 3 times) and restored from its newest surviving
//! checkpoint generation; clients reconnect, `Resume` their sessions, and
//! replay from the daemon's `next_sample` resume point. The run is
//! falsified unless:
//!
//! * every never-quarantined client's verdict stream is **byte-identical**
//!   to the reference run's (keyed by clip index; a re-served clip must
//!   reproduce the identical frame, and an occupied slot that disagrees is
//!   a misrestore, not a retry);
//! * the wire accounting identity `verdicts == served` / `sheds == shed`
//!   / `served + shed == offered` holds **per incarnation** (wire counters
//!   reset at restore; serve counters restore from the checkpoint, so the
//!   identity is checked on deltas);
//! * a hostile garbage burst fired right after every restore still gets a
//!   typed malformed disconnect — recovery never loosens admission.

use std::collections::BTreeMap;

use crate::runner::render_table;
use crate::{ExpError, ExpResult};
use lumen_chat::feed::SampleFeed;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_chat::trace::TracePair;
use lumen_core::detector::Detector;
use lumen_core::stream::StreamingDetector;
use lumen_core::Config;
use lumen_daemon::wire::{DisconnectCause, Frame};
use lumen_daemon::{Daemon, DaemonClient, DaemonConfig, DetectorFactory};
use lumen_obs::FlightConfig;
use lumen_serve::{CheckpointStore, MemStorage, ServeConfig, ServeStats, StoreConfig, Supervisor};
use serde::{Deserialize, Serialize};

/// Options for the kill/restore soak.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DsoakOpts {
    /// Honest clients streaming recorded feeds.
    pub clients: usize,
    /// Clips each client streams.
    pub clips: usize,
    /// Clean training instances for the shared enrolment.
    pub train_count: usize,
    /// Mid-traffic kill/restore cycles (the issue demands ≥ 3).
    pub kills: usize,
    /// Daemon checkpoint cadence, event-loop turns.
    pub checkpoint_every_turns: u64,
    /// Detections allowed per budget period (generous: shedding would
    /// make the reference and soak streams legitimately diverge).
    pub budget_clips: u64,
    /// Budget period length, ticks.
    pub budget_period_ticks: u64,
    /// Queued-clip deadline, ticks.
    pub deadline_ticks: u64,
}

impl Default for DsoakOpts {
    fn default() -> Self {
        DsoakOpts {
            clients: 3,
            clips: 3,
            train_count: 10,
            kills: 3,
            checkpoint_every_turns: 25,
            budget_clips: 256,
            budget_period_ticks: 30,
            deadline_ticks: 2_000,
        }
    }
}

/// One kill/restore cycle's row in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KillRow {
    /// Global soak turn the daemon died at.
    pub at_turn: u64,
    /// Checkpoint generation the restore came back from.
    pub generation: Option<u64>,
    /// Sessions restored intact.
    pub restored: usize,
    /// Sessions the restore quarantined.
    pub quarantined: usize,
    /// Clients whose `Resume` was accepted.
    pub resumed: usize,
    /// Clients whose `Resume` was rejected.
    pub rejected: usize,
    /// The dying incarnation's wire/serve accounting identity held.
    pub accounting_ok: bool,
    /// The post-restore garbage burst got a typed malformed disconnect.
    pub hostile_typed_ok: bool,
}

/// The kill/restore soak result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DsoakResult {
    /// One row per kill/restore cycle.
    pub kills: Vec<KillRow>,
    /// Verdict/shed frames the reference run recorded, all clients.
    pub reference_frames: u64,
    /// Verdict/shed frames the soak run recorded, all clients.
    pub soak_frames: u64,
    /// Clients never quarantined across every restore.
    pub never_quarantined: usize,
    /// Every never-quarantined client's stream matched byte-for-byte.
    pub byte_identity_ok: bool,
    /// No occupied verdict slot ever disagreed with a re-served frame.
    pub no_misrestore_ok: bool,
    /// Accounting identity held in every incarnation, including the last.
    pub accounting_ok: bool,
    /// Every post-restore hostile burst was typed, never a panic.
    pub hostile_ok: bool,
    /// All of the above, with every requested kill actually performed.
    pub integrity_ok: bool,
}

impl DsoakResult {
    /// Renders the result as an aligned table plus a verdict footer.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .kills
            .iter()
            .map(|k| {
                vec![
                    k.at_turn.to_string(),
                    k.generation.map_or("-".to_string(), |g| g.to_string()),
                    k.restored.to_string(),
                    k.quarantined.to_string(),
                    k.resumed.to_string(),
                    k.rejected.to_string(),
                    if k.accounting_ok { "ok" } else { "FAIL" }.to_string(),
                    if k.hostile_typed_ok { "ok" } else { "FAIL" }.to_string(),
                ]
            })
            .collect();
        let mut out = render_table(
            "Dsoak — daemon kill/restore soak over real sockets",
            &[
                "kill@turn",
                "gen",
                "restored",
                "quarantined",
                "resumed",
                "rejected",
                "accounting",
                "hostile",
            ],
            &rows,
        );
        out.push('\n');
        out.push_str(&format!(
            "frames: reference {} soak {}; never-quarantined clients {}\n",
            self.reference_frames, self.soak_frames, self.never_quarantined,
        ));
        out.push_str(&format!(
            "byte-identical verdict streams: {}; misrestore-free: {}; \
             per-incarnation accounting: {}; hostile-after-restore typed: {}\n",
            flag(self.byte_identity_ok),
            flag(self.no_misrestore_ok),
            flag(self.accounting_ok),
            flag(self.hostile_ok),
        ));
        out.push_str(&format!("dsoak integrity: {}\n", flag(self.integrity_ok)));
        out
    }
}

fn flag(ok: bool) -> String {
    if ok { "ok" } else { "FAIL" }.to_string()
}

/// A client's verdict stream keyed by clip index. A clip yields exactly
/// one verdict *or* shed frame, so the key is unambiguous; re-served
/// clips land on occupied slots and must byte-match.
type Book = BTreeMap<u64, Vec<u8>>;

/// Absorbs a daemon→client frame into `book`. Returns `false` on a
/// misrestore: an occupied slot whose re-served bytes disagree.
fn absorb(book: &mut Book, frame: &Frame) -> bool {
    let clip = match frame {
        Frame::Verdict { verdict, .. } | Frame::Shed { verdict, .. } => verdict.clip_index,
        _ => return true,
    };
    let bytes = frame.encode();
    match book.get(&clip) {
        Some(seen) => *seen == bytes,
        None => {
            book.insert(clip, bytes);
            true
        }
    }
}

struct SoakClient {
    client: DaemonClient,
    feed: SampleFeed,
    session: Option<u64>,
    book: Book,
    degraded: bool,
}

struct Fixture {
    serve_config: ServeConfig,
    daemon_config: DaemonConfig,
    detector: Detector,
    feeds: Vec<Vec<TracePair>>,
}

fn fixture(opts: &DsoakOpts) -> ExpResult<Fixture> {
    let clean = ScenarioBuilder::default();
    let training: Vec<TracePair> = (0..opts.train_count)
        .map(|i| clean.legitimate(0, 95_000 + i as u64))
        .collect::<Result<_, _>>()?;
    let detector = Detector::train_from_traces(&training, Config::default())?;
    let feeds = (0..opts.clients)
        .map(|ci| {
            (0..opts.clips)
                .map(|clip| clean.legitimate(0, 96_000 + (clip * 100 + ci) as u64))
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Fixture {
        serve_config: ServeConfig {
            max_sessions: opts.clients + 1,
            queue_clips: 4,
            budget_clips: opts.budget_clips,
            budget_period_ticks: opts.budget_period_ticks,
            deadline_ticks: opts.deadline_ticks,
            ..ServeConfig::default()
        },
        daemon_config: DaemonConfig {
            checkpoint_every_turns: opts.checkpoint_every_turns,
            idle_turns: 5_000,
            read_turns: 2_500,
            ..DaemonConfig::default()
        },
        detector,
        feeds,
    })
}

fn make_factory(detector: &Detector) -> DetectorFactory {
    let det = detector.clone();
    Box::new(move |_| StreamingDetector::new(det.clone(), 15.0, 3))
}

fn connect_all(
    daemon: &mut Daemon<MemStorage>,
    feeds: &[Vec<TracePair>],
) -> ExpResult<Vec<SoakClient>> {
    let mut clients = Vec::with_capacity(feeds.len());
    for pairs in feeds {
        let mut client = DaemonClient::connect(daemon.port())?;
        client.send(&Frame::Hello)?;
        clients.push(SoakClient {
            client,
            feed: SampleFeed::from_pairs(pairs)?,
            session: None,
            book: Book::new(),
            degraded: false,
        });
    }
    for _ in 0..64 {
        daemon.turn_once()?;
        for c in clients.iter_mut() {
            for frame in c.client.poll()? {
                if let Frame::Welcome { session } = frame {
                    c.session = Some(session);
                    c.client.set_session(Some(session));
                }
            }
        }
        if clients.iter().all(|c| c.session.is_some()) {
            break;
        }
    }
    if clients.iter().any(|c| c.session.is_none()) {
        return Err(ExpError::from("a client was never admitted"));
    }
    Ok(clients)
}

/// One shared event-loop turn: feed a sample per live client, turn the
/// daemon, absorb everything it said. Returns `false` on a misrestore.
fn shared_turn(daemon: &mut Daemon<MemStorage>, clients: &mut [SoakClient]) -> ExpResult<bool> {
    for c in clients.iter_mut() {
        if c.degraded {
            continue;
        }
        if let Some(session) = c.session {
            if let Some((tx, rx)) = c.feed.next_sample() {
                c.client.send(&Frame::Sample { session, tx, rx })?;
            }
        }
    }
    daemon.turn_once()?;
    let mut clean = true;
    for c in clients.iter_mut() {
        if c.degraded {
            continue;
        }
        for frame in c.client.poll()? {
            clean &= absorb(&mut c.book, &frame);
        }
    }
    Ok(clean)
}

fn done(clients: &[SoakClient], clips: usize) -> bool {
    clients
        .iter()
        .all(|c| c.degraded || (c.feed.remaining() == 0 && c.book.len() >= clips))
}

/// Drains the daemon and sweeps the last flushed frames into the books.
fn finish(daemon: &mut Daemon<MemStorage>, clients: &mut [SoakClient]) -> ExpResult<bool> {
    daemon.drain(20_000)?;
    let mut clean = true;
    for c in clients.iter_mut() {
        if c.degraded {
            continue;
        }
        for frame in c.client.poll()? {
            clean &= absorb(&mut c.book, &frame);
        }
    }
    Ok(clean)
}

fn delta_identity(end: &ServeStats, start: &ServeStats, wire: &lumen_daemon::WireStats) -> bool {
    let served = end.served_clips - start.served_clips;
    let shed = end.shed_clips - start.shed_clips;
    let offered = end.offered_clips - start.offered_clips;
    wire.verdict_total() == served && wire.shed_total() == shed && served + shed == offered
}

/// The uninterrupted reference run: same seeds, same pacing, no kills.
fn reference_run(opts: &DsoakOpts, fx: &Fixture) -> ExpResult<(Vec<Book>, bool)> {
    let sup = Supervisor::new(fx.serve_config.clone())?.with_flight(FlightConfig::default());
    let store = CheckpointStore::new(MemStorage::new(), StoreConfig::default())?;
    let mut daemon = Daemon::new(
        sup,
        make_factory(&fx.detector),
        fx.daemon_config.clone(),
        Some(store),
    )?;
    let mut clients = connect_all(&mut daemon, &fx.feeds)?;
    let mut clean = true;
    let max_turns = (opts.clips * 200 + 2_000) as u64;
    for _ in 0..max_turns {
        clean &= shared_turn(&mut daemon, &mut clients)?;
        if done(&clients, opts.clips) {
            break;
        }
    }
    clean &= finish(&mut daemon, &mut clients)?;
    let identity = delta_identity(
        daemon.serve_stats(),
        &ServeStats::default(),
        daemon.wire_stats(),
    );
    Ok((
        clients.into_iter().map(|c| c.book).collect(),
        clean && identity,
    ))
}

/// Fires a garbage burst at a freshly restored daemon and demands the
/// typed malformed disconnect — recovery must not loosen admission.
fn hostile_burst(daemon: &mut Daemon<MemStorage>) -> ExpResult<bool> {
    let mut hostile = DaemonClient::connect(daemon.port())?;
    hostile.send_raw(b"\x00GET /chat HTTP/1.1\r\n\r\n")?;
    for _ in 0..32 {
        daemon.turn_once()?;
        hostile.poll()?;
        if hostile.is_closed() {
            break;
        }
    }
    Ok(hostile.goodbye() == Some(DisconnectCause::Malformed))
}

/// Runs the kill/restore soak.
///
/// # Errors
///
/// Propagates scenario, training, daemon, store and transport errors;
/// kills, quarantines and hostile traffic are results, not errors.
pub fn run(opts: DsoakOpts) -> ExpResult<DsoakResult> {
    let fx = fixture(&opts)?;
    let (reference_books, reference_clean) = reference_run(&opts, &fx)?;

    let sup = Supervisor::new(fx.serve_config.clone())?.with_flight(FlightConfig::default());
    let store = CheckpointStore::new(MemStorage::new(), StoreConfig::default())?;
    let mut daemon = Daemon::new(
        sup,
        make_factory(&fx.detector),
        fx.daemon_config.clone(),
        Some(store),
    )?;
    let mut clients = connect_all(&mut daemon, &fx.feeds)?;

    let clip_samples = StreamingDetector::new(fx.detector.clone(), 15.0, 3)?.clip_samples() as u64;
    let total_steps = opts.clips as u64 * clip_samples;
    let kill_turns: Vec<u64> = (1..=opts.kills as u64)
        .map(|k| total_steps * k / (opts.kills as u64 + 1))
        .collect();

    let mut kills = Vec::with_capacity(opts.kills);
    let mut serve_base = ServeStats::default();
    let mut no_misrestore = true;
    let mut accounting = true;
    let mut hostile = true;
    let max_turns = total_steps + (opts.kills as u64 + 1) * 1_000;
    let mut turn = 0u64;
    while turn < max_turns {
        if kills.len() < opts.kills && kill_turns.get(kills.len()) == Some(&turn) {
            // Sweep everything already flushed while the sockets are
            // still alive, then pull the plug between two turns — the
            // checkpoint on storage is all the next process gets.
            for c in clients.iter_mut() {
                if c.degraded {
                    continue;
                }
                for frame in c.client.poll()? {
                    no_misrestore &= absorb(&mut c.book, &frame);
                }
            }
            let incarnation_ok =
                delta_identity(daemon.serve_stats(), &serve_base, daemon.wire_stats());
            accounting &= incarnation_ok;
            let storage = daemon
                .store()
                .ok_or_else(|| ExpError::from("soak daemon lost its store"))?
                .storage()
                .clone();
            drop(daemon);
            let surviving = CheckpointStore::new(storage, StoreConfig::default())?;
            let (restored, report) = Daemon::restore_from_store(
                fx.serve_config.clone(),
                surviving,
                make_factory(&fx.detector),
                fx.daemon_config.clone(),
                Some(FlightConfig::default()),
            )?;
            daemon = restored;
            serve_base = daemon.serve_stats().clone();
            for q in &report.quarantined {
                for c in clients.iter_mut() {
                    if c.session == Some(q.id) {
                        c.degraded = true;
                    }
                }
            }
            let mut resumed = 0usize;
            let mut rejected = 0usize;
            for c in clients.iter_mut() {
                if c.degraded {
                    continue;
                }
                let Some(session) = c.session else { continue };
                c.client = DaemonClient::connect(daemon.port())?;
                c.client.send(&Frame::Resume { session })?;
                let mut answered = false;
                for _ in 0..64 {
                    daemon.turn_once()?;
                    for frame in c.client.poll()? {
                        match frame {
                            Frame::Resumed { next_sample, .. } => {
                                c.feed.rewind_to(next_sample as usize)?;
                                resumed += 1;
                                answered = true;
                            }
                            Frame::ResumeRejected { .. } => {
                                c.degraded = true;
                                rejected += 1;
                                answered = true;
                            }
                            other => no_misrestore &= absorb(&mut c.book, &other),
                        }
                    }
                    if answered {
                        break;
                    }
                }
                if !answered {
                    return Err(ExpError::from("resume went unanswered"));
                }
            }
            let burst_ok = hostile_burst(&mut daemon)?;
            hostile &= burst_ok;
            kills.push(KillRow {
                at_turn: turn,
                generation: report.fallback_generation,
                restored: report.restored.len(),
                quarantined: report.quarantined.len(),
                resumed,
                rejected,
                accounting_ok: incarnation_ok,
                hostile_typed_ok: burst_ok,
            });
        }
        no_misrestore &= shared_turn(&mut daemon, &mut clients)?;
        turn += 1;
        if kills.len() >= opts.kills && done(&clients, opts.clips) {
            break;
        }
    }
    no_misrestore &= finish(&mut daemon, &mut clients)?;
    accounting &= delta_identity(daemon.serve_stats(), &serve_base, daemon.wire_stats());

    let never_quarantined = clients.iter().filter(|c| !c.degraded).count();
    let byte_identity_ok = clients
        .iter()
        .zip(&reference_books)
        .filter(|(c, _)| !c.degraded)
        .all(|(c, reference)| c.book == *reference)
        && never_quarantined > 0;
    let reference_frames: u64 = reference_books.iter().map(|b| b.len() as u64).sum();
    let soak_frames: u64 = clients.iter().map(|c| c.book.len() as u64).sum();
    let integrity_ok = kills.len() >= opts.kills.max(3)
        && byte_identity_ok
        && no_misrestore
        && accounting
        && hostile
        && reference_clean;

    Ok(DsoakResult {
        kills,
        reference_frames,
        soak_frames,
        never_quarantined,
        byte_identity_ok,
        no_misrestore_ok: no_misrestore,
        accounting_ok: accounting,
        hostile_ok: hostile,
        integrity_ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_survives_three_kills_with_byte_identity() {
        let r = run(DsoakOpts {
            clients: 2,
            clips: 2,
            train_count: 8,
            ..DsoakOpts::default()
        })
        .expect("run");
        assert!(r.integrity_ok, "{}", r.print());
        assert_eq!(r.kills.len(), 3);
        assert!(r.print().contains("dsoak integrity: ok"));
    }
}
