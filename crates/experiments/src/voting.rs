//! Fig. 14 — influence of the number of detection attempts: majority voting
//! over D rounds improves both rates and shrinks their variance.

use crate::runner::{pct, render_table, user_features};
use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_core::dataset::split_train_test;
use lumen_core::detector::Detector;
use lumen_core::metrics::mean_std;
use lumen_core::voting::combine_votes;
use lumen_core::Config;
use serde::{Deserialize, Serialize};

/// Options for the voting experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VotingOpts {
    /// Volunteers.
    pub users: usize,
    /// Clips per role per volunteer (grouped into voting rounds).
    pub clips: usize,
    /// Training instances.
    pub train_count: usize,
    /// Largest D evaluated (1..=max_rounds).
    pub max_rounds: usize,
    /// Random re-splits per configuration.
    pub repeats: usize,
}

impl Default for VotingOpts {
    fn default() -> Self {
        VotingOpts {
            users: 5,
            clips: 40,
            train_count: 20,
            max_rounds: 5,
            repeats: 10,
        }
    }
}

/// One D's row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VotingRow {
    /// Number of detection attempts fused.
    pub rounds: usize,
    /// Mean TAR.
    pub tar: f64,
    /// TAR standard deviation across users/repeats.
    pub tar_std: f64,
    /// Mean TRR.
    pub trr: f64,
    /// TRR standard deviation.
    pub trr_std: f64,
}

/// The Fig. 14 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VotingResult {
    /// Rows for D = 1..=max_rounds.
    pub rows: Vec<VotingRow>,
}

impl VotingResult {
    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.rounds.to_string(),
                    format!("{} ±{:4.1}", pct(r.tar), 100.0 * r.tar_std),
                    format!("{} ±{:4.1}", pct(r.trr), 100.0 * r.trr_std),
                ]
            })
            .collect();
        render_table(
            "Fig. 14 — influence of detection attempts (majority voting)",
            &["D", "TAR", "TRR"],
            &rows,
        )
    }
}

/// Runs the Fig. 14 experiment.
///
/// # Errors
///
/// Propagates simulation, feature-extraction and LOF errors.
pub fn run(opts: VotingOpts) -> ExpResult<VotingResult> {
    let builder = ScenarioBuilder::default();
    let config = Config::default();
    let mut per_d_tar: Vec<Vec<f64>> = vec![Vec::new(); opts.max_rounds];
    let mut per_d_trr: Vec<Vec<f64>> = vec![Vec::new(); opts.max_rounds];

    for u in 0..opts.users {
        let (legit, attack) = user_features(&builder, u, opts.clips, &config)?;
        for rep in 0..opts.repeats as u64 {
            let (train, test) = split_train_test(&legit, opts.train_count, 600 + rep);
            let det = Detector::train(&train, config)?;
            let legit_votes: Vec<bool> = test
                .iter()
                .map(|f| Ok(det.judge(f)?.accepted))
                .collect::<ExpResult<_>>()?;
            let attack_votes: Vec<bool> = attack
                .iter()
                .map(|f| Ok(det.judge(f)?.accepted))
                .collect::<ExpResult<_>>()?;
            for d in 1..=opts.max_rounds {
                let fuse = |votes: &[bool]| -> ExpResult<(usize, usize)> {
                    let mut accepted = 0;
                    let mut total = 0;
                    for group in votes.chunks(d) {
                        if group.len() < d {
                            continue;
                        }
                        total += 1;
                        if combine_votes(group, config.vote_coefficient)? {
                            accepted += 1;
                        }
                    }
                    Ok((accepted, total))
                };
                let (la, lt) = fuse(&legit_votes)?;
                if lt > 0 {
                    per_d_tar[d - 1].push(la as f64 / lt as f64);
                }
                let (aa, at) = fuse(&attack_votes)?;
                if at > 0 {
                    per_d_trr[d - 1].push(1.0 - aa as f64 / at as f64);
                }
            }
        }
    }

    let rows = (0..opts.max_rounds)
        .map(|i| {
            let (tar, tar_std) = mean_std(&per_d_tar[i]);
            let (trr, trr_std) = mean_std(&per_d_trr[i]);
            VotingRow {
                rounds: i + 1,
                tar,
                tar_std,
                trr,
                trr_std,
            }
        })
        .collect();
    Ok(VotingResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voting_improves_acceptance() {
        let result = run(VotingOpts {
            users: 2,
            clips: 20,
            train_count: 10,
            max_rounds: 3,
            repeats: 4,
        })
        .unwrap();
        assert_eq!(result.rows.len(), 3);
        let d1 = &result.rows[0];
        let d3 = &result.rows[2];
        // With the 0.7 coefficient, D = 3 requires all three rounds to
        // reject, so TAR can only improve.
        assert!(d3.tar >= d1.tar - 1e-9, "TAR {} -> {}", d1.tar, d3.tar);
    }
}
