//! Fig. 17 — effectiveness against the strongest attacker: one who forges
//! the exact reflected-luminance signal but pays a processing delay. The
//! paper reports the rejection rate "quickly rises to about 80 % when the
//! delay is 1.3 seconds".

use crate::runner::{pct, render_table};
use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_core::dataset::{legitimate_features, split_train_test};
use lumen_core::detector::Detector;
use lumen_core::Config;
use serde::{Deserialize, Serialize};

/// Options for the forgery-delay experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayOpts {
    /// The impersonated volunteer.
    pub victim: usize,
    /// Attack clips per delay.
    pub clips: usize,
    /// Training clips (legitimate).
    pub train_clips: usize,
    /// Forgery delays to sweep, seconds.
    pub delays: Vec<f64>,
}

impl Default for DelayOpts {
    fn default() -> Self {
        DelayOpts {
            victim: 0,
            clips: 40,
            train_clips: 20,
            delays: vec![0.0, 0.3, 0.6, 0.9, 1.1, 1.3, 1.6, 2.0, 2.5],
        }
    }
}

/// One delay's row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayRow {
    /// Forgery delay, seconds.
    pub delay: f64,
    /// Rejection rate of the forged clips.
    pub rejection_rate: f64,
}

/// The Fig. 17 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayResult {
    /// Rows, smallest delay first.
    pub rows: Vec<DelayRow>,
}

impl DelayResult {
    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| vec![format!("{:.1} s", r.delay), pct(r.rejection_rate)])
            .collect();
        render_table(
            "Fig. 17 — rejection rate vs forgery-processing delay",
            &["delay", "rejection"],
            &rows,
        )
    }
}

/// Runs the Fig. 17 experiment: an [`lumen_attack::adaptive::AdaptiveForger`]
/// who reproduces the *exact* legitimate luminance signal, shipped late by
/// each swept delay.
///
/// # Errors
///
/// Propagates simulation, feature-extraction and LOF errors.
pub fn run(opts: DelayOpts) -> ExpResult<DelayResult> {
    let builder = ScenarioBuilder::default();
    let config = Config::default();
    let legit = legitimate_features(
        &builder,
        opts.victim,
        opts.train_clips + 10,
        30_000,
        &config,
    )?;
    let (train, _) = split_train_test(&legit, opts.train_clips, 13);
    let det = Detector::train(&train, config)?;

    let mut rows = Vec::new();
    for &delay in &opts.delays {
        let mut rejected = 0usize;
        for i in 0..opts.clips as u64 {
            let pair = builder.adaptive(opts.victim, delay, 31_000 + i)?;
            if !det.detect(&pair)?.accepted {
                rejected += 1;
            }
        }
        rows.push(DelayRow {
            delay,
            rejection_rate: rejected as f64 / opts.clips as f64,
        });
    }
    Ok(DelayResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejection_rises_with_delay() {
        let result = run(DelayOpts {
            victim: 0,
            clips: 12,
            train_clips: 12,
            delays: vec![0.0, 1.5],
        })
        .unwrap();
        let fast = result.rows[0].rejection_rate;
        let slow = result.rows[1].rejection_rate;
        // A perfect instant forgery passes (low rejection); a 1.5 s-late
        // one is mostly caught.
        assert!(fast < 0.5, "instant forgery rejected at {fast}");
        assert!(slow > 0.6, "late forgery only rejected at {slow}");
    }
}
