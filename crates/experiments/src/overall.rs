//! Fig. 11 — overall system performance: per-user true acceptance rate
//! (classifier trained on the user's *own* data and on *another user's*
//! data) and per-user true rejection rate against ICFace-style reenactment.
//!
//! Protocol (Sec. VIII-C): 40 clips per role per volunteer; 20 rounds; each
//! round randomly picks 20 instances for training and tests on the rest.

use crate::runner::{parallel_map, pct, render_table, user_features};
use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_core::dataset::split_train_test;
use lumen_core::detector::Detector;
use lumen_core::metrics::{mean_std, Confusion};
use lumen_core::Config;
use serde::{Deserialize, Serialize};

/// Options for the overall experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverallOpts {
    /// Number of volunteers.
    pub users: usize,
    /// Clips per role per volunteer.
    pub clips: usize,
    /// Evaluation rounds (random re-splits).
    pub rounds: usize,
    /// Training instances per round.
    pub train_count: usize,
}

impl Default for OverallOpts {
    fn default() -> Self {
        OverallOpts {
            users: 10,
            clips: 40,
            rounds: 20,
            train_count: 20,
        }
    }
}

/// One volunteer's row of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserRow {
    /// Volunteer index.
    pub user: usize,
    /// Mean TAR with own-data training.
    pub tar_own: f64,
    /// TAR standard deviation (own).
    pub tar_own_std: f64,
    /// Mean TAR with another volunteer's training data.
    pub tar_others: f64,
    /// TAR standard deviation (others).
    pub tar_others_std: f64,
    /// Mean TRR against reenactment.
    pub trr: f64,
    /// TRR standard deviation.
    pub trr_std: f64,
}

/// The complete Fig. 11 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverallResult {
    /// Per-volunteer rows.
    pub rows: Vec<UserRow>,
    /// Mean TAR across volunteers (own-data training).
    pub mean_tar_own: f64,
    /// Mean TAR across volunteers (others'-data training).
    pub mean_tar_others: f64,
    /// Mean TRR across volunteers.
    pub mean_trr: f64,
}

impl OverallResult {
    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("user-{}", r.user + 1),
                    pct(r.tar_own),
                    pct(r.tar_others),
                    pct(r.trr),
                ]
            })
            .chain(std::iter::once(vec![
                "mean".to_string(),
                pct(self.mean_tar_own),
                pct(self.mean_tar_others),
                pct(self.mean_trr),
            ]))
            .collect();
        render_table(
            "Fig. 11 — overall performance (single detection)",
            &["user", "TAR (own)", "TAR (others)", "TRR"],
            &rows,
        )
    }
}

/// Runs the Fig. 11 experiment.
///
/// # Errors
///
/// Propagates simulation, feature-extraction and LOF errors.
pub fn run(opts: OverallOpts) -> ExpResult<OverallResult> {
    let builder = ScenarioBuilder::default();
    let config = Config::default();

    // Generate every user's feature sets in parallel.
    let users: Vec<usize> = (0..opts.users).collect();
    let feature_sets = parallel_map(users, |&u| user_features(&builder, u, opts.clips, &config))?;

    let rows: Vec<UserRow> = (0..opts.users)
        .map(|u| {
            let (legit, attack) = &feature_sets[u];
            let (other_legit, _) = &feature_sets[(u + 1) % opts.users];
            let mut tar_own = Vec::new();
            let mut tar_others = Vec::new();
            let mut trr = Vec::new();
            for round in 0..opts.rounds as u64 {
                // Own-data training.
                let (train, test) = split_train_test(legit, opts.train_count, 77 + round);
                let det = Detector::train(&train, config)?;
                let mut c = Confusion::new();
                for f in &test {
                    c.record(true, det.judge(f)?.accepted);
                }
                tar_own.push(c.tar());
                // TRR with the same own-data model.
                let mut c = Confusion::new();
                for f in attack {
                    c.record(false, det.judge(f)?.accepted);
                }
                trr.push(c.trr());
                // Others'-data training, tested on this user's clips.
                let (train_o, _) = split_train_test(other_legit, opts.train_count, 977 + round);
                let det_o = Detector::train(&train_o, config)?;
                let mut c = Confusion::new();
                for f in legit {
                    c.record(true, det_o.judge(f)?.accepted);
                }
                tar_others.push(c.tar());
            }
            let (to, tos) = mean_std(&tar_own);
            let (tt, tts) = mean_std(&tar_others);
            let (tr, trs) = mean_std(&trr);
            Ok(UserRow {
                user: u,
                tar_own: to,
                tar_own_std: tos,
                tar_others: tt,
                tar_others_std: tts,
                trr: tr,
                trr_std: trs,
            })
        })
        .collect::<ExpResult<_>>()?;

    let mean = |f: fn(&UserRow) -> f64| rows.iter().map(f).sum::<f64>() / rows.len().max(1) as f64;
    Ok(OverallResult {
        mean_tar_own: mean(|r| r.tar_own),
        mean_tar_others: mean(|r| r.tar_others),
        mean_trr: mean(|r| r.trr),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_overall_run_hits_calibration_band() {
        // Reduced size for test speed; the full run is exercised by the
        // binary and the workspace integration tests.
        let result = run(OverallOpts {
            users: 3,
            clips: 12,
            rounds: 4,
            train_count: 8,
        })
        .unwrap();
        assert_eq!(result.rows.len(), 3);
        assert!(
            result.mean_tar_own > 0.75,
            "TAR(own) {}",
            result.mean_tar_own
        );
        assert!(result.mean_trr > 0.75, "TRR {}", result.mean_trr);
        let table = result.print();
        assert!(table.contains("mean"));
    }
}
