//! Fig. 13 — influence of screen size: the defense degrades gracefully from
//! a 27-inch monitor down to a 14-inch laptop, works on a 6-inch phone only
//! at ~10 cm, and fails with the phone at arm's length (Sec. VIII-E).

use crate::runner::{pct, render_table, user_features};
use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_core::dataset::split_train_test;
use lumen_core::detector::Detector;
use lumen_core::metrics::Confusion;
use lumen_core::Config;
use lumen_video::screen::Screen;
use lumen_video::synth::SynthConfig;
use serde::{Deserialize, Serialize};

/// Options for the screen-size experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScreenOpts {
    /// Volunteers sampled per screen.
    pub users: usize,
    /// Clips per role per volunteer.
    pub clips: usize,
    /// Training instances.
    pub train_count: usize,
}

impl Default for ScreenOpts {
    fn default() -> Self {
        ScreenOpts {
            users: 5,
            clips: 30,
            train_count: 20,
        }
    }
}

/// One screen's row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScreenRow {
    /// Screen label.
    pub label: String,
    /// Illuminance gain of the screen (diagnostic).
    pub gain: f64,
    /// Mean TAR.
    pub tar: f64,
    /// Mean TRR.
    pub trr: f64,
}

/// The Fig. 13 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScreenResult {
    /// Rows, largest screen first.
    pub rows: Vec<ScreenRow>,
}

impl ScreenResult {
    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    format!("{:.4}", r.gain),
                    pct(r.tar),
                    pct(r.trr),
                ]
            })
            .collect();
        render_table(
            "Fig. 13 — influence of screen size",
            &["screen", "gain", "TAR", "TRR"],
            &rows,
        )
    }
}

/// The screens the experiment sweeps, mirroring the paper's testbed
/// (Fig. 10) plus the two phone placements of Sec. VIII-E.
pub fn screens() -> Vec<(String, Screen)> {
    vec![
        ("27\" monitor".into(), Screen::dell_27in()),
        ("24\" monitor".into(), Screen::monitor_24in()),
        ("19\" monitor".into(), Screen::monitor_19in()),
        ("6\" phone @10cm".into(), Screen::phone_6in_close()),
        ("6\" phone @40cm".into(), Screen::phone_6in_far()),
    ]
}

/// Runs the Fig. 13 experiment.
///
/// # Errors
///
/// Propagates simulation, feature-extraction and LOF errors.
pub fn run(opts: ScreenOpts) -> ExpResult<ScreenResult> {
    let config = Config::default();
    let mut rows = Vec::new();
    for (label, screen) in screens() {
        let builder = ScenarioBuilder::default().with_conditions(SynthConfig {
            screen,
            ..SynthConfig::default()
        });
        let mut c = Confusion::new();
        for u in 0..opts.users {
            let (legit, attack) = user_features(&builder, u, opts.clips, &config)?;
            let (train, test) = split_train_test(&legit, opts.train_count, 41 + u as u64);
            let det = Detector::train(&train, config)?;
            for f in &test {
                c.record(true, det.judge(f)?.accepted);
            }
            for f in &attack {
                c.record(false, det.judge(f)?.accepted);
            }
        }
        rows.push(ScreenRow {
            label,
            gain: screen.illuminance_gain(),
            tar: c.tar(),
            trr: c.trr(),
        });
    }
    Ok(ScreenResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_screens_defend_better() {
        let result = run(ScreenOpts {
            users: 2,
            clips: 10,
            train_count: 7,
        })
        .unwrap();
        assert_eq!(result.rows.len(), 5);
        let tar27 = result.rows[0].tar;
        let tar_far_phone = result.rows[4].tar;
        // The far phone must be clearly worse than the desktop monitor on
        // at least one axis (the paper: not usable at all).
        let trr27 = result.rows[0].trr;
        let trr_far = result.rows[4].trr;
        assert!(
            tar_far_phone + 0.05 < tar27 || trr_far + 0.05 < trr27,
            "far phone ({tar_far_phone}, {trr_far}) not worse than 27\" ({tar27}, {trr27})"
        );
    }
}
