//! Fig. 12 — influence of the decision threshold τ: FAR and FRR sweeps and
//! the equal error rate.
//!
//! The paper sweeps τ from 1.5 to 4 with 20 training instances and finds a
//! balanced FAR/FRR (EER ≈ 5.5 %) for τ between 2.8 and 3.

use crate::runner::{parallel_map, pct, render_table, user_features};
use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_core::dataset::split_train_test;
use lumen_core::detector::Detector;
use lumen_core::metrics::{equal_error_rate, SweepPoint};
use lumen_core::Config;
use serde::{Deserialize, Serialize};

/// Options for the threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepOpts {
    /// Number of volunteers contributing scores.
    pub users: usize,
    /// Clips per role per volunteer.
    pub clips: usize,
    /// Training instances.
    pub train_count: usize,
    /// Sweep start.
    pub tau_min: f64,
    /// Sweep end (inclusive).
    pub tau_max: f64,
    /// Sweep step.
    pub tau_step: f64,
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts {
            users: 10,
            clips: 40,
            train_count: 20,
            tau_min: 1.5,
            tau_max: 4.0,
            tau_step: 0.1,
        }
    }
}

/// The Fig. 12 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// FAR/FRR per threshold.
    pub points: Vec<SweepPoint>,
    /// The interpolated equal error rate, if the curves cross.
    pub eer: Option<f64>,
    /// Threshold nearest the crossing.
    pub eer_threshold: Option<f64>,
}

impl SweepResult {
    /// Renders the sweep as an aligned table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| vec![format!("{:.1}", p.threshold), pct(p.far), pct(p.frr)])
            .collect();
        let mut out = render_table(
            "Fig. 12 — decision threshold sweep",
            &["τ", "FAR", "FRR"],
            &rows,
        );
        if let (Some(eer), Some(tau)) = (self.eer, self.eer_threshold) {
            out.push_str(&format!("EER ≈ {} near τ ≈ {tau:.2}\n", pct(eer)));
        }
        out
    }
}

/// Runs the Fig. 12 experiment. LOF scores are threshold-independent, so
/// each instance is scored once and the sweep reuses the scores.
///
/// # Errors
///
/// Propagates simulation, feature-extraction and LOF errors.
pub fn run(opts: SweepOpts) -> ExpResult<SweepResult> {
    let builder = ScenarioBuilder::default();
    let config = Config::default();
    let users: Vec<usize> = (0..opts.users).collect();
    let feature_sets = parallel_map(users, |&u| user_features(&builder, u, opts.clips, &config))?;

    // Collect LOF scores of all test instances, per ground truth.
    let mut legit_scores = Vec::new();
    let mut attack_scores = Vec::new();
    for (u, (legit, attack)) in feature_sets.iter().enumerate() {
        let (train, test) = split_train_test(legit, opts.train_count, 300 + u as u64);
        let det = Detector::train(&train, config)?;
        for f in &test {
            legit_scores.push(det.score(f)?);
        }
        for f in attack {
            attack_scores.push(det.score(f)?);
        }
    }

    let mut points = Vec::new();
    let mut tau = opts.tau_min;
    while tau <= opts.tau_max + 1e-9 {
        let frr = legit_scores.iter().filter(|&&s| s > tau).count() as f64
            / legit_scores.len().max(1) as f64;
        let far = attack_scores.iter().filter(|&&s| s <= tau).count() as f64
            / attack_scores.len().max(1) as f64;
        points.push(SweepPoint {
            threshold: tau,
            far,
            frr,
        });
        tau += opts.tau_step;
    }
    let eer = equal_error_rate(&points);
    let eer_threshold = points
        .iter()
        .min_by(|a, b| (a.far - a.frr).abs().total_cmp(&(b.far - b.frr).abs()))
        .map(|p| p.threshold);
    Ok(SweepResult {
        points,
        eer,
        eer_threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_curves_are_monotone_and_cross() {
        let result = run(SweepOpts {
            users: 3,
            clips: 12,
            train_count: 8,
            ..SweepOpts::default()
        })
        .unwrap();
        // FAR grows with τ, FRR shrinks.
        for w in result.points.windows(2) {
            assert!(w[1].far >= w[0].far - 1e-9);
            assert!(w[1].frr <= w[0].frr + 1e-9);
        }
        let eer = result.eer.expect("curves cross");
        assert!(eer < 0.35, "EER {eer}");
    }
}
