//! Preprocessing-chain ablation (extension; DESIGN.md design-choice audit):
//! the paper's exact Sec. V chain versus variants that add a median
//! de-burst stage or a linear detrend in front, and versus a chain without
//! the threshold filter. Quantifies how much each stage earns.

use crate::runner::{pct, render_table};
use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_chat::trace::TracePair;
use lumen_core::dataset::split_train_test;
use lumen_core::detector::Detector;
use lumen_core::features::extract_features;
use lumen_core::metrics::Confusion;
use lumen_core::preprocess::{preprocess, Preprocessed};
use lumen_core::Config;
use lumen_dsp::detrend::remove_linear;
use lumen_dsp::filters::median::median_filter;
use lumen_dsp::Signal;
use serde::{Deserialize, Serialize};

/// Preprocessing variants under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// The paper's exact Sec. V chain.
    Paper,
    /// A 5-sample median filter ahead of the chain (de-burst).
    MedianFront,
    /// Linear detrend ahead of the chain (the variance stage should make
    /// this redundant).
    DetrendFront,
    /// The paper's chain with the threshold filter disabled.
    NoThreshold,
}

impl Variant {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Paper => "paper chain",
            Variant::MedianFront => "+ median(5) front",
            Variant::DetrendFront => "+ detrend front",
            Variant::NoThreshold => "- threshold filter",
        }
    }

    fn prepare(&self, signal: &Signal, _config: &Config) -> ExpResult<Signal> {
        Ok(match self {
            Variant::MedianFront => median_filter(signal, 5.min(signal.len()))?,
            Variant::DetrendFront => {
                // Detrending shifts the baseline to ~0; restore the mean so
                // the rest of the chain sees luminance-scale values.
                let mean = signal.mean();
                remove_linear(signal)?.map(|v| v + mean)
            }
            _ => signal.clone(),
        })
    }

    fn config(&self, base: &Config) -> Config {
        match self {
            Variant::NoThreshold => Config {
                variance_threshold: 0.0,
                ..*base
            },
            _ => *base,
        }
    }

    fn preprocess(
        &self,
        signal: &Signal,
        prominence: f64,
        config: &Config,
    ) -> ExpResult<Preprocessed> {
        let prepared = self.prepare(signal, config)?;
        Ok(preprocess(&prepared, prominence, &self.config(config))?)
    }

    fn features(
        &self,
        pair: &TracePair,
        config: &Config,
    ) -> ExpResult<lumen_core::features::FeatureVector> {
        let tx = self.preprocess(&pair.tx, config.tx_prominence, config)?;
        let rx = self.preprocess(&pair.rx, config.rx_prominence, config)?;
        Ok(extract_features(&tx, &rx, &self.config(config))?)
    }
}

/// Options for the preprocessing ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreprocOpts {
    /// Volunteers.
    pub users: usize,
    /// Clips per role per volunteer.
    pub clips: usize,
    /// Training instances.
    pub train_count: usize,
}

impl Default for PreprocOpts {
    fn default() -> Self {
        PreprocOpts {
            users: 3,
            clips: 24,
            train_count: 16,
        }
    }
}

/// One variant's row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreprocRow {
    /// Variant label.
    pub variant: String,
    /// Mean TAR.
    pub tar: f64,
    /// Mean TRR.
    pub trr: f64,
}

/// The preprocessing-ablation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreprocResult {
    /// One row per variant.
    pub rows: Vec<PreprocRow>,
}

impl PreprocResult {
    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| vec![r.variant.clone(), pct(r.tar), pct(r.trr)])
            .collect();
        render_table(
            "Ablation — preprocessing-chain variants",
            &["variant", "TAR", "TRR"],
            &rows,
        )
    }
}

/// Runs the preprocessing ablation.
///
/// # Errors
///
/// Propagates simulation and detection errors.
pub fn run(opts: PreprocOpts) -> ExpResult<PreprocResult> {
    let builder = ScenarioBuilder::default();
    let config = Config::default();
    let mut rows = Vec::new();
    for variant in [
        Variant::Paper,
        Variant::MedianFront,
        Variant::DetrendFront,
        Variant::NoThreshold,
    ] {
        let mut c = Confusion::new();
        for u in 0..opts.users {
            let legit_pairs: Vec<TracePair> = (0..opts.clips as u64)
                .map(|i| builder.legitimate(u, 110_000 + u as u64 * 1000 + i))
                .collect::<Result<_, _>>()?;
            let attack_pairs: Vec<TracePair> = (0..opts.clips as u64)
                .map(|i| builder.reenactment(u, 120_000 + u as u64 * 1000 + i))
                .collect::<Result<_, _>>()?;
            let legit_features = legit_pairs
                .iter()
                .map(|p| variant.features(p, &config))
                .collect::<ExpResult<Vec<_>>>()?;
            let attack_features = attack_pairs
                .iter()
                .map(|p| variant.features(p, &config))
                .collect::<ExpResult<Vec<_>>>()?;
            let (train, test) = split_train_test(&legit_features, opts.train_count, 115 + u as u64);
            let det = Detector::train(&train, variant.config(&config))?;
            for f in &test {
                c.record(true, det.judge(f)?.accepted);
            }
            for f in &attack_features {
                c.record(false, det.judge(f)?.accepted);
            }
        }
        rows.push(PreprocRow {
            variant: variant.label().to_string(),
            tar: c.tar(),
            trr: c.trr(),
        });
    }
    Ok(PreprocResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_chain_is_competitive() {
        let r = run(PreprocOpts {
            users: 2,
            clips: 12,
            train_count: 8,
        })
        .unwrap();
        assert_eq!(r.rows.len(), 4);
        let paper = &r.rows[0];
        let bal = |row: &PreprocRow| 0.5 * (row.tar + row.trr);
        // The paper chain must not be dominated by a wide margin by any
        // variant at this scale.
        for other in &r.rows[1..] {
            assert!(
                bal(paper) + 0.15 >= bal(other),
                "paper {:.3} vs {} {:.3}",
                bal(paper),
                other.variant,
                bal(other)
            );
        }
    }
}
