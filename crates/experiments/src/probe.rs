//! Active probing (challenge–response extension): what the luminance
//! probe recovers when the passive path cannot vote, and what it costs.
//!
//! The passive detector needs transmitted-luminance variance to correlate
//! against; on static screen content the reflection it was enrolled on is
//! simply absent and the live caller scores as an outlier. This experiment
//! puts a seeded luminance challenge on exactly that worst case and
//! reports:
//!
//! 1. a **passive baseline** on static content (how often the passive
//!    gated detector concludes, and how often those conclusions wrongly
//!    reject the live caller),
//! 2. probe FRR/FAR/abstention versus **challenge amplitude** (live
//!    callees and challenge-blind reenactment),
//! 3. probe rejection versus **forgery delay** for the adaptive forger —
//!    the paper's Sec. VIII-J bound says anything beyond 20 ms must fail,
//! 4. probe behaviour under **heavy burst loss** — a damaged link must
//!    abstain, not reject the caller.

use crate::runner::{pct, render_table};
use crate::ExpResult;
use lumen_chat::fault::{BurstLoss, FaultPlan};
use lumen_chat::scenario::ScenarioBuilder;
use lumen_chat::session::SessionConfig;
use lumen_core::dataset;
use lumen_core::detector::{ClipOutcome, Detector};
use lumen_core::quality::QualityGate;
use lumen_core::Config;
use lumen_obs::Recorder;
use lumen_probe::{ProbeConfig, ProbeDecision, ProbeInjector, ProbeVerifier, VerifierConfig};
use serde::{Deserialize, Serialize};

/// Options for the probe evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeOpts {
    /// Probe rounds (seeds) per table cell.
    pub rounds: usize,
    /// Challenge amplitudes to sweep, grey levels.
    pub amplitudes: Vec<f64>,
    /// Forgery processing delays to sweep, seconds.
    pub delays: Vec<f64>,
    /// Bad-state loss probability of the burst-loss condition.
    pub burst_loss: f64,
    /// Clean training instances for the passive baseline detector.
    pub train_count: usize,
    /// Display luma of the static screen content, grey levels.
    pub static_level: f64,
}

impl Default for ProbeOpts {
    fn default() -> Self {
        ProbeOpts {
            rounds: 8,
            amplitudes: vec![3.0, 6.0, 9.0, 12.0],
            delays: vec![0.0, 0.01, 0.05, 0.1, 0.3],
            burst_loss: 0.95,
            train_count: 10,
            static_level: 120.0,
        }
    }
}

/// The passive detector's showing on static content (the probe's cue):
/// it concludes confidently and is confidently wrong.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PassiveBaseline {
    /// Fraction of legitimate static-content clips the passive gated
    /// detector concluded on.
    pub conclusive: f64,
    /// FRR over those conclusive clips.
    pub frr: f64,
}

/// One amplitude sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AmplitudeRow {
    /// Challenge amplitude, grey levels.
    pub amplitude: f64,
    /// Fraction of live probe rounds that were conclusive (no abstention).
    pub live_conclusive: f64,
    /// FRR: live rounds failed, over conclusive live rounds.
    pub frr: f64,
    /// FAR: challenge-blind reenactment rounds passed, over conclusive
    /// attack rounds.
    pub far: f64,
    /// Abstention fraction over all rounds of the cell (both roles).
    pub abstain: f64,
}

/// One forgery-delay sweep point (adaptive forger, default amplitude).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayRow {
    /// Forgery processing delay, seconds.
    pub delay: f64,
    /// Fraction of rounds the probe rejected.
    pub rejected: f64,
    /// Mean measured extra delay over rejected rounds, seconds.
    pub measured_extra: f64,
}

/// Probe behaviour on a heavily bursty link (live callee).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstRow {
    /// Bad-state loss probability of the Gilbert–Elliott channel.
    pub loss: f64,
    /// Fraction of rounds the probe abstained on.
    pub abstain: f64,
    /// Fraction of rounds the probe falsely rejected.
    pub false_reject: f64,
}

/// The probe experiment's full result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeResult {
    /// Passive gated detector on the same static content.
    pub passive: PassiveBaseline,
    /// Amplitude sweep rows.
    pub amplitudes: Vec<AmplitudeRow>,
    /// Forgery-delay sweep rows.
    pub delays: Vec<DelayRow>,
    /// Burst-loss condition.
    pub burst: BurstRow,
    /// Probe counters accumulated over the run.
    pub counters: Vec<(String, u64)>,
}

impl ProbeResult {
    /// Renders the result as aligned tables plus a counter footer.
    pub fn print(&self) -> String {
        let mut out = format!(
            "Passive baseline on static content: {} conclusive, FRR {}\n\n",
            pct(self.passive.conclusive),
            pct(self.passive.frr)
        );
        let rows: Vec<Vec<String>> = self
            .amplitudes
            .iter()
            .map(|r| {
                vec![
                    format!("{:.0}", r.amplitude),
                    pct(r.live_conclusive),
                    pct(r.frr),
                    pct(r.far),
                    pct(r.abstain),
                ]
            })
            .collect();
        out.push_str(&render_table(
            "Probe — FRR/FAR/abstention vs challenge amplitude",
            &["amplitude", "live conclusive", "FRR", "FAR", "abstain"],
            &rows,
        ));
        out.push('\n');
        let rows: Vec<Vec<String>> = self
            .delays
            .iter()
            .map(|r| {
                vec![
                    format!("{:.0} ms", r.delay * 1_000.0),
                    pct(r.rejected),
                    format!("{:.0} ms", r.measured_extra * 1_000.0),
                ]
            })
            .collect();
        out.push_str(&render_table(
            "Probe — rejection vs adaptive forgery delay (bound: 20 ms)",
            &["forgery delay", "rejected", "measured extra"],
            &rows,
        ));
        out.push('\n');
        out.push_str(&format!(
            "Burst loss {:.0}%: abstain {}, false reject {}\n\n",
            self.burst.loss * 100.0,
            pct(self.burst.abstain),
            pct(self.burst.false_reject)
        ));
        for (name, value) in &self.counters {
            out.push_str(&format!("{name}: {value}\n"));
        }
        out
    }
}

fn frac(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A probed static-content scenario for one challenge.
fn probed_scenario(
    injector: &ProbeInjector,
    config: &ProbeConfig,
    opts: &ProbeOpts,
    faults: FaultPlan,
) -> ScenarioBuilder {
    injector.armed_scenario(
        ScenarioBuilder::default()
            .with_session(config.session_config(1.5, &SessionConfig::default()))
            .with_static_caller(opts.static_level)
            .with_faults(faults),
    )
}

/// Runs the probe evaluation.
///
/// # Errors
///
/// Propagates schedule generation, simulation, training and verification
/// errors.
pub fn run(opts: ProbeOpts) -> ExpResult<ProbeResult> {
    let (recorder, sink) = Recorder::in_memory();
    let verifier = ProbeVerifier::new(VerifierConfig::default())?;

    // 1. Passive baseline: a detector enrolled on normal content, judging
    //    static-content clips through the quality gate.
    let config = Config::default();
    let clean = ScenarioBuilder::default();
    let train = dataset::legitimate_features(&clean, 0, opts.train_count, 950_000, &config)?;
    let passive_det = Detector::train(&train, config)?;
    let gate = QualityGate::default();
    let static_builder = ScenarioBuilder::default().with_static_caller(opts.static_level);
    let mut conclusive = 0usize;
    let mut rejected = 0usize;
    for i in 0..opts.rounds as u64 {
        let pair = static_builder.legitimate(0, 951_000 + i)?;
        if let ClipOutcome::Conclusive(d) = passive_det.detect_gated(&pair, &gate)? {
            conclusive += 1;
            if !d.accepted {
                rejected += 1;
            }
        }
    }
    let passive = PassiveBaseline {
        conclusive: frac(conclusive, opts.rounds),
        frr: frac(rejected, conclusive),
    };

    // 2. Amplitude sweep: live vs challenge-blind reenactment.
    let mut amplitudes = Vec::new();
    for (ai, &amplitude) in opts.amplitudes.iter().enumerate() {
        let config = ProbeConfig {
            amplitude,
            ..ProbeConfig::default()
        };
        let mut live_total = 0usize;
        let mut live_fail = 0usize;
        let mut attack_total = 0usize;
        let mut attack_pass = 0usize;
        let mut abstain = 0usize;
        for i in 0..opts.rounds as u64 {
            let seed = 952_000 + ai as u64 * 1_000 + i;
            let schedule = lumen_probe::ChallengeSchedule::generate(&config, seed)?;
            let injector = ProbeInjector::new(schedule.clone());
            let scenario = probed_scenario(&injector, &config, &opts, FaultPlan::none());
            let live = verifier.verify_with(
                &schedule,
                &scenario.legitimate(0, 960_000 + seed)?,
                &recorder,
            )?;
            match live.decision {
                ProbeDecision::Abstain => abstain += 1,
                d => {
                    live_total += 1;
                    if d == ProbeDecision::Fail {
                        live_fail += 1;
                    }
                }
            }
            let fake = verifier.verify_with(
                &schedule,
                &scenario.reenactment(0, 970_000 + seed)?,
                &recorder,
            )?;
            match fake.decision {
                ProbeDecision::Abstain => abstain += 1,
                d => {
                    attack_total += 1;
                    if d == ProbeDecision::Pass {
                        attack_pass += 1;
                    }
                }
            }
        }
        amplitudes.push(AmplitudeRow {
            amplitude,
            live_conclusive: frac(live_total, opts.rounds),
            frr: frac(live_fail, live_total),
            far: frac(attack_pass, attack_total),
            abstain: frac(abstain, 2 * opts.rounds),
        });
    }

    // 3. Forgery-delay sweep at the default amplitude.
    let config = ProbeConfig::default();
    let mut delays = Vec::new();
    for (di, &delay) in opts.delays.iter().enumerate() {
        let mut rejected = 0usize;
        let mut extra_sum = 0.0;
        for i in 0..opts.rounds as u64 {
            let seed = 980_000 + di as u64 * 1_000 + i;
            let schedule = lumen_probe::ChallengeSchedule::generate(&config, seed)?;
            let injector = ProbeInjector::new(schedule.clone());
            let scenario = probed_scenario(&injector, &config, &opts, FaultPlan::none());
            let verdict = verifier.verify_with(
                &schedule,
                &scenario.adaptive(0, delay, 985_000 + seed)?,
                &recorder,
            )?;
            if verdict.decision == ProbeDecision::Fail {
                rejected += 1;
                extra_sum += verdict.extra_delay_s;
            }
        }
        delays.push(DelayRow {
            delay,
            rejected: frac(rejected, opts.rounds),
            measured_extra: if rejected == 0 {
                0.0
            } else {
                extra_sum / rejected as f64
            },
        });
    }

    // 4. Heavy burst loss on a live callee: abstain, don't accuse.
    let plan = FaultPlan {
        burst: BurstLoss::bursty(0.1, 6.0, opts.burst_loss),
        ..FaultPlan::none()
    };
    let mut abstain = 0usize;
    let mut false_reject = 0usize;
    for i in 0..opts.rounds as u64 {
        let seed = 990_000 + i;
        let schedule = lumen_probe::ChallengeSchedule::generate(&config, seed)?;
        let injector = ProbeInjector::new(schedule.clone());
        let scenario = probed_scenario(&injector, &config, &opts, plan);
        let verdict = verifier.verify_with(
            &schedule,
            &scenario.legitimate(0, 995_000 + seed)?,
            &recorder,
        )?;
        match verdict.decision {
            ProbeDecision::Abstain => abstain += 1,
            ProbeDecision::Fail => false_reject += 1,
            ProbeDecision::Pass => {}
        }
    }
    let burst = BurstRow {
        loss: opts.burst_loss,
        abstain: frac(abstain, opts.rounds),
        false_reject: frac(false_reject, opts.rounds),
    };

    let registry = sink.registry();
    let counters = ["probe.pass", "probe.fail", "probe.abstain"]
        .iter()
        .map(|&name| (name.to_string(), registry.counter(name)))
        .collect();

    Ok(ProbeResult {
        passive,
        amplitudes,
        delays,
        burst,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ProbeOpts {
        ProbeOpts {
            rounds: 4,
            amplitudes: vec![3.0, 9.0],
            delays: vec![0.0, 0.3],
            ..ProbeOpts::default()
        }
    }

    #[test]
    fn probe_recovers_what_passive_abstains_on() {
        let r = run(small()).unwrap();
        // Static content starves the passive detector: it stays
        // conclusive but falsely rejects the live caller wholesale. The
        // probe must conclude at least as often and cut the FRR.
        let default_amp = &r.amplitudes[1];
        assert!(default_amp.live_conclusive >= r.passive.conclusive);
        assert!(default_amp.frr < r.passive.frr);
        assert_eq!(default_amp.far, 0.0, "{default_amp:?}");
        // Forgery beyond the 20 ms bound is rejected and measured.
        let slow = &r.delays[1];
        assert_eq!(slow.rejected, 1.0, "{slow:?}");
        assert!(slow.measured_extra > 0.2);
        // Heavy burst loss abstains rather than rejecting the caller.
        assert!(r.burst.abstain > 0.5, "{:?}", r.burst);
        assert_eq!(r.burst.false_reject, 0.0, "{:?}", r.burst);
        let rendered = r.print();
        assert!(rendered.contains("amplitude"));
        assert!(rendered.contains("probe.pass"));
    }

    #[test]
    fn is_deterministic() {
        let a = run(small()).unwrap();
        let b = run(small()).unwrap();
        assert_eq!(a, b);
    }
}
