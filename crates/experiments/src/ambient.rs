//! Sec. VIII-I — influence of ambient light: performance holds in normal
//! indoor light and the single-detection TAR drops toward ≈ 80 % when the
//! face illuminance reaches 240 lux, because strong ambient light shrinks
//! the screen-driven component of the reflection.

use crate::runner::{pct, render_table, user_features};
use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_core::dataset::split_train_test;
use lumen_core::detector::Detector;
use lumen_core::metrics::Confusion;
use lumen_core::Config;
use lumen_video::ambient::AmbientLight;
use lumen_video::synth::SynthConfig;
use serde::{Deserialize, Serialize};

/// Options for the ambient-light experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AmbientOpts {
    /// Volunteers per condition.
    pub users: usize,
    /// Clips per role per volunteer.
    pub clips: usize,
    /// Training instances.
    pub train_count: usize,
    /// Face illuminances to sweep, lux.
    pub lux_levels: Vec<f64>,
}

impl Default for AmbientOpts {
    fn default() -> Self {
        AmbientOpts {
            users: 4,
            clips: 30,
            train_count: 20,
            lux_levels: vec![60.0, 130.0, 190.0, 240.0],
        }
    }
}

/// One ambient condition's row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmbientRow {
    /// Face illuminance, lux.
    pub lux: f64,
    /// Mean TAR.
    pub tar: f64,
    /// Mean TRR.
    pub trr: f64,
}

/// The Sec. VIII-I result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AmbientResult {
    /// Rows, dimmest first.
    pub rows: Vec<AmbientRow>,
}

impl AmbientResult {
    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| vec![format!("{:.0} lux", r.lux), pct(r.tar), pct(r.trr)])
            .collect();
        render_table(
            "Sec. VIII-I — influence of ambient light",
            &["ambient", "TAR", "TRR"],
            &rows,
        )
    }
}

/// Runs the ambient-light experiment. Training happens under the same
/// condition being tested (the paper retrains per condition).
///
/// # Errors
///
/// Propagates simulation, feature-extraction and LOF errors.
pub fn run(opts: AmbientOpts) -> ExpResult<AmbientResult> {
    let config = Config::default();
    let mut rows = Vec::new();
    for &lux in &opts.lux_levels {
        let ambient = AmbientLight::new(lux, 0.002).map_err(Box::new)?;
        let builder = ScenarioBuilder::default().with_conditions(SynthConfig {
            ambient,
            ..SynthConfig::default()
        });
        let mut c = Confusion::new();
        for u in 0..opts.users {
            let (legit, attack) = user_features(&builder, u, opts.clips, &config)?;
            let (train, test) = split_train_test(&legit, opts.train_count, 70 + u as u64);
            let det = Detector::train(&train, config)?;
            for f in &test {
                c.record(true, det.judge(f)?.accepted);
            }
            for f in &attack {
                c.record(false, det.judge(f)?.accepted);
            }
        }
        rows.push(AmbientRow {
            lux,
            tar: c.tar(),
            trr: c.trr(),
        });
    }
    Ok(AmbientResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bright_ambient_does_not_help() {
        let result = run(AmbientOpts {
            users: 2,
            clips: 10,
            train_count: 7,
            lux_levels: vec![60.0, 240.0],
        })
        .unwrap();
        let dim = &result.rows[0];
        let bright = &result.rows[1];
        // Strong ambient cannot *improve* the defense.
        assert!(bright.tar <= dim.tar + 0.1, "{} vs {}", bright.tar, dim.tar);
    }
}
