//! Network sensitivity (extension; the paper's Sec. IX discussion asks for
//! "more influential factors"): how do one-way delay and packet loss affect
//! the defense? Delay is compensated by the feature extractor up to its
//! cap; loss degrades the displayed signal before it ever reaches the face.

use crate::runner::{pct, render_table, user_features};
use crate::ExpResult;
use lumen_chat::channel::ChannelConfig;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_chat::session::SessionConfig;
use lumen_core::dataset::split_train_test;
use lumen_core::detector::Detector;
use lumen_core::metrics::Confusion;
use lumen_core::Config;
use serde::{Deserialize, Serialize};

/// Options for the network sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkOpts {
    /// Volunteers per condition.
    pub users: usize,
    /// Clips per role per volunteer.
    pub clips: usize,
    /// Training instances.
    pub train_count: usize,
    /// One-way delays to sweep, seconds.
    pub delays: Vec<f64>,
    /// Drop probabilities to sweep.
    pub drops: Vec<f64>,
}

impl Default for NetworkOpts {
    fn default() -> Self {
        NetworkOpts {
            users: 3,
            clips: 24,
            train_count: 16,
            delays: vec![0.0, 0.12, 0.3, 0.45],
            drops: vec![0.0, 0.05, 0.2],
        }
    }
}

/// One network condition's row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkRow {
    /// One-way delay, seconds.
    pub delay: f64,
    /// Packet drop probability.
    pub drop_prob: f64,
    /// Mean TAR.
    pub tar: f64,
    /// Mean TRR.
    pub trr: f64,
}

/// The network-sensitivity result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkResult {
    /// Rows for the delay × loss grid.
    pub rows: Vec<NetworkRow>,
}

impl NetworkResult {
    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.0} ms", r.delay * 1000.0),
                    format!("{:.0}%", r.drop_prob * 100.0),
                    pct(r.tar),
                    pct(r.trr),
                ]
            })
            .collect();
        render_table(
            "Network sensitivity — one-way delay × packet loss",
            &["delay", "loss", "TAR", "TRR"],
            &rows,
        )
    }
}

/// Runs the network sweep. Training happens under the same condition being
/// tested (each deployment trains on its own link).
///
/// # Errors
///
/// Propagates simulation and detection errors.
pub fn run(opts: NetworkOpts) -> ExpResult<NetworkResult> {
    let config = Config::default();
    let mut rows = Vec::new();
    for &delay in &opts.delays {
        for &drop_prob in &opts.drops {
            let channel = ChannelConfig {
                base_delay: delay,
                jitter: 0.015,
                drop_prob,
            };
            let builder = ScenarioBuilder::default().with_session(SessionConfig {
                forward: channel,
                backward: channel,
                ..SessionConfig::default()
            });
            let mut c = Confusion::new();
            for u in 0..opts.users {
                let (legit, attack) = user_features(&builder, u, opts.clips, &config)?;
                let (train, test) = split_train_test(&legit, opts.train_count, 85 + u as u64);
                let det = Detector::train(&train, config)?;
                for f in &test {
                    c.record(true, det.judge(f)?.accepted);
                }
                for f in &attack {
                    c.record(false, det.judge(f)?.accepted);
                }
            }
            rows.push(NetworkRow {
                delay,
                drop_prob,
                tar: c.tar(),
                trr: c.trr(),
            });
        }
    }
    Ok(NetworkResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_network_is_usable() {
        let r = run(NetworkOpts {
            users: 2,
            clips: 14,
            train_count: 10,
            delays: vec![0.12],
            drops: vec![0.0],
        })
        .unwrap();
        assert!(r.rows[0].tar > 0.75, "TAR {}", r.rows[0].tar);
        assert!(r.rows[0].trr > 0.75, "TRR {}", r.rows[0].trr);
    }
}
