//! Fig. 6 — spectra of the face-reflected luminance with and without screen
//! light changes: the screen-driven signal lives below 1 Hz while noise is
//! broadband, motivating the 1 Hz low-pass cut-off.

use crate::runner::render_table;
use crate::ExpResult;
use lumen_dsp::fft::magnitude_spectrum;
use lumen_video::content::MeteringScript;
use lumen_video::profile::UserProfile;
use lumen_video::synth::{ReflectionSynth, SynthConfig};
use serde::{Deserialize, Serialize};

/// One spectrum's summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectrumSummary {
    /// Condition label.
    pub label: String,
    /// Energy below 1 Hz.
    pub low_band_energy: f64,
    /// Energy in 1–5 Hz.
    pub high_band_energy: f64,
    /// Coarse magnitude bins (0–5 Hz in 0.25 Hz steps) for plotting.
    pub bins: Vec<(f64, f64)>,
}

/// The Fig. 6 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectrumResult {
    /// With screen-light changes.
    pub with_changes: SpectrumSummary,
    /// Without screen-light changes (static caller video).
    pub without_changes: SpectrumSummary,
}

impl SpectrumResult {
    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let mut rows = Vec::new();
        for (a, b) in self
            .with_changes
            .bins
            .iter()
            .zip(&self.without_changes.bins)
        {
            rows.push(vec![
                format!("{:.2} Hz", a.0),
                format!("{:.3}", a.1),
                format!("{:.3}", b.1),
            ]);
        }
        let mut out = render_table(
            "Fig. 6 — luminance spectra w/ and w/o screen light change",
            &["freq", "w/ change", "w/o change"],
            &rows,
        );
        out.push_str(&format!(
            "band energy <1 Hz: {:.2} (w/) vs {:.2} (w/o); 1-5 Hz: {:.2} vs {:.2}\n",
            self.with_changes.low_band_energy,
            self.without_changes.low_band_energy,
            self.with_changes.high_band_energy,
            self.without_changes.high_band_energy,
        ));
        out
    }
}

fn summarize(label: &str, signal: &lumen_dsp::Signal) -> ExpResult<SpectrumSummary> {
    let spec = magnitude_spectrum(signal)?;
    let mut bins = Vec::new();
    let mut f = 0.0;
    while f < 5.0 {
        let lo = f;
        let hi = f + 0.25;
        let mag = spec
            .frequencies
            .iter()
            .zip(&spec.magnitudes)
            .filter(|(fr, _)| **fr >= lo && **fr < hi)
            .map(|(_, m)| *m)
            .fold(0.0f64, f64::max);
        bins.push((lo, mag));
        f = hi;
    }
    Ok(SpectrumSummary {
        label: label.to_string(),
        low_band_energy: spec.band_energy(0.05, 1.0),
        high_band_energy: spec.band_energy(1.0, 5.0),
        bins,
    })
}

/// Runs the Fig. 6 experiment on a long (60 s) trace for frequency
/// resolution.
///
/// # Errors
///
/// Propagates simulation and FFT errors.
pub fn run() -> ExpResult<SpectrumResult> {
    let synth = ReflectionSynth::new(SynthConfig::default());
    let profile = UserProfile::preset(0);

    let with_script = MeteringScript::square_wave(50.0, 200.0, 0.2, 60.0)?;
    let tx_with = with_script.sample_signal(10.0)?;
    let rx_with = synth.synthesize(&tx_with, &profile, 1)?;

    let without_script = MeteringScript::constant(125.0, 60.0)?;
    let tx_without = without_script.sample_signal(10.0)?;
    let rx_without = synth.synthesize(&tx_without, &profile, 1)?;

    Ok(SpectrumResult {
        with_changes: summarize("w/ screen change", &rx_with)?,
        without_changes: summarize("w/o screen change", &rx_without)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn screen_changes_concentrate_below_1hz() {
        let r = run().unwrap();
        // With changes: strong sub-1 Hz energy, far above the static case.
        assert!(
            r.with_changes.low_band_energy > 5.0 * r.without_changes.low_band_energy,
            "low-band: {} vs {}",
            r.with_changes.low_band_energy,
            r.without_changes.low_band_energy
        );
        // And the signal band dominates its own high band.
        assert!(
            r.with_changes.low_band_energy > 3.0 * r.with_changes.high_band_energy,
            "w/ change: low {} vs high {}",
            r.with_changes.low_band_energy,
            r.with_changes.high_band_energy
        );
    }
}
