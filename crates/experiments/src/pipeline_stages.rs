//! Fig. 7 — the preprocessing chain stage by stage: raw and filtered
//! luminance, the short-time variance with its noise spikes, and the
//! smoothed variance whose peaks line up with the scripted changes.

use crate::runner::render_table;
use crate::ExpResult;
use lumen_core::preprocess::{preprocess_rx, Preprocessed};
use lumen_core::Config;
use lumen_video::content::MeteringScript;
use lumen_video::profile::UserProfile;
use lumen_video::synth::{ReflectionSynth, SynthConfig};
use serde::{Deserialize, Serialize};

/// One downsampled time point of the stage traces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageSample {
    /// Time, seconds.
    pub t: f64,
    /// Raw ROI luminance.
    pub raw: f64,
    /// Low-passed luminance.
    pub filtered: f64,
    /// Short-time variance.
    pub variance: f64,
    /// Fully smoothed variance.
    pub smoothed: f64,
}

/// The Fig. 7 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagesResult {
    /// Ground-truth scripted change times.
    pub truth: Vec<f64>,
    /// Detected significant-change times.
    pub detected: Vec<f64>,
    /// One sample per second of each stage.
    pub samples: Vec<StageSample>,
}

impl StagesResult {
    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .samples
            .iter()
            .map(|s| {
                vec![
                    format!("{:4.1}", s.t),
                    format!("{:6.1}", s.raw),
                    format!("{:6.1}", s.filtered),
                    format!("{:7.2}", s.variance),
                    format!("{:7.2}", s.smoothed),
                ]
            })
            .collect();
        let mut out = render_table(
            "Fig. 7 — preprocessing stages (received face luminance)",
            &["t", "raw", "lowpass", "variance", "smoothed"],
            &rows,
        );
        out.push_str(&format!(
            "scripted changes at {:?}\ndetected changes at {:?}\n",
            self.truth
                .iter()
                .map(|t| (t * 10.0).round() / 10.0)
                .collect::<Vec<_>>(),
            self.detected
                .iter()
                .map(|t| (t * 10.0).round() / 10.0)
                .collect::<Vec<_>>(),
        ));
        out
    }
}

fn downsample(raw: &lumen_dsp::Signal, pre: &Preprocessed) -> Vec<StageSample> {
    let step = raw.sample_rate().round() as usize; // one sample per second
    (0..raw.len())
        .step_by(step.max(1))
        .map(|i| StageSample {
            t: raw.time_at(i),
            raw: raw.samples()[i],
            filtered: pre.filtered.samples()[i],
            variance: pre.variance.samples()[i],
            smoothed: pre.smoothed.samples()[i],
        })
        .collect()
}

/// Runs the Fig. 7 demonstration on a deterministic legitimate clip.
///
/// # Errors
///
/// Propagates simulation and preprocessing errors.
pub fn run() -> ExpResult<StagesResult> {
    let config = Config::default();
    let script = MeteringScript::random_with_seed(8, 15.0)?;
    let tx = script.sample_signal(10.0)?;
    let rx =
        ReflectionSynth::new(SynthConfig::default()).synthesize(&tx, &UserProfile::preset(0), 8)?;
    let pre = preprocess_rx(&rx, &config)?;
    Ok(StagesResult {
        truth: script.change_times(),
        detected: pre.change_times(),
        samples: downsample(&rx, &pre),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_align_with_script() {
        let r = run().unwrap();
        assert!(!r.truth.is_empty());
        assert_eq!(r.samples.len(), 15);
        // Detections line up with scripted changes, allowing at most one
        // noise-driven extra peak (the raw face trace is deliberately
        // noisy — that's what Fig. 7 illustrates).
        let spurious = r
            .detected
            .iter()
            .filter(|d| !r.truth.iter().any(|t| (t - **d).abs() < 1.5))
            .count();
        assert!(
            spurious <= 1,
            "{spurious} spurious detections: {:?}",
            r.detected
        );
        assert!(r.print().contains("smoothed"));
    }
}
