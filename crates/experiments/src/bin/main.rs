//! Command-line entry point: regenerate any table/figure of the paper.
//!
//! ```text
//! lumen-experiments <id> [--json]
//! lumen-experiments all
//! lumen-experiments list
//! ```

use lumen_experiments::*;
use std::process::ExitCode;

const IDS: &[(&str, &str)] = &[
    (
        "fig3",
        "feasibility: nasal-bridge luminance under black/white screen",
    ),
    ("fig6", "spectra of face luminance w/ and w/o screen change"),
    ("fig7", "preprocessing chain stage by stage"),
    ("fig9", "LOF classification example with score grid"),
    (
        "fig11",
        "overall TAR (own/others' training) and TRR per user",
    ),
    ("fig12", "FAR/FRR vs decision threshold, EER"),
    ("fig13", "influence of screen size"),
    (
        "fig14",
        "influence of number of detection attempts (voting)",
    ),
    ("fig15", "influence of number of training instances"),
    ("fig16", "influence of sampling rate"),
    ("ambient", "Sec. VIII-I: influence of ambient light"),
    ("fig17", "rejection rate vs forgery-processing delay"),
    // Extensions beyond the paper's figures (ablations & sensitivity):
    (
        "baselines",
        "LOF detector vs naive timestamp / fixed correlation",
    ),
    (
        "ablation",
        "feature-subset ablation: z1,z2 vs z3,z4 vs full",
    ),
    (
        "metering",
        "callee camera metering mode: multi-zone vs spot",
    ),
    ("network", "one-way delay x packet loss sensitivity grid"),
    ("panel", "panel technology: LED vs LCD vs OLED"),
    (
        "preproc",
        "preprocessing-chain variants: median/detrend/no-threshold",
    ),
    ("related", "Lumen vs FaceLive-style vs flashing challenge"),
    (
        "probe",
        "active luminance challenge-response: FRR/FAR vs amplitude and forgery delay",
    ),
    (
        "resilience",
        "FRR/FAR and abstention under burst loss / freeze / clock skew",
    ),
    (
        "overload",
        "multi-session serving: shed fraction, latency and verdict integrity vs. load",
    ),
    (
        "chaos",
        "kill/restore recovery under storage faults, snapshot rot and poisoned clips",
    ),
    (
        "daemon",
        "lumend loopback load generation: honest clients vs a hostile cast over real sockets",
    ),
    (
        "dsoak",
        "daemon kill/restore soak: byte-identical verdict streams across >=3 mid-traffic kills",
    ),
    ("roc", "ROC curves and AUC per user and pooled"),
    ("cliplen", "clip-length sensitivity (8-30 s)"),
    ("occlusion", "TAR vs occlusion/burst disturbance intensity"),
    (
        "overhead",
        "Sec. IX analogue: per-stage computation overhead breakdown",
    ),
];

fn run_one(id: &str, json: bool) -> ExpResult<String> {
    macro_rules! emit {
        ($result:expr) => {{
            let r = $result;
            if json {
                Ok(serde_json::to_string_pretty(&r)?)
            } else {
                Ok(r.print())
            }
        }};
    }
    match id {
        "fig3" => emit!(feasibility::run()?),
        "fig6" => emit!(spectrum::run()?),
        "fig7" => emit!(pipeline_stages::run()?),
        "fig9" => emit!(lof_example::run()?),
        "fig11" => emit!(overall::run(overall::OverallOpts::default())?),
        "fig12" => emit!(threshold_sweep::run(threshold_sweep::SweepOpts::default())?),
        "fig13" => emit!(screen_size::run(screen_size::ScreenOpts::default())?),
        "fig14" => emit!(voting::run(voting::VotingOpts::default())?),
        "fig15" => emit!(training_size::run(training_size::TrainingOpts::default())?),
        "fig16" => emit!(sampling_rate::run(sampling_rate::RateOpts::default())?),
        "ambient" => emit!(ambient::run(ambient::AmbientOpts::default())?),
        "fig17" => emit!(forgery_delay::run(forgery_delay::DelayOpts::default())?),
        "baselines" => emit!(baselines::run(baselines::BaselineOpts::default())?),
        "ablation" => emit!(ablation::run(ablation::AblationOpts::default())?),
        "metering" => emit!(metering::run(metering::MeteringOpts::default())?),
        "network" => emit!(network::run(network::NetworkOpts::default())?),
        "panel" => emit!(panel::run(panel::PanelOpts::default())?),
        "preproc" => emit!(preproc_ablation::run(
            preproc_ablation::PreprocOpts::default()
        )?),
        "related" => emit!(related_work::run(related_work::RelatedWorkOpts::default())?),
        "probe" => emit!(probe::run(probe::ProbeOpts::default())?),
        "resilience" => emit!(resilience::run(resilience::ResilienceOpts::default())?),
        "overload" => emit!(overload::run(overload::OverloadOpts::default())?),
        "chaos" => emit!(chaos::run(chaos::ChaosOpts::default())?),
        "daemon" => emit!(daemon::run(daemon::DaemonOpts::default())?),
        "dsoak" => emit!(dsoak::run(dsoak::DsoakOpts::default())?),
        "roc" => emit!(roc_analysis::run(roc_analysis::RocOpts::default())?),
        "cliplen" => emit!(clip_length::run(clip_length::ClipLengthOpts::default())?),
        "occlusion" => emit!(occlusion::run(occlusion::OcclusionOpts::default())?),
        "overhead" => emit!(overhead::run(overhead::OverheadOpts::default())?),
        other => Err(format!("unknown experiment id `{other}` (try `list`)").into()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let id = args.iter().find(|a| !a.starts_with("--")).cloned();
    let id = match id {
        Some(id) => id,
        None => {
            eprintln!("usage: lumen-experiments <id|all|list> [--json]");
            return ExitCode::FAILURE;
        }
    };
    if id == "list" {
        for (id, desc) in IDS {
            println!("{id:8} {desc}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<&str> = if id == "all" {
        IDS.iter().map(|(i, _)| *i).collect()
    } else {
        vec![id.as_str()]
    };
    for id in ids {
        eprintln!("[lumen-experiments] running {id}...");
        match run_one(id, json) {
            Ok(output) => println!("{output}"),
            Err(e) => {
                eprintln!("experiment {id} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
