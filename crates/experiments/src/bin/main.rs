//! Command-line entry point: regenerate any table/figure of the paper.
//!
//! ```text
//! lumen-experiments <id> [--json]
//! lumen-experiments all
//! lumen-experiments list
//! ```

use lumen_experiments::*;
use serde::Serialize;
use std::process::ExitCode;

const IDS: &[(&str, &str)] = &[
    (
        "fig3",
        "feasibility: nasal-bridge luminance under black/white screen",
    ),
    ("fig6", "spectra of face luminance w/ and w/o screen change"),
    ("fig7", "preprocessing chain stage by stage"),
    ("fig9", "LOF classification example with score grid"),
    (
        "fig11",
        "overall TAR (own/others' training) and TRR per user",
    ),
    ("fig12", "FAR/FRR vs decision threshold, EER"),
    ("fig13", "influence of screen size"),
    (
        "fig14",
        "influence of number of detection attempts (voting)",
    ),
    ("fig15", "influence of number of training instances"),
    ("fig16", "influence of sampling rate"),
    ("ambient", "Sec. VIII-I: influence of ambient light"),
    ("fig17", "rejection rate vs forgery-processing delay"),
    // Extensions beyond the paper's figures (ablations & sensitivity):
    (
        "baselines",
        "LOF detector vs naive timestamp / fixed correlation",
    ),
    (
        "ablation",
        "feature-subset ablation: z1,z2 vs z3,z4 vs full",
    ),
    (
        "metering",
        "callee camera metering mode: multi-zone vs spot",
    ),
    ("network", "one-way delay x packet loss sensitivity grid"),
    ("panel", "panel technology: LED vs LCD vs OLED"),
    (
        "preproc",
        "preprocessing-chain variants: median/detrend/no-threshold",
    ),
    ("related", "Lumen vs FaceLive-style vs flashing challenge"),
    (
        "probe",
        "active luminance challenge-response: FRR/FAR vs amplitude and forgery delay",
    ),
    (
        "resilience",
        "FRR/FAR and abstention under burst loss / freeze / clock skew",
    ),
    (
        "overload",
        "multi-session serving: shed fraction, latency and verdict integrity vs. load",
    ),
    (
        "chaos",
        "kill/restore recovery under storage faults, snapshot rot and poisoned clips",
    ),
    (
        "daemon",
        "lumend loopback load generation: honest clients vs a hostile cast over real sockets",
    ),
    (
        "dsoak",
        "daemon kill/restore soak: byte-identical verdict streams across >=3 mid-traffic kills",
    ),
    (
        "fleet",
        "sharded fleet: 10k-100k sessions/shards, admission, stealing, snapshot parity",
    ),
    ("roc", "ROC curves and AUC per user and pooled"),
    ("cliplen", "clip-length sensitivity (8-30 s)"),
    ("occlusion", "TAR vs occlusion/burst disturbance intensity"),
    (
        "overhead",
        "Sec. IX analogue: per-stage computation overhead breakdown",
    ),
];

fn run_one(id: &str, json: bool) -> ExpResult<String> {
    macro_rules! emit {
        ($result:expr) => {{
            let r = $result;
            if json {
                Ok(serde_json::to_string_pretty(&r)?)
            } else {
                Ok(r.print())
            }
        }};
    }
    match id {
        "fig3" => emit!(feasibility::run()?),
        "fig6" => emit!(spectrum::run()?),
        "fig7" => emit!(pipeline_stages::run()?),
        "fig9" => emit!(lof_example::run()?),
        "fig11" => emit!(overall::run(overall::OverallOpts::default())?),
        "fig12" => emit!(threshold_sweep::run(threshold_sweep::SweepOpts::default())?),
        "fig13" => emit!(screen_size::run(screen_size::ScreenOpts::default())?),
        "fig14" => emit!(voting::run(voting::VotingOpts::default())?),
        "fig15" => emit!(training_size::run(training_size::TrainingOpts::default())?),
        "fig16" => emit!(sampling_rate::run(sampling_rate::RateOpts::default())?),
        "ambient" => emit!(ambient::run(ambient::AmbientOpts::default())?),
        "fig17" => emit!(forgery_delay::run(forgery_delay::DelayOpts::default())?),
        "baselines" => emit!(baselines::run(baselines::BaselineOpts::default())?),
        "ablation" => emit!(ablation::run(ablation::AblationOpts::default())?),
        "metering" => emit!(metering::run(metering::MeteringOpts::default())?),
        "network" => emit!(network::run(network::NetworkOpts::default())?),
        "panel" => emit!(panel::run(panel::PanelOpts::default())?),
        "preproc" => emit!(preproc_ablation::run(
            preproc_ablation::PreprocOpts::default()
        )?),
        "related" => emit!(related_work::run(related_work::RelatedWorkOpts::default())?),
        "probe" => emit!(probe::run(probe::ProbeOpts::default())?),
        "resilience" => emit!(resilience::run(resilience::ResilienceOpts::default())?),
        "overload" => emit!(overload::run(overload::OverloadOpts::default())?),
        "chaos" => emit!(chaos::run(chaos::ChaosOpts::default())?),
        "daemon" => emit!(daemon::run(daemon::DaemonOpts::default())?),
        "dsoak" => emit!(dsoak::run(dsoak::DsoakOpts::default())?),
        "fleet" => {
            let started = std::time::Instant::now();
            let r = fleet::run(fleet::FleetOpts::default())?;
            let elapsed = started.elapsed().as_secs_f64();
            write_fleet_bench(&r, elapsed)?;
            emit!(r)
        }
        "roc" => emit!(roc_analysis::run(roc_analysis::RocOpts::default())?),
        "cliplen" => emit!(clip_length::run(clip_length::ClipLengthOpts::default())?),
        "occlusion" => emit!(occlusion::run(occlusion::OcclusionOpts::default())?),
        "overhead" => emit!(overhead::run(overhead::OverheadOpts::default())?),
        other => Err(format!("unknown experiment id `{other}` (try `list`)").into()),
    }
}

/// A `lumen-bench`-schema metric row for `BENCH_fleet.json`.
#[derive(Serialize)]
struct FleetBenchMetric {
    name: String,
    value: f64,
    unit: String,
    kind: String,
    budget: Option<f64>,
}

/// A `lumen-bench`-schema report wrapper for `BENCH_fleet.json`.
#[derive(Serialize)]
struct FleetBenchReport {
    schema_version: u64,
    label: String,
    metrics: Vec<FleetBenchMetric>,
}

/// Writes `BENCH_fleet.json`: the fleet sweep's gate rows in the
/// `lumen-bench` report schema, so the perf gate can consume the sweep
/// directly (`lumen-bench check --baseline BENCH_fleet.json --current ...`).
fn write_fleet_bench(r: &fleet::FleetResult, elapsed_s: f64) -> ExpResult<()> {
    let metric = |name: &str, value: f64, unit: &str, kind: &str| FleetBenchMetric {
        name: name.to_string(),
        value,
        unit: unit.to_string(),
        kind: kind.to_string(),
        budget: None,
    };
    let flag = |b: bool| f64::from(u8::from(b));
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let swept: u64 = r.rows.iter().map(|row| row.offered).sum();
    let sessions_per_core = swept as f64 / elapsed_s.max(1e-9) / cores as f64;
    let worst = r.rows.last();
    let mut metrics = vec![metric(
        "fleet.sessions_per_core",
        sessions_per_core,
        "sessions/s",
        "timing",
    )];
    if let Some(worst) = worst {
        metrics.push(metric(
            "fleet.p99_latency_ticks",
            worst.p99_latency_ticks,
            "ticks",
            "exact",
        ));
        metrics.push(metric(
            "fleet.shed_fraction",
            worst.shed_fraction,
            "fraction",
            "exact",
        ));
    }
    metrics.push(metric(
        "fleet.steals",
        r.rows.iter().map(|row| row.steals).sum::<u64>() as f64,
        "count",
        "exact",
    ));
    metrics.push(metric(
        "fleet.accounting_ok",
        flag(r.rows.iter().all(|row| row.accounting_ok)),
        "bool",
        "exact",
    ));
    metrics.push(metric("fleet.parity_ok", flag(r.parity_ok), "bool", "exact"));
    metrics.push(metric(
        "fleet.threaded_ok",
        flag(r.threaded_ok),
        "bool",
        "exact",
    ));
    metrics.push(metric(
        "fleet.snapshot_ok",
        flag(r.snapshot_ok),
        "bool",
        "exact",
    ));
    metrics.push(metric(
        "fleet.conservation_ok",
        flag(r.conservation_ok),
        "bool",
        "exact",
    ));
    let report = FleetBenchReport {
        schema_version: 1,
        label: "fleet".to_string(),
        metrics,
    };
    let json = serde_json::to_string_pretty(&report)?;
    std::fs::write("BENCH_fleet.json", json + "\n")?;
    eprintln!("[lumen-experiments] wrote BENCH_fleet.json");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let id = args.iter().find(|a| !a.starts_with("--")).cloned();
    let id = match id {
        Some(id) => id,
        None => {
            eprintln!("usage: lumen-experiments <id|all|list> [--json]");
            return ExitCode::FAILURE;
        }
    };
    if id == "list" {
        for (id, desc) in IDS {
            println!("{id:8} {desc}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<&str> = if id == "all" {
        IDS.iter().map(|(i, _)| *i).collect()
    } else {
        vec![id.as_str()]
    };
    for id in ids {
        eprintln!("[lumen-experiments] running {id}...");
        match run_one(id, json) {
            Ok(output) => println!("{output}"),
            Err(e) => {
                eprintln!("experiment {id} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
