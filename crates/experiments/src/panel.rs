//! Panel-technology ablation (extension; Sec. II-D claims the insight holds
//! "for all types of screens including LED, LCD, and OLED since they all
//! reduce the amount of emitted light when displaying darker scenes").

use crate::runner::{pct, render_table, user_features};
use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_core::dataset::split_train_test;
use lumen_core::detector::Detector;
use lumen_core::metrics::Confusion;
use lumen_core::Config;
use lumen_video::screen::{PanelKind, Screen};
use lumen_video::synth::SynthConfig;
use serde::{Deserialize, Serialize};

/// Options for the panel ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PanelOpts {
    /// Volunteers per panel kind.
    pub users: usize,
    /// Clips per role per volunteer.
    pub clips: usize,
    /// Training instances.
    pub train_count: usize,
}

impl Default for PanelOpts {
    fn default() -> Self {
        PanelOpts {
            users: 3,
            clips: 24,
            train_count: 16,
        }
    }
}

/// One panel kind's row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelRow {
    /// Panel label.
    pub panel: String,
    /// Relative luminous efficiency.
    pub efficiency: f64,
    /// Mean TAR.
    pub tar: f64,
    /// Mean TRR.
    pub trr: f64,
}

/// The panel-ablation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelResult {
    /// One row per panel kind.
    pub rows: Vec<PanelRow>,
}

impl PanelResult {
    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.panel.clone(),
                    format!("{:.2}", r.efficiency),
                    pct(r.tar),
                    pct(r.trr),
                ]
            })
            .collect();
        render_table(
            "Panel ablation — LED vs LCD vs OLED (27\", 85% brightness)",
            &["panel", "efficiency", "TAR", "TRR"],
            &rows,
        )
    }
}

/// Runs the panel ablation.
///
/// # Errors
///
/// Propagates simulation and detection errors.
pub fn run(opts: PanelOpts) -> ExpResult<PanelResult> {
    let config = Config::default();
    let mut rows = Vec::new();
    for (label, kind) in [
        ("LED", PanelKind::Led),
        ("LCD", PanelKind::Lcd),
        ("OLED", PanelKind::Oled),
    ] {
        let screen = Screen {
            kind,
            ..Screen::dell_27in()
        };
        let builder = ScenarioBuilder::default().with_conditions(SynthConfig {
            screen,
            ..SynthConfig::default()
        });
        let mut c = Confusion::new();
        for u in 0..opts.users {
            let (legit, attack) = user_features(&builder, u, opts.clips, &config)?;
            let (train, test) = split_train_test(&legit, opts.train_count, 65 + u as u64);
            let det = Detector::train(&train, config)?;
            for f in &test {
                c.record(true, det.judge(f)?.accepted);
            }
            for f in &attack {
                c.record(false, det.judge(f)?.accepted);
            }
        }
        rows.push(PanelRow {
            panel: label.to_string(),
            efficiency: kind.efficiency(),
            tar: c.tar(),
            trr: c.trr(),
        });
    }
    Ok(PanelResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_panel_kinds_defend() {
        let r = run(PanelOpts {
            users: 2,
            clips: 12,
            train_count: 8,
        })
        .unwrap();
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert!(
                row.tar > 0.6 && row.trr > 0.6,
                "{}: TAR {} TRR {}",
                row.panel,
                row.tar,
                row.trr
            );
        }
    }
}
