//! Resilience under channel faults (robustness extension): how do bursty
//! loss, freeze episodes and clock skew degrade the defense, and how much
//! does the signal-quality gate recover?
//!
//! Each condition trains on clean clips (the enrolment happens on a good
//! link) and evaluates on an impaired link, comparing the ungated detector
//! (every clip yields a vote, however mangled the signal) against the
//! gated one (below-threshold clips abstain as inconclusive). FRR/FAR for
//! the gated path are computed over conclusive clips only; the abstention
//! rate is reported separately.

use crate::runner::{pct, render_table};
use crate::ExpResult;
use lumen_chat::fault::{BurstLoss, FaultPlan};
use lumen_chat::scenario::ScenarioBuilder;
use lumen_core::dataset;
use lumen_core::detector::{ClipOutcome, Detector};
use lumen_core::quality::QualityGate;
use lumen_core::Config;
use lumen_obs::Recorder;
use serde::{Deserialize, Serialize};

/// Options for the resilience sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceOpts {
    /// Volunteers per condition.
    pub users: usize,
    /// Clips per role per volunteer per condition.
    pub clips: usize,
    /// Clean training instances per volunteer.
    pub train_count: usize,
    /// Bad-state loss probabilities for the Gilbert–Elliott sweep.
    pub burst_losses: Vec<f64>,
    /// Freeze-episode durations to sweep, seconds.
    pub freeze_durations: Vec<f64>,
    /// Clock-skew factors to sweep.
    pub skews: Vec<f64>,
}

impl Default for ResilienceOpts {
    fn default() -> Self {
        ResilienceOpts {
            users: 2,
            clips: 14,
            train_count: 10,
            burst_losses: vec![0.5, 0.9],
            freeze_durations: vec![1.0, 3.0],
            skews: vec![0.02, 0.08],
        }
    }
}

/// One impairment condition's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceRow {
    /// Human-readable condition label.
    pub condition: String,
    /// FRR of the ungated detector (detection errors count as rejections).
    pub frr_ungated: f64,
    /// FRR of the gated detector over conclusive legitimate clips.
    pub frr_gated: f64,
    /// FAR of the gated detector over conclusive attack clips.
    pub far_gated: f64,
    /// Fraction of all clips (both roles) the gate abstained on.
    pub inconclusive: f64,
}

/// The resilience result: one row per condition plus the fault/gate
/// counters aggregated across the whole sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceResult {
    /// Rows for the clean baseline and each impairment condition.
    pub rows: Vec<ResilienceRow>,
    /// Selected lumen-obs counters accumulated over the sweep
    /// (`detect.inconclusive`, `chat.burst_losses`, ...).
    pub counters: Vec<(String, u64)>,
}

impl ResilienceResult {
    /// Renders the result as an aligned table plus a counter footer.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.condition.clone(),
                    pct(r.frr_ungated),
                    pct(r.frr_gated),
                    pct(r.far_gated),
                    pct(r.inconclusive),
                ]
            })
            .collect();
        let mut out = render_table(
            "Resilience — FRR/FAR and abstention under channel faults",
            &[
                "condition",
                "FRR ungated",
                "FRR gated",
                "FAR gated",
                "inconclusive",
            ],
            &rows,
        );
        out.push('\n');
        for (name, value) in &self.counters {
            out.push_str(&format!("{name}: {value}\n"));
        }
        out
    }
}

/// Per-condition tally, pooled across users.
#[derive(Default)]
struct Tally {
    legit_total: usize,
    legit_rejected_ungated: usize,
    legit_conclusive: usize,
    legit_rejected_gated: usize,
    attack_conclusive: usize,
    attack_accepted_gated: usize,
    inconclusive: usize,
    total: usize,
}

impl Tally {
    fn row(&self, condition: String) -> ResilienceRow {
        let frac = |num: usize, den: usize| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        ResilienceRow {
            condition,
            frr_ungated: frac(self.legit_rejected_ungated, self.legit_total),
            frr_gated: frac(self.legit_rejected_gated, self.legit_conclusive),
            far_gated: frac(self.attack_accepted_gated, self.attack_conclusive),
            inconclusive: frac(self.inconclusive, self.total),
        }
    }
}

/// The sweep's condition list: a clean baseline, then one condition per
/// sweep point.
fn conditions(opts: &ResilienceOpts) -> Vec<(String, FaultPlan)> {
    let mut out = vec![("clean".to_string(), FaultPlan::none())];
    for &loss_bad in &opts.burst_losses {
        out.push((
            format!("burst {:.0}%", loss_bad * 100.0),
            FaultPlan {
                burst: BurstLoss::bursty(0.08, 6.0, loss_bad),
                ..FaultPlan::none()
            },
        ));
    }
    for &duration in &opts.freeze_durations {
        out.push((
            format!("freeze {duration:.0} s"),
            FaultPlan {
                freeze_prob: 0.01,
                freeze_duration: duration,
                ..FaultPlan::none()
            },
        ));
    }
    for &skew in &opts.skews {
        out.push((
            format!("skew {:.0}%", skew * 100.0),
            FaultPlan {
                skew,
                ..FaultPlan::none()
            },
        ));
    }
    out
}

/// Runs the resilience sweep.
///
/// # Errors
///
/// Propagates simulation, training and gated-detection errors. Ungated
/// detection errors on mangled clips are *not* propagated — a pipeline
/// that crashes on a degraded clip has rejected the caller, so they count
/// as rejections (that brittleness is exactly what the gate removes).
pub fn run(opts: ResilienceOpts) -> ExpResult<ResilienceResult> {
    let config = Config::default();
    let gate = QualityGate::default();
    let (recorder, sink) = Recorder::in_memory();

    // Enrol each volunteer once, on a clean link.
    let clean = ScenarioBuilder::default();
    let mut detectors = Vec::new();
    for u in 0..opts.users {
        let train = dataset::legitimate_features(
            &clean,
            u,
            opts.train_count,
            700_000 + u as u64 * 1_000,
            &config,
        )?;
        detectors.push(Detector::train(&train, config)?.with_recorder(recorder.clone()));
    }

    let mut rows = Vec::new();
    for (ci, (label, plan)) in conditions(&opts).into_iter().enumerate() {
        let builder = ScenarioBuilder::default()
            .with_faults(plan)
            .with_recorder(recorder.clone());
        let mut tally = Tally::default();
        for (u, det) in detectors.iter().enumerate() {
            let seed_base = 800_000 + (ci as u64) * 10_000 + (u as u64) * 1_000;
            for i in 0..opts.clips as u64 {
                let pair = builder.legitimate(u, seed_base + i)?;
                tally.legit_total += 1;
                tally.total += 1;
                let accepted_ungated = det.detect(&pair).map(|d| d.accepted).unwrap_or(false);
                if !accepted_ungated {
                    tally.legit_rejected_ungated += 1;
                }
                match det.detect_gated(&pair, &gate)? {
                    ClipOutcome::Conclusive(d) => {
                        tally.legit_conclusive += 1;
                        if !d.accepted {
                            tally.legit_rejected_gated += 1;
                        }
                    }
                    ClipOutcome::Inconclusive(_) => tally.inconclusive += 1,
                }
                let pair = builder.reenactment(u, seed_base + 500 + i)?;
                tally.total += 1;
                match det.detect_gated(&pair, &gate)? {
                    ClipOutcome::Conclusive(d) => {
                        tally.attack_conclusive += 1;
                        if d.accepted {
                            tally.attack_accepted_gated += 1;
                        }
                    }
                    ClipOutcome::Inconclusive(_) => tally.inconclusive += 1,
                }
            }
        }
        rows.push(tally.row(label));
    }

    let registry = sink.registry();
    let counters = [
        "detect.inconclusive",
        "detector.accepted",
        "detector.rejected",
        "chat.burst_losses",
        "chat.freeze_losses",
        "chat.random_losses",
        "quality.repaired_samples",
    ]
    .iter()
    .map(|&name| (name.to_string(), registry.counter(name)))
    .collect();

    Ok(ResilienceResult { rows, counters })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ResilienceOpts {
        ResilienceOpts {
            users: 1,
            clips: 6,
            train_count: 10,
            burst_losses: vec![0.9],
            freeze_durations: vec![],
            skews: vec![],
        }
    }

    #[test]
    fn sweep_produces_rows_and_counters() {
        let r = run(small()).unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0].condition, "clean");
        assert!(r.rows[0].inconclusive < 0.2, "clean link abstains rarely");
        let losses = r
            .counters
            .iter()
            .find(|(n, _)| n == "chat.burst_losses")
            .unwrap()
            .1;
        assert!(losses > 0, "burst condition must lose packets");
        let rendered = r.print();
        assert!(rendered.contains("FRR gated"));
        assert!(rendered.contains("chat.burst_losses"));
    }

    #[test]
    fn is_deterministic() {
        let a = run(small()).unwrap();
        let b = run(small()).unwrap();
        assert_eq!(a.rows, b.rows);
    }
}
