//! Sec. IX analogue — per-stage computation overhead of the detection
//! pipeline.
//!
//! The paper reports how long each step of the defense takes on a laptop
//! and a phone (face tracking dominates; the luminance analysis itself is
//! cheap). This experiment reproduces that breakdown for the simulator's
//! pipeline: a trained detector runs over a batch of clips with a live
//! [`lumen_obs`] recorder per worker thread, and the merged registry yields
//! the per-stage latency table — preprocess, change detection, feature
//! extraction and LOF scoring under the whole-clip `detect` span.

use crate::runner::parallel_map_instrumented;
use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_chat::trace::TracePair;
use lumen_core::detector::Detector;
use lumen_core::Config;
use lumen_obs::{stage, Snapshot, SpanRow};
use serde::{Deserialize, Serialize};

/// The batch pipeline stages, in execution order, that make up the
/// machine-readable stage table.
pub const STAGES: &[&str] = &[
    stage::DETECT,
    stage::PREPROCESS,
    stage::CHANGE_DETECTION,
    stage::FEATURE_EXTRACTION,
    stage::LOF_SCORING,
];

/// Options for the overhead experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadOpts {
    /// Volunteer whose clips are processed.
    pub user: usize,
    /// Training clips for the detector.
    pub train_clips: usize,
    /// Clips detected under instrumentation (half legitimate, half attack).
    pub detect_clips: usize,
}

impl Default for OverheadOpts {
    fn default() -> Self {
        OverheadOpts {
            user: 0,
            train_clips: 15,
            detect_clips: 30,
        }
    }
}

/// The overhead-breakdown result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadResult {
    /// Clips processed under instrumentation.
    pub clips: usize,
    /// The per-stage latency table in pipeline execution order — the
    /// machine-readable core of the Sec. IX breakdown, consumed directly
    /// by the `lumen-bench` perf harness.
    pub stages: Vec<SpanRow>,
    /// Aggregated observability snapshot: per-stage latency distributions,
    /// verdict counters and feature-value histograms.
    pub snapshot: Snapshot,
}

impl OverheadResult {
    /// Renders the per-stage latency table and pipeline counters.
    pub fn print(&self) -> String {
        let mut out = format!(
            "## Sec. IX — per-stage computation overhead ({} clips)\n",
            self.clips
        );
        out.push_str(&lumen_obs::report::render_text(&self.snapshot));
        out
    }
}

/// Runs the overhead experiment.
///
/// # Errors
///
/// Propagates simulation, training and detection errors.
pub fn run(opts: OverheadOpts) -> ExpResult<OverheadResult> {
    let builder = ScenarioBuilder::default();
    let training: Vec<TracePair> = (0..opts.train_clips)
        .map(|i| builder.legitimate(opts.user, 700_000 + i as u64))
        .collect::<Result<_, _>>()?;
    let detector = Detector::train_from_traces(&training, Config::default())?;

    let pairs: Vec<TracePair> = (0..opts.detect_clips)
        .map(|i| {
            if i % 2 == 0 {
                builder.legitimate(opts.user, 710_000 + i as u64)
            } else {
                builder.reenactment(opts.user, 720_000 + i as u64)
            }
        })
        .collect::<Result<_, _>>()?;
    let (_verdicts, registry) = parallel_map_instrumented(pairs, |pair, recorder| {
        // The worker's recorder attaches per clip; the clone happens outside
        // any span so it never pollutes the measured stage latencies.
        let instrumented = detector.clone().with_recorder(recorder.clone());
        Ok(instrumented.detect(pair)?)
    })?;
    let snapshot = registry.snapshot();
    let stages = STAGES
        .iter()
        .filter_map(|name| snapshot.spans.iter().find(|s| s.name == *name).cloned())
        .collect();
    Ok(OverheadResult {
        clips: opts.detect_clips,
        stages,
        snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_obs::stage;

    #[test]
    fn overhead_breaks_down_every_stage() {
        let r = run(OverheadOpts {
            user: 0,
            train_clips: 10,
            detect_clips: 6,
        })
        .unwrap();
        assert_eq!(r.clips, 6);
        // The typed stage table lists every batch pipeline stage in order.
        assert_eq!(
            r.stages.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            STAGES
        );
        assert!(r.stages.iter().all(|s| s.count == 6));
        // Every batch pipeline stage appears with one span per clip.
        for name in [
            stage::DETECT,
            stage::PREPROCESS,
            stage::CHANGE_DETECTION,
            stage::FEATURE_EXTRACTION,
            stage::LOF_SCORING,
        ] {
            let row = r
                .snapshot
                .spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing stage {name}"));
            assert_eq!(row.count, 6, "stage {name}");
            assert!(row.total_ms >= 0.0);
        }
        // Verdict counters cover every clip.
        let accepted: u64 = r
            .snapshot
            .counters
            .iter()
            .filter(|c| c.name == "detector.accepted" || c.name == "detector.rejected")
            .map(|c| c.value)
            .sum();
        assert_eq!(accepted, 6);
        let table = r.print();
        assert!(table.contains("Stage latency"));
        assert!(table.contains(stage::LOF_SCORING));
    }
}
