//! Overload robustness (serving extension): how does the supervised
//! multi-session runtime degrade when offered load exceeds the detection
//! budget?
//!
//! The sweep drives an increasing number of concurrent chat sessions into
//! one [`lumen_serve::Supervisor`] whose budget saturates at a known
//! session count, and reports clip-latency percentiles, the shed
//! fraction, and two exactness checks per sweep point:
//!
//! * **accounting** — `served + shed == offered`, with every shed counted
//!   under an explicit reason (nothing is dropped silently), and
//! * **integrity** — every clip that *was* served produced exactly the
//!   outcome an unloaded, dedicated detector produces for the same clip
//!   of the same trace: shedding may skip work, but must never corrupt
//!   the work that happens.
//!
//! The heaviest sweep point is additionally torn down mid-clip into a
//! serde checkpoint and restored; the event stream must be byte-identical
//! to the uninterrupted run (`checkpoint_ok`).

use crate::runner::{pct, render_table};
use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_chat::trace::TracePair;
use lumen_core::detector::Detector;
use lumen_core::stream::StreamingDetector;
use lumen_core::Config;
use lumen_dsp::stats::quantile;
use lumen_obs::Recorder;
use lumen_serve::{
    ServeConfig, ServeStats, SessionEvent, SessionEventKind, Supervisor, SupervisorSnapshot,
};
use serde::{Deserialize, Serialize};

/// Options for the overload sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadOpts {
    /// Concurrent session counts to sweep.
    pub sessions: Vec<usize>,
    /// Clips each session streams.
    pub clips: usize,
    /// Clean training instances for the shared enrolment.
    pub train_count: usize,
    /// Per-session pending-clip queue depth.
    pub queue_clips: usize,
    /// Detections allowed per budget period.
    pub budget_clips: u64,
    /// Budget period length, ticks.
    pub budget_period_ticks: u64,
    /// Queued-clip deadline, ticks.
    pub deadline_ticks: u64,
}

impl Default for OverloadOpts {
    fn default() -> Self {
        // One detection per 30 ticks against 150-sample clips puts
        // saturation at 5 sessions, so the default sweep covers 0.4x, 1x
        // and 2x the saturating load.
        OverloadOpts {
            sessions: vec![2, 5, 10],
            clips: 3,
            train_count: 10,
            queue_clips: 2,
            budget_clips: 1,
            budget_period_ticks: 30,
            deadline_ticks: 150,
        }
    }
}

/// One sweep point's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadRow {
    /// Concurrent sessions driven into the supervisor.
    pub sessions: usize,
    /// Offered load as a multiple of the saturating load.
    pub load: f64,
    /// Clips completed by the sessions.
    pub offered: u64,
    /// Clips served to detection.
    pub served: u64,
    /// Clips shed (all reasons, each counted).
    pub shed: u64,
    /// `shed / offered`.
    pub shed_fraction: f64,
    /// Median served-clip latency, ticks from completion to verdict.
    pub p50_latency_ticks: f64,
    /// 99th-percentile served-clip latency, ticks.
    pub p99_latency_ticks: f64,
    /// Every served clip's outcome matched the unloaded reference run.
    pub integrity_ok: bool,
    /// `served + shed == offered` and the by-reason sheds sum up.
    pub accounting_ok: bool,
}

/// The overload result: one row per session count, the checkpoint-replay
/// verdict for the heaviest point, and supervisor counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadResult {
    /// Session count at which offered load equals the detection budget.
    pub saturation_sessions: f64,
    /// Rows for each swept session count.
    pub rows: Vec<OverloadRow>,
    /// The heaviest sweep point replayed through a mid-clip serde
    /// checkpoint/restore produced a byte-identical event stream.
    pub checkpoint_ok: bool,
    /// Selected lumen-obs counters accumulated over the sweep.
    pub counters: Vec<(String, u64)>,
}

impl OverloadResult {
    /// Renders the result as an aligned table plus a counter footer.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.sessions.to_string(),
                    format!("{:.1}x", r.load),
                    r.offered.to_string(),
                    r.served.to_string(),
                    r.shed.to_string(),
                    pct(r.shed_fraction),
                    format!("{:.0}", r.p50_latency_ticks),
                    format!("{:.0}", r.p99_latency_ticks),
                    ok(r.integrity_ok),
                    ok(r.accounting_ok),
                ]
            })
            .collect();
        let mut out = render_table(
            "Overload — shedding, latency and verdict integrity vs. offered load",
            &[
                "sessions",
                "load",
                "offered",
                "served",
                "shed",
                "shed frac",
                "p50 ticks",
                "p99 ticks",
                "integrity",
                "accounting",
            ],
            &rows,
        );
        out.push('\n');
        out.push_str(&format!(
            "saturation: {:.1} sessions; checkpoint replay identical: {}\n",
            self.saturation_sessions,
            ok(self.checkpoint_ok)
        ));
        for (name, value) in &self.counters {
            out.push_str(&format!("{name}: {value}\n"));
        }
        out
    }
}

fn ok(flag: bool) -> String {
    if flag { "ok" } else { "FAIL" }.to_string()
}

/// Everything one driven supervisor run produces.
struct RunOutput {
    events: Vec<SessionEvent>,
    stats: ServeStats,
    latencies: Vec<u64>,
}

/// Runs the overload sweep.
///
/// # Errors
///
/// Propagates scenario, training, detection and serving errors.
pub fn run(opts: OverloadOpts) -> ExpResult<OverloadResult> {
    let (recorder, sink) = Recorder::in_memory();
    let chats = ScenarioBuilder::default();
    let training: Vec<TracePair> = (0..opts.train_count)
        .map(|i| chats.legitimate(0, 90_000 + i as u64))
        .collect::<Result<_, _>>()?;
    let detector = Detector::train_from_traces(&training, Config::default())?;

    let clip_samples = fresh_stream(&detector)?.clip_samples();
    let saturation_sessions =
        clip_samples as f64 * opts.budget_clips as f64 / opts.budget_period_ticks as f64;

    let mut rows = Vec::new();
    let mut checkpoint_ok = true;
    let heaviest = opts.sessions.iter().copied().max().unwrap_or(0);
    for &count in &opts.sessions {
        // Per-session workloads, reused identically by the reference run,
        // the supervised run and the checkpoint replay.
        let traces: Vec<Vec<TracePair>> = (0..count)
            .map(|si| {
                (0..opts.clips)
                    .map(|clip| chats.legitimate(0, 91_000 + clip as u64 * 1_000 + si as u64))
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<_, _>>()?;

        // Unloaded reference: each session gets a dedicated detector with
        // no contention; its outcomes are the integrity ground truth.
        let mut expected = Vec::with_capacity(count);
        for session_traces in &traces {
            let mut stream = fresh_stream(&detector)?;
            let mut verdicts = Vec::with_capacity(opts.clips);
            for pair in session_traces {
                for i in 0..pair.tx.samples().len() {
                    if let Some(v) = stream.push(pair.tx.samples()[i], pair.rx.samples()[i])? {
                        verdicts.push(v);
                    }
                }
            }
            expected.push(verdicts);
        }

        let out = drive(&opts, count, &traces, &detector, Some(&recorder), None)?;
        let accounting_ok = out.stats.offered_clips == (count * opts.clips) as u64
            && out.stats.served_clips + out.stats.shed_clips == out.stats.offered_clips
            && out.stats.shed_queue_full
                + out.stats.shed_deadline
                + out.stats.shed_breaker
                + out.stats.shed_failed
                + out.stats.shed_closed
                == out.stats.shed_clips;
        let integrity_ok = integrity(&out.events, &expected);

        let mut latencies: Vec<f64> = out.latencies.iter().map(|&t| t as f64).collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        rows.push(OverloadRow {
            sessions: count,
            load: count as f64 / saturation_sessions,
            offered: out.stats.offered_clips,
            served: out.stats.served_clips,
            shed: out.stats.shed_clips,
            shed_fraction: out.stats.shed_clips as f64 / out.stats.offered_clips.max(1) as f64,
            p50_latency_ticks: quantile(&latencies, 0.5).unwrap_or(0.0),
            p99_latency_ticks: quantile(&latencies, 0.99).unwrap_or(0.0),
            integrity_ok,
            accounting_ok,
        });

        // Checkpoint replay of the heaviest point: tear the supervisor
        // down mid-clip into a serde snapshot, restore, and require the
        // event stream and counters to be indistinguishable.
        if count == heaviest && count > 0 {
            let sample = clip_samples * 7 / 15; // mid-clip, partial buffers live
            let clip = opts.clips.saturating_sub(1).min(1);
            let replay = drive(&opts, count, &traces, &detector, None, Some((clip, sample)))?;
            checkpoint_ok =
                replay.events == out.events && replay.stats == out.stats && integrity_ok;
        }
    }

    let registry = sink.registry();
    let counters = ["serve.offered", "serve.served", "serve.shed"]
        .iter()
        .map(|&name| (name.to_string(), registry.counter(name)))
        .collect();

    Ok(OverloadResult {
        saturation_sessions,
        rows,
        checkpoint_ok,
        counters,
    })
}

fn fresh_stream(detector: &Detector) -> ExpResult<StreamingDetector> {
    Ok(StreamingDetector::new(detector.clone(), 15.0, 3)?)
}

fn serve_config(opts: &OverloadOpts, count: usize) -> ServeConfig {
    ServeConfig {
        max_sessions: count,
        queue_clips: opts.queue_clips,
        budget_clips: opts.budget_clips,
        budget_period_ticks: opts.budget_period_ticks,
        deadline_ticks: opts.deadline_ticks,
        ..ServeConfig::default()
    }
}

/// Drives one supervisor over the given per-session workloads. When
/// `checkpoint` is `Some((clip, sample))`, the supervisor is snapshotted
/// through serde, dropped, and restored at that point of the stream.
fn drive(
    opts: &OverloadOpts,
    count: usize,
    traces: &[Vec<TracePair>],
    detector: &Detector,
    recorder: Option<&Recorder>,
    checkpoint: Option<(usize, usize)>,
) -> ExpResult<RunOutput> {
    let mut sup = Supervisor::new(serve_config(opts, count))?;
    if let Some(recorder) = recorder {
        sup = sup.with_recorder(recorder.clone());
    }
    let mut ids = Vec::with_capacity(count);
    for _ in 0..count {
        let id = sup
            .admit(fresh_stream(detector)?)
            .session()
            .ok_or("admission rejected below max_sessions")?;
        ids.push(id);
    }

    let mut events = Vec::new();
    for clip in 0..opts.clips {
        let samples = traces
            .first()
            .and_then(|t| t.get(clip))
            .map_or(0, |p| p.tx.samples().len());
        for sample in 0..samples {
            for (si, &id) in ids.iter().enumerate() {
                let pair = &traces[si][clip];
                sup.offer(id, pair.tx.samples()[sample], pair.rx.samples()[sample])?;
            }
            sup.tick();
            if checkpoint == Some((clip, sample)) {
                events.extend(sup.drain_events());
                let config = sup.config().clone();
                let snap = sup.snapshot();
                let json = serde_json::to_string(&snap)?;
                drop(sup); // the "crash"
                let back: SupervisorSnapshot = serde_json::from_str(&json)?;
                sup = Supervisor::restore(config, &back, |_| {
                    StreamingDetector::new(detector.clone(), 15.0, 3)
                })?;
            }
        }
    }
    // Idle ticks drain the queues: every pending clip is served or sheds
    // on its deadline, so this terminates; the guard bounds it anyway.
    let mut guard = 0u64;
    while sup.pending_clips() > 0 {
        sup.tick();
        guard += 1;
        if guard > 1_000_000 {
            return Err("supervisor queues failed to drain".into());
        }
    }
    events.extend(sup.drain_events());
    Ok(RunOutput {
        stats: sup.stats().clone(),
        latencies: sup.latencies_ticks().to_vec(),
        events,
    })
}

/// Every served clip's outcome must equal the unloaded reference outcome
/// for the same clip index of the same session, and sessions that never
/// shed must match the reference verdict-for-verdict.
fn integrity(events: &[SessionEvent], expected: &[Vec<lumen_core::stream::ClipVerdict>]) -> bool {
    let mut shed_sessions = vec![false; expected.len()];
    for event in events {
        let si = event.session as usize;
        match &event.kind {
            SessionEventKind::Verdict(v) => {
                let Some(reference) = expected.get(si).and_then(|e| e.get(v.clip_index)) else {
                    return false;
                };
                if v.outcome != reference.outcome {
                    return false;
                }
            }
            SessionEventKind::Shed { .. } => {
                if let Some(flag) = shed_sessions.get_mut(si) {
                    *flag = true;
                }
            }
            SessionEventKind::Breaker(_)
            | SessionEventKind::ProbeRequested(_)
            | SessionEventKind::Probe(_) => {}
        }
    }
    // Unshed sessions saw no contention effects at all: their whole
    // verdict stream (status and watchdog included) must be identical.
    for (si, reference) in expected.iter().enumerate() {
        if shed_sessions[si] {
            continue;
        }
        let verdicts: Vec<_> = events
            .iter()
            .filter(|e| e.session as usize == si)
            .filter_map(|e| match &e.kind {
                SessionEventKind::Verdict(v) => Some(v.clone()),
                _ => None,
            })
            .collect();
        if verdicts != *reference {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> OverloadOpts {
        OverloadOpts {
            sessions: vec![1, 4],
            clips: 2,
            train_count: 10,
            queue_clips: 1,
            budget_clips: 1,
            budget_period_ticks: 75,
            deadline_ticks: 150,
        }
    }

    #[test]
    fn sweep_reports_exact_accounting_and_integrity() {
        let r = run(small()).unwrap();
        assert_eq!(r.rows.len(), 2);
        assert!((r.saturation_sessions - 2.0).abs() < 1e-9);
        for row in &r.rows {
            assert!(row.accounting_ok, "sessions={}", row.sessions);
            assert!(row.integrity_ok, "sessions={}", row.sessions);
            assert_eq!(row.offered, (row.sessions * 2) as u64);
        }
        // The unloaded point serves everything; the 2x point must shed.
        assert_eq!(r.rows[0].shed, 0);
        assert!(r.rows[1].shed > 0, "2x saturation must shed clips");
        assert!(r.checkpoint_ok, "checkpoint replay must be identical");
        let offered = r
            .counters
            .iter()
            .find(|(n, _)| n == "serve.offered")
            .unwrap()
            .1;
        assert_eq!(offered, 2 + 8, "both sweep points feed the recorder");
        let rendered = r.print();
        assert!(rendered.contains("shed frac"));
        assert!(rendered.contains("serve.shed"));
    }

    #[test]
    fn is_deterministic() {
        let a = run(small()).unwrap();
        let b = run(small()).unwrap();
        assert_eq!(a, b);
    }
}
