//! Regenerates every table and figure of the ICDCS 2020 evaluation.
//!
//! Each module reproduces one paper artifact (see DESIGN.md §5 for the
//! index) and exposes `run(...) -> Result<SomeResult>` plus a
//! `print()` renderer. The `lumen-experiments` binary dispatches on the
//! experiment id:
//!
//! ```text
//! lumen-experiments fig11       # overall TAR/TRR per user
//! lumen-experiments all         # everything, in paper order
//! lumen-experiments fig12 --json
//! ```
//!
//! All experiments are deterministic: scenario seeds are fixed constants,
//! so every run reproduces the committed numbers in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod ablation;
pub mod ambient;
pub mod baselines;
pub mod chaos;
pub mod clip_length;
pub mod daemon;
pub mod dsoak;
pub mod feasibility;
pub mod fleet;
pub mod forgery_delay;
pub mod lof_example;
pub mod metering;
pub mod network;
pub mod occlusion;
pub mod overall;
pub mod overhead;
pub mod overload;
pub mod panel;
pub mod pipeline_stages;
pub mod preproc_ablation;
pub mod probe;
pub mod related_work;
pub mod resilience;
pub mod roc_analysis;
pub mod runner;
pub mod sampling_rate;
pub mod screen_size;
pub mod spectrum;
pub mod threshold_sweep;
pub mod training_size;
pub mod voting;

/// Boxed error alias used across experiments.
pub type ExpError = Box<dyn std::error::Error + Send + Sync>;
/// Result alias used across experiments.
pub type ExpResult<T> = Result<T, ExpError>;
