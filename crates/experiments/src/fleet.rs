//! Fleet-scale serving (sharding extension): how far does the sharded
//! multi-supervisor runtime carry the per-session guarantees?
//!
//! The sweep drives 10k→100k short sessions through a [`lumen_fleet::Fleet`]
//! of hash-partitioned supervisor shards. Sessions arrive in waves (the
//! realistic shape of short video-chat calls arriving over time), each
//! streams exactly one clip, and every wave is drained before the next
//! begins, so the offered count is exact by construction. Per sweep
//! point the experiment reports served/shed counts, the shed fraction,
//! admission throttling, credit steals and clip-latency percentiles —
//! all deterministic tick-domain quantities — plus four exactness
//! checks that hold across the whole run:
//!
//! * **accounting** — `Σ served + Σ shed == Σ offered` summed across
//!   shards, with every shed counted under a reason and the event
//!   stream carrying exactly one event per offered clip;
//! * **conservation** — the work-stealing ledger
//!   `offered == served + shed + in_flight` holds on *every* tick;
//! * **parity** — at equal budgets (N shards × b vs one supervisor with
//!   N·b) and no shedding, per-session verdict streams are
//!   byte-identical to a single-supervisor reference, and the threaded
//!   per-core stepping path is byte-identical to the serial one;
//! * **snapshot** — a mid-clip kill into a [`FleetSnapshot`] through the
//!   checkpoint store restores shard-by-shard and replays the remainder
//!   byte-identically.
//!
//! The `lumen-experiments fleet` invocation additionally writes
//! `BENCH_fleet.json` (a `lumen-bench`-schema report) so the perf gate
//! can consume the sweep's exact rows directly.

use crate::runner::{pct, render_table};
use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_chat::trace::TracePair;
use lumen_core::detector::Detector;
use lumen_core::stream::StreamingDetector;
use lumen_core::Config;
use lumen_dsp::stats::quantile;
use lumen_fleet::{AdmissionConfig, Fleet, FleetAdmitOutcome, FleetConfig, FleetEvent, FleetSnapshot};
use lumen_obs::Recorder;
use lumen_serve::{CheckpointStore, MemStorage, ServeConfig, SessionEventKind, StoreConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Options for the fleet sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetOpts {
    /// Total session counts to sweep.
    pub sessions: Vec<usize>,
    /// Supervisor shards (fixed, not derived from the machine, so every
    /// exact metric is machine-independent).
    pub shards: usize,
    /// Smallest admission wave (concurrent sessions).
    pub min_wave: usize,
    /// Wave size grows with the sweep point: `sessions / wave_divisor`,
    /// floored at `min_wave` — heavier points offer heavier bursts.
    pub wave_divisor: usize,
    /// Clean training instances for the shared enrolment.
    pub train_count: usize,
    /// Distinct legitimate traces cycled across sessions.
    pub trace_pool: usize,
    /// Per-shard detections allowed per budget period.
    pub budget_clips: u64,
    /// Per-shard budget period, ticks.
    pub budget_period_ticks: u64,
    /// Per-session pending-clip queue depth.
    pub queue_clips: usize,
    /// Queued-clip deadline, ticks (the shed knife at overload).
    pub deadline_ticks: u64,
    /// Fleet admission bucket: burst capacity, sessions.
    pub admission_burst: u32,
    /// Fleet admission bucket: refill per tick.
    pub admission_refill: f64,
    /// Sessions in the single-wave parity run (fleet vs one supervisor
    /// at equal total budget, and threaded vs serial stepping).
    pub parity_sessions: usize,
    /// Sessions in the mid-clip kill/restore run.
    pub snapshot_sessions: usize,
    /// Credit donations allowed per tick.
    pub max_steals_per_tick: u64,
}

impl Default for FleetOpts {
    fn default() -> Self {
        // Per-shard capacity is one detection per 2 ticks against
        // 150-tick clips with a one-clip-interval deadline, i.e. 75
        // served clips per shard per wave: the 10k point's waves fit,
        // the 100k point's waves exceed it ~4x and must shed.
        FleetOpts {
            sessions: vec![10_000, 30_000, 100_000],
            shards: 8,
            min_wave: 256,
            wave_divisor: 40,
            train_count: 10,
            trace_pool: 16,
            budget_clips: 1,
            budget_period_ticks: 2,
            queue_clips: 2,
            deadline_ticks: 150,
            admission_burst: 256,
            admission_refill: 64.0,
            parity_sessions: 512,
            snapshot_sessions: 96,
            max_steals_per_tick: 8,
        }
    }
}

/// One sweep point's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRow {
    /// Total sessions driven through the fleet at this point.
    pub sessions: usize,
    /// Admission wave size (concurrent sessions).
    pub wave: usize,
    /// Clips completed by the sessions (== sessions by construction).
    pub offered: u64,
    /// Clips served to detection, summed across shards.
    pub served: u64,
    /// Clips shed, summed across shards, every one under a reason.
    pub shed: u64,
    /// `shed / offered`.
    pub shed_fraction: f64,
    /// Admission-bucket throttle events while the waves arrived.
    pub throttled: u64,
    /// Credits donated from idle shards to backlogged ones.
    pub steals: u64,
    /// Fleet ticks consumed by this point.
    pub ticks: u64,
    /// Median served-clip latency, ticks from completion to verdict.
    pub p50_latency_ticks: f64,
    /// 99th-percentile served-clip latency, ticks.
    pub p99_latency_ticks: f64,
    /// Exact cross-shard accounting held (counts and event stream).
    pub accounting_ok: bool,
}

/// The fleet result: one row per sweep point plus the run-wide checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetResult {
    /// Shards in every fleet of the run.
    pub shards: usize,
    /// Samples per clip under the enrolment's clip geometry.
    pub clip_samples: usize,
    /// Rows for each swept session count.
    pub rows: Vec<FleetRow>,
    /// Per-session verdict streams byte-identical to a single-supervisor
    /// reference at equal total budget (no-shed load).
    pub parity_ok: bool,
    /// One-thread-per-shard stepping byte-identical to serial ticking.
    pub threaded_ok: bool,
    /// Mid-clip kill into a store-persisted [`FleetSnapshot`] restored
    /// shard-by-shard and replayed byte-identically.
    pub snapshot_ok: bool,
    /// `offered == served + shed + in_flight` held on every tick of
    /// every run above.
    pub conservation_ok: bool,
    /// Selected fleet-tier obs counters accumulated over the sweep.
    pub counters: Vec<(String, u64)>,
}

impl FleetResult {
    /// Renders the result as an aligned table plus a check footer.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.sessions.to_string(),
                    r.wave.to_string(),
                    r.offered.to_string(),
                    r.served.to_string(),
                    r.shed.to_string(),
                    pct(r.shed_fraction),
                    r.throttled.to_string(),
                    r.steals.to_string(),
                    format!("{:.0}", r.p50_latency_ticks),
                    format!("{:.0}", r.p99_latency_ticks),
                    ok(r.accounting_ok),
                ]
            })
            .collect();
        let mut out = render_table(
            &format!(
                "Fleet — {} supervisor shards, wave admission, work stealing",
                self.shards
            ),
            &[
                "sessions",
                "wave",
                "offered",
                "served",
                "shed",
                "shed frac",
                "throttled",
                "steals",
                "p50 ticks",
                "p99 ticks",
                "accounting",
            ],
            &rows,
        );
        out.push('\n');
        out.push_str(&format!(
            "fleet parity vs single supervisor: {}; threaded stepping identical: {}\n",
            ok(self.parity_ok),
            ok(self.threaded_ok)
        ));
        out.push_str(&format!(
            "snapshot replay identical: {}; conservation ledger: {}\n",
            ok(self.snapshot_ok),
            ok(self.conservation_ok)
        ));
        for (name, value) in &self.counters {
            out.push_str(&format!("{name}: {value}\n"));
        }
        out
    }
}

fn ok(flag: bool) -> String {
    if flag { "ok" } else { "FAIL" }.to_string()
}

/// Everything shared by the runs of one experiment invocation.
struct Harness {
    detector: Detector,
    pool: Vec<TracePair>,
    clip_samples: usize,
}

impl Harness {
    fn prepare(opts: &FleetOpts) -> ExpResult<Harness> {
        let chats = ScenarioBuilder::default();
        let training: Vec<TracePair> = (0..opts.train_count)
            .map(|i| chats.legitimate(0, 90_000 + i as u64))
            .collect::<Result<_, _>>()?;
        let detector = Detector::train_from_traces(&training, Config::default())?;
        let clip_samples = StreamingDetector::new(detector.clone(), 15.0, 3)?.clip_samples();
        let pool: Vec<TracePair> = (0..opts.trace_pool.max(1))
            .map(|i| chats.legitimate(0, 95_000 + i as u64))
            .collect::<Result<_, _>>()?;
        for pair in &pool {
            if pair.tx.samples().len() < clip_samples {
                return Err("trace pool pair shorter than one clip".into());
            }
        }
        Ok(Harness {
            detector,
            pool,
            clip_samples,
        })
    }

    fn stream(&self) -> ExpResult<StreamingDetector> {
        Ok(StreamingDetector::new(self.detector.clone(), 15.0, 3)?)
    }

    fn trace(&self, session_ordinal: usize) -> &TracePair {
        &self.pool[session_ordinal % self.pool.len()]
    }
}

/// The sweep's fleet config at one point.
fn sweep_config(opts: &FleetOpts, wave: usize) -> FleetConfig {
    FleetConfig {
        shards: opts.shards,
        seed: 0xF1EE7,
        shard: ServeConfig {
            max_sessions: wave,
            queue_clips: opts.queue_clips,
            budget_clips: opts.budget_clips,
            budget_period_ticks: opts.budget_period_ticks,
            deadline_ticks: opts.deadline_ticks,
            ..ServeConfig::default()
        },
        admission: AdmissionConfig {
            burst_sessions: opts.admission_burst,
            refill_per_tick: opts.admission_refill,
        },
        max_steals_per_tick: opts.max_steals_per_tick,
    }
}

/// A generous config for the parity and snapshot runs: same shard count,
/// enough budget and deadline that nothing sheds.
fn relaxed_config(opts: &FleetOpts, sessions: usize) -> FleetConfig {
    FleetConfig {
        shards: opts.shards,
        seed: 0xF1EE7,
        shard: ServeConfig {
            max_sessions: sessions,
            queue_clips: opts.queue_clips.max(2),
            budget_clips: 4,
            budget_period_ticks: 1,
            deadline_ticks: 10_000,
            ..ServeConfig::default()
        },
        admission: AdmissionConfig {
            burst_sessions: u32::try_from(sessions.max(1)).unwrap_or(u32::MAX),
            refill_per_tick: 1.0,
        },
        max_steals_per_tick: opts.max_steals_per_tick,
    }
}

/// Outcome of one sweep point.
struct PointOutput {
    row: FleetRow,
    conservation_ok: bool,
}

/// Drives one sweep point: waves of sessions, each streaming one clip,
/// each wave drained and released before the next.
fn drive_point(
    opts: &FleetOpts,
    harness: &Harness,
    count: usize,
    recorder: &Recorder,
) -> ExpResult<PointOutput> {
    let wave = (count / opts.wave_divisor.max(1)).max(opts.min_wave).min(count.max(1));
    let mut fleet = Fleet::new(sweep_config(opts, wave))?.with_recorder(recorder.clone());
    let mut conservation_ok = true;
    let mut throttled = 0u64;
    let mut events: Vec<FleetEvent> = Vec::new();
    let mut done = 0usize;
    let mut key = 0u64;
    while done < count {
        let batch = wave.min(count - done);
        let mut ids = Vec::with_capacity(batch);
        for _ in 0..batch {
            loop {
                match fleet.admit(key, harness.stream()?) {
                    FleetAdmitOutcome::Admitted { session, .. } => {
                        ids.push(session);
                        key += 1;
                        break;
                    }
                    FleetAdmitOutcome::Throttled => {
                        // The bucket refills on ticks; idle-tick and retry.
                        throttled += 1;
                        fleet.tick();
                        conservation_ok &= fleet.ledger().holds();
                    }
                    FleetAdmitOutcome::Shed { shard, reason } => {
                        return Err(format!(
                            "shard {shard} refused a session below max_sessions: {reason:?}"
                        )
                        .into());
                    }
                }
            }
        }
        for sample in 0..harness.clip_samples {
            for (i, &id) in ids.iter().enumerate() {
                let pair = harness.trace(done + i);
                fleet.offer(id, pair.tx.samples()[sample], pair.rx.samples()[sample])?;
            }
            fleet.tick();
            conservation_ok &= fleet.ledger().holds();
        }
        // Idle ticks drain the wave: every pending clip is served or
        // sheds on its deadline, so this terminates; the guard bounds it.
        let mut guard = 0u64;
        while fleet.pending_clips() > 0 {
            fleet.tick();
            conservation_ok &= fleet.ledger().holds();
            guard += 1;
            if guard > 100 * opts.deadline_ticks + 1_000_000 {
                return Err("fleet queues failed to drain".into());
            }
        }
        events.append(&mut fleet.drain_events());
        for &id in &ids {
            fleet.release(id)?;
        }
        done += batch;
    }

    let stats = fleet.shard_stats();
    let verdict_events = events
        .iter()
        .filter(|e| matches!(e.kind, SessionEventKind::Verdict(_)))
        .count() as u64;
    let shed_events = events
        .iter()
        .filter(|e| matches!(e.kind, SessionEventKind::Shed { .. }))
        .count() as u64;
    let accounting_ok = stats.offered_clips == count as u64
        && stats.served_clips + stats.shed_clips == stats.offered_clips
        && stats.shed_queue_full
            + stats.shed_deadline
            + stats.shed_breaker
            + stats.shed_failed
            + stats.shed_closed
            == stats.shed_clips
        && verdict_events == stats.served_clips
        && shed_events == stats.shed_clips;

    let mut latencies: Vec<f64> = Vec::new();
    for shard in 0..fleet.shards() {
        if let Some(sup) = fleet.shard(shard) {
            latencies.extend(sup.latencies_ticks().iter().map(|&t| t as f64));
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

    Ok(PointOutput {
        row: FleetRow {
            sessions: count,
            wave,
            offered: stats.offered_clips,
            served: stats.served_clips,
            shed: stats.shed_clips,
            shed_fraction: stats.shed_clips as f64 / stats.offered_clips.max(1) as f64,
            throttled,
            steals: fleet.stats().steals,
            ticks: fleet.tick_now(),
            p50_latency_ticks: quantile(&latencies, 0.5).unwrap_or(0.0),
            p99_latency_ticks: quantile(&latencies, 0.99).unwrap_or(0.0),
            accounting_ok,
        },
        conservation_ok,
    })
}

/// Drives a single no-shed wave through a fleet and returns per-key
/// serialized verdict streams plus the raw event stream.
fn fleet_reference_run(
    opts: &FleetOpts,
    harness: &Harness,
    sessions: usize,
    threaded: bool,
) -> ExpResult<(BTreeMap<u64, String>, Vec<FleetEvent>, bool)> {
    let mut fleet = Fleet::new(relaxed_config(opts, sessions))?;
    let mut conservation_ok = true;
    let mut by_key = BTreeMap::new();
    let mut ids = Vec::with_capacity(sessions);
    for key in 0..sessions as u64 {
        match fleet.admit(key, harness.stream()?) {
            FleetAdmitOutcome::Admitted { session, .. } => ids.push((key, session)),
            other => return Err(format!("parity admission refused: {other:?}").into()),
        }
    }
    for sample in 0..harness.clip_samples {
        for (i, &(_, id)) in ids.iter().enumerate() {
            let pair = harness.trace(i);
            fleet.offer(id, pair.tx.samples()[sample], pair.rx.samples()[sample])?;
        }
        if threaded {
            fleet.step_shards(|_, shard| {
                shard.tick();
            });
        } else {
            fleet.tick();
        }
        conservation_ok &= fleet.ledger().holds();
    }
    let mut guard = 0u64;
    while fleet.pending_clips() > 0 {
        fleet.tick();
        conservation_ok &= fleet.ledger().holds();
        guard += 1;
        if guard > 1_000_000 {
            return Err("parity fleet failed to drain".into());
        }
    }
    let events = fleet.drain_events();
    if fleet.shard_stats().shed_clips != 0 {
        return Err("parity run shed clips; its budgets are miscalibrated".into());
    }
    for &(key, id) in &ids {
        by_key.insert(key, verdict_stream(&events, id)?);
    }
    Ok((by_key, events, conservation_ok))
}

/// Serializes the ordered verdict stream of one session, the unit of the
/// byte-identity comparisons.
fn verdict_stream(events: &[FleetEvent], session: u64) -> ExpResult<String> {
    let verdicts: Vec<_> = events
        .iter()
        .filter(|e| e.session == session)
        .filter_map(|e| match &e.kind {
            SessionEventKind::Verdict(v) => Some(v.clone()),
            _ => None,
        })
        .collect();
    Ok(serde_json::to_string(&verdicts)?)
}

/// Runs the same no-shed wave through one supervisor with the fleet's
/// summed budget and compares per-key verdict streams byte for byte.
fn parity_check(
    opts: &FleetOpts,
    harness: &Harness,
    fleet_streams: &BTreeMap<u64, String>,
) -> ExpResult<bool> {
    let sessions = opts.parity_sessions;
    let relaxed = relaxed_config(opts, sessions);
    let config = ServeConfig {
        max_sessions: sessions,
        // Equal budgets: N shards x b clips per period in one supervisor.
        budget_clips: relaxed.shard.budget_clips * opts.shards as u64,
        ..relaxed.shard
    };
    let mut sup = lumen_serve::Supervisor::new(config)?;
    let mut ids = Vec::with_capacity(sessions);
    for key in 0..sessions as u64 {
        let id = sup
            .admit(harness.stream()?)
            .session()
            .ok_or("reference admission rejected below max_sessions")?;
        ids.push((key, id));
    }
    for sample in 0..harness.clip_samples {
        for (i, &(_, id)) in ids.iter().enumerate() {
            let pair = harness.trace(i);
            sup.offer(id, pair.tx.samples()[sample], pair.rx.samples()[sample])?;
        }
        sup.tick();
    }
    let mut guard = 0u64;
    while sup.pending_clips() > 0 {
        sup.tick();
        guard += 1;
        if guard > 1_000_000 {
            return Err("parity reference failed to drain".into());
        }
    }
    if sup.stats().shed_clips != 0 {
        return Err("parity reference shed clips; its budget is miscalibrated".into());
    }
    let events = sup.drain_events();
    for &(key, id) in &ids {
        let verdicts: Vec<_> = events
            .iter()
            .filter(|e| e.session == id)
            .filter_map(|e| match &e.kind {
                SessionEventKind::Verdict(v) => Some(v.clone()),
                _ => None,
            })
            .collect();
        let reference = serde_json::to_string(&verdicts)?;
        if fleet_streams.get(&key) != Some(&reference) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Kills a fleet mid-clip into the checkpoint store, restores it shard
/// by shard and replays the remainder; the post-cut event stream and the
/// final counters must be byte-identical to the uninterrupted run.
fn snapshot_check(opts: &FleetOpts, harness: &Harness) -> ExpResult<(bool, bool)> {
    let sessions = opts.snapshot_sessions;
    let config = relaxed_config(opts, sessions);
    let cut = harness.clip_samples * 7 / 15; // mid-clip, partial buffers live
    let mut conservation_ok = true;

    let mut original = Fleet::new(config.clone())?;
    let mut ids = Vec::with_capacity(sessions);
    for key in 0..sessions as u64 {
        match original.admit(key, harness.stream()?) {
            FleetAdmitOutcome::Admitted { session, .. } => ids.push(session),
            other => return Err(format!("snapshot admission refused: {other:?}").into()),
        }
    }
    let mut snapshot: Option<FleetSnapshot> = None;
    let mut prefix: Vec<FleetEvent> = Vec::new();
    for sample in 0..harness.clip_samples {
        if sample == cut {
            prefix = original.drain_events();
            snapshot = Some(original.snapshot());
        }
        for (i, &id) in ids.iter().enumerate() {
            let pair = harness.trace(i);
            original.offer(id, pair.tx.samples()[sample], pair.rx.samples()[sample])?;
        }
        original.tick();
        conservation_ok &= original.ledger().holds();
    }
    let mut guard = 0u64;
    while original.pending_clips() > 0 {
        original.tick();
        conservation_ok &= original.ledger().holds();
        guard += 1;
        if guard > 1_000_000 {
            return Err("snapshot original failed to drain".into());
        }
    }
    let tail_original = original.drain_events();
    let stats_original = original.shard_stats();
    // Pre-cut events already reached their consumer before the crash;
    // only the replayed tail is comparable.
    drop(prefix);

    // Persist the cut through the store, "crash", restore, replay.
    let mut store: CheckpointStore<MemStorage, FleetSnapshot> =
        CheckpointStore::new(MemStorage::new(), StoreConfig::default())?;
    let at = snapshot.ok_or("cut landed outside the run")?;
    store.commit(at.manifest.tick, &at)?;
    drop(original); // the "crash"
    let detector = harness.detector.clone();
    let (mut restored, report) = Fleet::restore_from_store(
        config,
        &mut store,
        |_| StreamingDetector::new(detector.clone(), 15.0, 3),
        &Recorder::null(),
    )?;
    if report.restored_sessions() != sessions || !report.quarantined_sessions().is_empty() {
        return Ok((false, conservation_ok));
    }
    for sample in cut..harness.clip_samples {
        for (i, &id) in ids.iter().enumerate() {
            let pair = harness.trace(i);
            restored.offer(id, pair.tx.samples()[sample], pair.rx.samples()[sample])?;
        }
        restored.tick();
        conservation_ok &= restored.ledger().holds();
    }
    let mut guard = 0u64;
    while restored.pending_clips() > 0 {
        restored.tick();
        conservation_ok &= restored.ledger().holds();
        guard += 1;
        if guard > 1_000_000 {
            return Err("snapshot restore failed to drain".into());
        }
    }
    let tail_restored = restored.drain_events();
    let snapshot_ok =
        tail_restored == tail_original && restored.shard_stats() == stats_original;
    Ok((snapshot_ok, conservation_ok))
}

/// Runs the fleet sweep.
///
/// # Errors
///
/// Propagates scenario, training, detection, serving and fleet errors.
pub fn run(opts: FleetOpts) -> ExpResult<FleetResult> {
    let harness = Harness::prepare(&opts)?;
    let (recorder, sink) = Recorder::in_memory();
    let mut conservation_ok = true;

    let mut rows = Vec::new();
    for &count in &opts.sessions {
        let point = drive_point(&opts, &harness, count, &recorder)?;
        conservation_ok &= point.conservation_ok;
        rows.push(point.row);
    }

    let (fleet_streams, serial_events, cons_a) =
        fleet_reference_run(&opts, &harness, opts.parity_sessions, false)?;
    let (_, threaded_events, cons_b) =
        fleet_reference_run(&opts, &harness, opts.parity_sessions, true)?;
    conservation_ok &= cons_a && cons_b;
    let threaded_ok = serial_events == threaded_events;
    let parity_ok = parity_check(&opts, &harness, &fleet_streams)?;
    let (snapshot_ok, cons_c) = snapshot_check(&opts, &harness)?;
    conservation_ok &= cons_c;

    // Fleet-tier counters only: the shards run unrecorded at this scale
    // (an in-memory sink buffers every event), and their serve accounting
    // is already exact in the per-row stats.
    let registry = sink.registry();
    let counters = ["fleet.steals", "fleet.shed.throttled"]
        .iter()
        .map(|&name| (name.to_string(), registry.counter(name)))
        .collect();

    Ok(FleetResult {
        shards: opts.shards,
        clip_samples: harness.clip_samples,
        rows,
        parity_ok,
        threaded_ok,
        snapshot_ok,
        conservation_ok,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetOpts {
        FleetOpts {
            sessions: vec![48, 96],
            shards: 4,
            min_wave: 16,
            wave_divisor: 4,
            train_count: 8,
            trace_pool: 4,
            deadline_ticks: 8,
            admission_burst: 8,
            admission_refill: 2.0,
            parity_sessions: 24,
            snapshot_sessions: 16,
            ..FleetOpts::default()
        }
    }

    #[test]
    fn sweep_holds_every_exactness_check() {
        let r = run(small()).unwrap();
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            assert!(row.accounting_ok, "sessions={}", row.sessions);
            assert_eq!(row.offered, row.sessions as u64);
            assert_eq!(row.served + row.shed, row.offered);
        }
        // The tight 8-tick deadline forces shedding at the heavier point.
        assert!(r.rows[1].shed > 0, "overloaded point must shed");
        assert!(r.parity_ok, "fleet/single-supervisor parity");
        assert!(r.threaded_ok, "threaded/serial stepping parity");
        assert!(r.snapshot_ok, "mid-clip restore replay");
        assert!(r.conservation_ok, "per-tick conservation ledger");
        let rendered = r.print();
        assert!(rendered.contains("fleet parity"));
        assert!(rendered.contains("snapshot replay identical: ok"));
        assert!(!rendered.contains("FAIL"));
    }

    #[test]
    fn heavier_points_shed_more_and_throttle_more() {
        let r = run(small()).unwrap();
        assert!(r.rows[1].shed_fraction >= r.rows[0].shed_fraction);
        assert!(
            r.rows[1].throttled >= r.rows[0].throttled,
            "bigger waves hit the admission bucket at least as hard"
        );
    }

    #[test]
    fn is_deterministic() {
        let a = run(small()).unwrap();
        let b = run(small()).unwrap();
        assert_eq!(a, b);
    }
}
