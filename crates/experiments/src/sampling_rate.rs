//! Fig. 16 — influence of the sampling rate: 10 Hz and 8 Hz hold up; at
//! 5 Hz the paper reports TAR ≈ 86 % but TRR collapsing to ≈ 48 %.
//!
//! The collapse mechanism is structural: the paper specifies every window
//! in *samples* (variance 10, RMS 30, Savitzky–Golay 31), so at 5 Hz the
//! smoothing spans double the wall-clock time, flattening the attacker's
//! tell-tale mismatched changes into the same shapeless trend a legitimate
//! trace produces.

use crate::runner::{pct, render_table};
use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_chat::session::SessionConfig;
use lumen_core::dataset::{self, split_train_test};
use lumen_core::detector::Detector;
use lumen_core::metrics::Confusion;
use lumen_core::Config;
use serde::{Deserialize, Serialize};

/// Options for the sampling-rate experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateOpts {
    /// The volunteer evaluated (the paper collects from one volunteer).
    pub user: usize,
    /// Clips per role.
    pub clips: usize,
    /// Training instances.
    pub train_count: usize,
    /// Sampling rates to sweep, Hz.
    pub rates: Vec<f64>,
}

impl Default for RateOpts {
    fn default() -> Self {
        RateOpts {
            user: 0,
            clips: 40,
            train_count: 20,
            rates: vec![5.0, 8.0, 10.0],
        }
    }
}

/// One sampling-rate row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateRow {
    /// Sampling rate in Hz.
    pub rate: f64,
    /// Mean TAR.
    pub tar: f64,
    /// Mean TRR.
    pub trr: f64,
}

/// The Fig. 16 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateResult {
    /// Rows, lowest rate first.
    pub rows: Vec<RateRow>,
}

impl RateResult {
    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| vec![format!("{:.0} Hz", r.rate), pct(r.tar), pct(r.trr)])
            .collect();
        render_table(
            "Fig. 16 — influence of sampling rate",
            &["rate", "TAR", "TRR"],
            &rows,
        )
    }
}

/// Runs the Fig. 16 experiment: the whole pipeline — session sampling and
/// detector windows — operates at each swept rate.
///
/// # Errors
///
/// Propagates simulation, feature-extraction and LOF errors.
pub fn run(opts: RateOpts) -> ExpResult<RateResult> {
    let mut rows = Vec::new();
    for &rate in &opts.rates {
        let config = Config::default().with_sample_rate(rate);
        let builder = ScenarioBuilder::default().with_session(SessionConfig {
            sample_rate: rate,
            ..SessionConfig::default()
        });
        let legit = dataset::legitimate_features(&builder, opts.user, opts.clips, 20_000, &config)?;
        let attack = dataset::attack_features(&builder, opts.user, opts.clips, 21_000, &config)?;
        let mut c = Confusion::new();
        for rep in 0..5u64 {
            let (train, test) = split_train_test(&legit, opts.train_count, 900 + rep);
            let det = Detector::train(&train, config)?;
            for f in &test {
                c.record(true, det.judge(f)?.accepted);
            }
            for f in &attack {
                c.record(false, det.judge(f)?.accepted);
            }
        }
        rows.push(RateRow {
            rate,
            tar: c.tar(),
            trr: c.trr(),
        });
    }
    Ok(RateResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_rate_hurts_rejection() {
        let result = run(RateOpts {
            user: 0,
            clips: 16,
            train_count: 10,
            rates: vec![5.0, 10.0],
        })
        .unwrap();
        let r5 = &result.rows[0];
        let r10 = &result.rows[1];
        assert!(
            r5.trr < r10.trr,
            "5 Hz TRR {} not below 10 Hz TRR {}",
            r5.trr,
            r10.trr
        );
    }
}
