//! Shared experiment infrastructure: parallel mapping, dataset helpers and
//! table rendering.

use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_core::dataset;
use lumen_core::detector::Detector;
use lumen_core::features::FeatureVector;
use lumen_core::metrics::Confusion;
use lumen_core::Config;
use lumen_obs::{Recorder, Registry};

/// Maps `f` over `items` on scoped worker threads with dynamic load
/// balancing (a crossbeam work queue), preserving input order in the
/// output.
///
/// # Errors
///
/// Propagates the first error any worker produced.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> ExpResult<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> ExpResult<R> + Sync,
{
    if items.is_empty() {
        return Ok(Vec::new());
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len());
    let (task_tx, task_rx) = crossbeam::channel::unbounded::<(usize, &T)>();
    for task in items.iter().enumerate() {
        // lint:allow(no-panic): task_rx lives until the scope below
        // joins, so the channel cannot be closed yet
        task_tx.send(task).expect("queue is open");
    }
    drop(task_tx);

    let mut slots: Vec<Option<ExpResult<R>>> = (0..items.len()).map(|_| None).collect();
    let done: Vec<(usize, ExpResult<R>)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                while let Ok((idx, item)) = task_rx.recv() {
                    out.push((idx, f(item)));
                }
                out
            }));
        }
        handles
            .into_iter()
            // lint:allow(no-panic): a worker panic is unrecoverable;
            // re-raising it on join is the scoped-thread contract
            .flat_map(|h| h.join().expect("experiment worker panicked"))
            .collect()
    });
    for (idx, r) in done {
        slots[idx] = Some(r);
    }
    slots
        .into_iter()
        // lint:allow(no-panic): every index was queued exactly once and
        // each drained task writes back its own slot
        .map(|s| s.expect("every task completed"))
        .collect()
}

/// [`parallel_map`] with per-worker observability: every worker thread owns
/// a private in-memory [`Recorder`] handed to each `f` invocation, and the
/// per-worker registries are merged into one aggregate after the scope
/// joins — counters sum, span/value histograms pool their observations.
///
/// # Errors
///
/// Propagates the first error any worker produced (the merged registry is
/// discarded in that case).
pub fn parallel_map_instrumented<T, R, F>(items: Vec<T>, f: F) -> ExpResult<(Vec<R>, Registry)>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &Recorder) -> ExpResult<R> + Sync,
{
    if items.is_empty() {
        return Ok((Vec::new(), Registry::new()));
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len());
    let (task_tx, task_rx) = crossbeam::channel::unbounded::<(usize, &T)>();
    for task in items.iter().enumerate() {
        // lint:allow(no-panic): task_rx lives until the scope below
        // joins, so the channel cannot be closed yet
        task_tx.send(task).expect("queue is open");
    }
    drop(task_tx);

    type WorkerOutput<R> = (Vec<(usize, ExpResult<R>)>, Registry);
    let mut slots: Vec<Option<ExpResult<R>>> = (0..items.len()).map(|_| None).collect();
    let mut registry = Registry::new();
    let done: Vec<WorkerOutput<R>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let f = &f;
            handles.push(scope.spawn(move || {
                let (recorder, sink) = Recorder::in_memory();
                let mut out = Vec::new();
                while let Ok((idx, item)) = task_rx.recv() {
                    out.push((idx, f(item, &recorder)));
                }
                (out, sink.registry())
            }));
        }
        handles
            .into_iter()
            // lint:allow(no-panic): a worker panic is unrecoverable;
            // re-raising it on join is the scoped-thread contract
            .map(|h| h.join().expect("experiment worker panicked"))
            .collect()
    });
    for (chunk, worker_registry) in done {
        registry.merge(&worker_registry);
        for (idx, r) in chunk {
            slots[idx] = Some(r);
        }
    }
    let results = slots
        .into_iter()
        // lint:allow(no-panic): every index was queued exactly once and
        // each drained task writes back its own slot
        .map(|s| s.expect("every task completed"))
        .collect::<ExpResult<Vec<R>>>()?;
    Ok((results, registry))
}

/// Legitimate + attack feature sets for one volunteer (`clips` of each),
/// with disjoint deterministic seed blocks per user.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn user_features(
    builder: &ScenarioBuilder,
    user: usize,
    clips: usize,
    config: &Config,
) -> ExpResult<(Vec<FeatureVector>, Vec<FeatureVector>)> {
    let legit_base = 100_000 + (user as u64) * 1_000;
    let attack_base = 500_000 + (user as u64) * 1_000;
    let legit = dataset::legitimate_features(builder, user, clips, legit_base, config)?;
    let attack = dataset::attack_features(builder, user, clips, attack_base, config)?;
    Ok((legit, attack))
}

/// Evaluates a trained detector on pre-extracted features, filling a
/// confusion matrix.
///
/// # Errors
///
/// Propagates LOF scoring errors.
pub fn evaluate(
    detector: &Detector,
    legit: &[FeatureVector],
    attack: &[FeatureVector],
) -> ExpResult<Confusion> {
    let mut c = Confusion::new();
    for f in legit {
        c.record(true, detector.judge(f)?.accepted);
    }
    for f in attack {
        c.record(false, detector.judge(f)?.accepted);
    }
    Ok(c)
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", 100.0 * x)
}

/// Renders a simple aligned table to a string.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:>width$}", h, width = widths[i]))
        .collect();
    out.push_str(&header_line.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(header_line.join("  ").len()));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..37).collect();
        let out = parallel_map(items.clone(), |&x| Ok(x * 2)).unwrap();
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn instrumented_map_merges_worker_registries() {
        let items: Vec<u64> = (0..25).collect();
        let (out, registry) = parallel_map_instrumented(items.clone(), |&x, recorder| {
            recorder.add("work.items", 1);
            recorder.observe("work.value", x as f64);
            Ok(x * 2)
        })
        .unwrap();
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(registry.counter("work.items"), 25);
        assert_eq!(registry.histogram("work.value").unwrap().count(), 25);
    }

    #[test]
    fn instrumented_map_propagates_errors() {
        let items: Vec<u64> = (0..10).collect();
        let out = parallel_map_instrumented(
            items,
            |&x, _| {
                if x == 7 {
                    Err("boom".into())
                } else {
                    Ok(x)
                }
            },
        );
        assert!(out.is_err());
    }

    #[test]
    fn parallel_map_propagates_errors() {
        let items: Vec<u64> = (0..10).collect();
        let out = parallel_map(items, |&x| if x == 7 { Err("boom".into()) } else { Ok(x) });
        assert!(out.is_err());
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "demo",
            &["user", "tar"],
            &[
                vec!["user-1".into(), "92.5%".into()],
                vec!["user-2".into(), "93.0%".into()],
            ],
        );
        assert!(t.contains("## demo"));
        assert!(t.contains("user-1"));
        assert_eq!(t.lines().count(), 5);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.925), " 92.5%");
    }
}
