//! Fig. 9 — an illustration of LOF-based classification: the background of
//! the feature plane shaded by LOF score, legitimate training points inside
//! the bright (low-score) basin and the attacker far outside.
//!
//! Note on the reproduction: the paper draws the plane over (z1, z2). In
//! our pipeline z1/z2 are ratios of small change counts and thus heavily
//! quantized, which makes a heat map degenerate; the continuous trend
//! features (z3, z4) show the same geometry clearly, so the grid is drawn
//! over them (recorded in EXPERIMENTS.md).

use crate::runner::{render_table, user_features};
use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_core::Config;
use lumen_lof::grid::{score_grid, ScoreGrid};
use lumen_lof::lof::LofModel;
use serde::{Deserialize, Serialize};

/// The Fig. 9 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LofExampleResult {
    /// Legitimate training points in (z3, z4).
    pub train_points: Vec<(f64, f64)>,
    /// One attack point in (z3, z4).
    pub attack_point: (f64, f64),
    /// LOF score of the attack point.
    pub attack_score: f64,
    /// Maximum LOF score among training points (leave-one-out).
    pub max_train_score: f64,
    /// Grid axes and scores (serializable mirror of the grid).
    pub grid_tsv: String,
}

impl LofExampleResult {
    /// Renders the result as text.
    pub fn print(&self) -> String {
        let mut rows: Vec<Vec<String>> = self
            .train_points
            .iter()
            .map(|(x, y)| vec!["legit".into(), format!("{x:.2}"), format!("{y:.2}")])
            .collect();
        rows.push(vec![
            "ATTACK".into(),
            format!("{:.2}", self.attack_point.0),
            format!("{:.2}", self.attack_point.1),
        ]);
        let mut out = render_table(
            "Fig. 9 — LOF classification example over (z3, z4)",
            &["point", "z3", "z4"],
            &rows,
        );
        out.push_str(&format!(
            "attacker LOF score {:.2} vs max training score {:.2}\nLOF grid (rows: z4 desc):\n{}",
            self.attack_score, self.max_train_score, self.grid_tsv
        ));
        out
    }
}

/// Runs the Fig. 9 illustration.
///
/// # Errors
///
/// Propagates simulation and LOF errors.
pub fn run() -> ExpResult<LofExampleResult> {
    let builder = ScenarioBuilder::default();
    let config = Config::default();
    let (legit, attack) = user_features(&builder, 0, 20, &config)?;
    let train_points: Vec<(f64, f64)> = legit.iter().map(|f| (f.z3, f.z4)).collect();
    let train_2d: Vec<Vec<f64>> = train_points.iter().map(|&(x, y)| vec![x, y]).collect();
    let model = LofModel::fit(train_2d, config.lof_k)?;

    let attack_f = attack.first().ok_or("no attack clips were generated")?;
    let attack_point = (attack_f.z3, attack_f.z4);
    let attack_score = model.score(&[attack_point.0, attack_point.1])?;
    let max_train_score = model.training_scores().into_iter().fold(f64::MIN, f64::max);

    let grid: ScoreGrid = score_grid(&model, (-1.0, 1.0), (0.0, 1.5), 9, 7)?;
    Ok(LofExampleResult {
        train_points,
        attack_point,
        attack_score,
        max_train_score,
        grid_tsv: grid.to_tsv(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attacker_is_the_outlier() {
        let r = run().unwrap();
        assert!(
            r.attack_score > r.max_train_score,
            "attacker {} vs train max {}",
            r.attack_score,
            r.max_train_score
        );
        assert!(r.print().contains("ATTACK"));
    }
}
