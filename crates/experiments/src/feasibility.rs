//! Fig. 3 — the feasibility study: a 0.2 Hz black/white flash on the
//! 27-inch monitor raises the nasal-bridge luminance from ≈ 105 to ≈ 132.
//!
//! Two measurements are reported: the *optical* ROI levels predicted by the
//! reflection chain, and the levels actually read back by rendering the
//! face into frames and running the landmark detector + ROI extraction —
//! i.e. the full Sec. IV pipeline on pixels, no ground-truth peeking.

use crate::runner::render_table;
use crate::ExpResult;
use lumen_core::extract::received_roi_luminance;
use lumen_face::geometry::FaceGeometry;
use lumen_face::render::FaceRenderer;
use lumen_face::tracker::LandmarkTracker;
use lumen_video::content::MeteringScript;
use lumen_video::profile::UserProfile;
use lumen_video::synth::{ReflectionSynth, SynthConfig};
use serde::{Deserialize, Serialize};

/// The Fig. 3 result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeasibilityResult {
    /// ROI luminance while the screen shows black (optical model).
    pub dark_level: f64,
    /// ROI luminance while the screen shows white (optical model).
    pub bright_level: f64,
    /// Same dark level, measured through rendered frames + landmark
    /// detection.
    pub detector_dark: f64,
    /// Same bright level, measured through rendered frames + landmark
    /// detection.
    pub detector_bright: f64,
}

impl FeasibilityResult {
    /// The optical luminance swing.
    pub fn delta(&self) -> f64 {
        self.bright_level - self.dark_level
    }

    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let rows = vec![
            vec![
                "optical model".to_string(),
                format!("{:.1}", self.dark_level),
                format!("{:.1}", self.bright_level),
                format!("{:+.1}", self.delta()),
            ],
            vec![
                "frame pipeline".to_string(),
                format!("{:.1}", self.detector_dark),
                format!("{:.1}", self.detector_bright),
                format!("{:+.1}", self.detector_bright - self.detector_dark),
            ],
        ];
        render_table(
            "Fig. 3 — feasibility: nasal-bridge luminance, black vs white screen",
            &["path", "black", "white", "Δ"],
            &rows,
        )
    }
}

/// A noiseless volunteer for clean optical measurement.
fn quiet_profile() -> UserProfile {
    // lint:allow(no-panic): the literal parameters are in range by
    // construction (reflectance in (0, 1], rates non-negative)
    UserProfile::new(0, "quiet", 0.92, 0.0, 1.0, 0.0, 0.0, 0.0).expect("valid profile")
}

/// Runs the feasibility study.
///
/// # Errors
///
/// Propagates simulation and rendering errors.
pub fn run() -> ExpResult<FeasibilityResult> {
    // The paper's stimulus: 0.2 Hz black/white flashing, 27" LED monitor.
    let script = MeteringScript::square_wave(0.0, 255.0, 0.2, 15.0)?;
    let tx = script.sample_signal(10.0)?;
    let conditions = SynthConfig::default();
    let synth = ReflectionSynth::new(conditions);
    let profile = quiet_profile();
    let roi = synth.synthesize(&tx, &profile, 0)?;

    // Phase means: the 0.2 Hz square is black on [0, 2.5) s, white on
    // [2.5, 5.0) s, etc. Sample away from the transitions.
    let phase_mean = |starts: &[usize]| {
        let mut sum = 0.0;
        let mut n = 0;
        for &s in starts {
            for i in s + 5..s + 20 {
                sum += roi.samples()[i];
                n += 1;
            }
        }
        sum / n as f64
    };
    let dark_level = phase_mean(&[0, 50, 100]);
    let bright_level = phase_mean(&[25, 75, 125]);

    // Full frame path: render the face at each phase level, detect
    // landmarks, extract the ROI.
    let geom = FaceGeometry::centered(160, 120);
    let renderer = FaceRenderer::default();
    // The rendered "skin level" is the camera-exposed skin; the ROI sits on
    // the ridge (gain 1.22), so render skin at level / ridge_gain.
    let frames_dark: Vec<_> = (0..5)
        .map(|_| renderer.render(&geom, dark_level / renderer.ridge_gain))
        .collect::<Result<_, _>>()?;
    let frames_bright: Vec<_> = (0..5)
        .map(|_| renderer.render(&geom, bright_level / renderer.ridge_gain))
        .collect::<Result<_, _>>()?;
    let mut tracker = LandmarkTracker::new(0.8);
    let detector_dark = received_roi_luminance(&frames_dark, 10.0, &mut tracker)?.mean();
    let mut tracker = LandmarkTracker::new(0.8);
    let detector_bright = received_roi_luminance(&frames_bright, 10.0, &mut tracker)?.mean();

    Ok(FeasibilityResult {
        dark_level,
        bright_level,
        detector_dark,
        detector_bright,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_105_to_132_band() {
        let r = run().unwrap();
        // Shape targets: mid-grey face, swing comparable to the paper's
        // ~27 grey levels (accept half to double).
        assert!(
            (80.0..150.0).contains(&r.dark_level),
            "dark {}",
            r.dark_level
        );
        assert!(r.delta() > 12.0 && r.delta() < 60.0, "swing {}", r.delta());
        // The frame pipeline tracks the optical model within a few levels.
        assert!(
            (r.detector_bright - r.detector_dark) > 0.5 * r.delta(),
            "frame pipeline lost the swing: {} vs {}",
            r.detector_bright - r.detector_dark,
            r.delta()
        );
    }
}
