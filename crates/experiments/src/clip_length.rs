//! Clip-length sensitivity (extension; the paper fixes 15 s clips and
//! leaves the knob unexplored): shorter clips mean faster verdicts but
//! fewer luminance changes per decision.

use crate::runner::{pct, render_table};
use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_chat::session::SessionConfig;
use lumen_core::dataset::{self, split_train_test};
use lumen_core::detector::Detector;
use lumen_core::metrics::Confusion;
use lumen_core::Config;
use serde::{Deserialize, Serialize};

/// Options for the clip-length sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClipLengthOpts {
    /// The volunteer evaluated.
    pub user: usize,
    /// Clips per role.
    pub clips: usize,
    /// Training instances.
    pub train_count: usize,
    /// Clip durations to sweep, seconds.
    pub durations: Vec<f64>,
}

impl Default for ClipLengthOpts {
    fn default() -> Self {
        ClipLengthOpts {
            user: 0,
            clips: 30,
            train_count: 20,
            durations: vec![8.0, 12.0, 15.0, 20.0, 30.0],
        }
    }
}

/// One duration's row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClipLengthRow {
    /// Clip duration, seconds.
    pub duration: f64,
    /// Mean TAR.
    pub tar: f64,
    /// Mean TRR.
    pub trr: f64,
}

/// The clip-length result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClipLengthResult {
    /// Rows, shortest first.
    pub rows: Vec<ClipLengthRow>,
}

impl ClipLengthResult {
    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| vec![format!("{:.0} s", r.duration), pct(r.tar), pct(r.trr)])
            .collect();
        render_table(
            "Clip-length sensitivity (paper default: 15 s)",
            &["clip", "TAR", "TRR"],
            &rows,
        )
    }
}

/// Runs the clip-length sweep.
///
/// # Errors
///
/// Propagates simulation and detection errors.
pub fn run(opts: ClipLengthOpts) -> ExpResult<ClipLengthResult> {
    let config = Config::default();
    let mut rows = Vec::new();
    for &duration in &opts.durations {
        let builder = ScenarioBuilder::default().with_session(SessionConfig {
            duration,
            ..SessionConfig::default()
        });
        let legit =
            dataset::legitimate_features(&builder, opts.user, opts.clips, 130_000, &config)?;
        let attack = dataset::attack_features(&builder, opts.user, opts.clips, 131_000, &config)?;
        let mut c = Confusion::new();
        for rep in 0..5u64 {
            let (train, test) = split_train_test(&legit, opts.train_count, 135 + rep);
            let det = Detector::train(&train, config)?;
            for f in &test {
                c.record(true, det.judge(f)?.accepted);
            }
            for f in &attack {
                c.record(false, det.judge(f)?.accepted);
            }
        }
        rows.push(ClipLengthRow {
            duration,
            tar: c.tar(),
            trr: c.trr(),
        });
    }
    Ok(ClipLengthResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_clips_do_not_hurt() {
        let r = run(ClipLengthOpts {
            user: 0,
            clips: 14,
            train_count: 9,
            durations: vec![8.0, 20.0],
        })
        .unwrap();
        let short = &r.rows[0];
        let long = &r.rows[1];
        let bal = |row: &ClipLengthRow| 0.5 * (row.tar + row.trr);
        assert!(
            bal(long) + 0.08 >= bal(short),
            "short {:.3} vs long {:.3}",
            bal(short),
            bal(long)
        );
    }
}
