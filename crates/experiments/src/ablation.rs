//! Feature ablation (extension; DESIGN.md design-choice audit): how much of
//! the detector's power comes from the behaviour features (z1, z2) versus
//! the trend features (z3, z4)? The paper argues both are needed (Sec. VI);
//! this experiment quantifies it.

use crate::runner::{pct, render_table, user_features};
use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_core::dataset::split_train_test;
use lumen_core::features::FeatureVector;
use lumen_core::metrics::Confusion;
use lumen_core::Config;
use lumen_lof::classifier::LofClassifier;
use serde::{Deserialize, Serialize};

/// Which feature dimensions a variant keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureSet {
    /// Behaviour only: (z1, z2).
    Behaviour,
    /// Trend only: (z3, z4).
    Trend,
    /// The full paper vector: (z1, z2, z3, z4).
    Full,
}

impl FeatureSet {
    /// Projects a feature vector onto this subset.
    pub fn project(&self, f: &FeatureVector) -> Vec<f64> {
        match self {
            FeatureSet::Behaviour => vec![f.z1, f.z2],
            FeatureSet::Trend => vec![f.z3, f.z4],
            FeatureSet::Full => f.to_vec(),
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            FeatureSet::Behaviour => "z1,z2 (behaviour)",
            FeatureSet::Trend => "z3,z4 (trend)",
            FeatureSet::Full => "z1..z4 (full)",
        }
    }
}

/// Options for the ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AblationOpts {
    /// Volunteers.
    pub users: usize,
    /// Clips per role per volunteer.
    pub clips: usize,
    /// Training instances.
    pub train_count: usize,
}

impl Default for AblationOpts {
    fn default() -> Self {
        AblationOpts {
            users: 4,
            clips: 30,
            train_count: 20,
        }
    }
}

/// One variant's row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Mean TAR.
    pub tar: f64,
    /// Mean TRR.
    pub trr: f64,
}

/// The ablation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationResult {
    /// One row per feature subset.
    pub rows: Vec<AblationRow>,
}

impl AblationResult {
    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| vec![r.variant.clone(), pct(r.tar), pct(r.trr)])
            .collect();
        render_table(
            "Ablation — feature subsets (LOF, k = 5, τ = 3)",
            &["features", "TAR", "TRR"],
            &rows,
        )
    }
}

/// Runs the feature ablation.
///
/// # Errors
///
/// Propagates simulation and LOF errors.
pub fn run(opts: AblationOpts) -> ExpResult<AblationResult> {
    let builder = ScenarioBuilder::default();
    let config = Config::default();
    let mut rows = Vec::new();
    for set in [FeatureSet::Behaviour, FeatureSet::Trend, FeatureSet::Full] {
        let mut c = Confusion::new();
        for u in 0..opts.users {
            let (legit, attack) = user_features(&builder, u, opts.clips, &config)?;
            let (train, test) = split_train_test(&legit, opts.train_count, 55 + u as u64);
            let train_proj: Vec<Vec<f64>> = train.iter().map(|f| set.project(f)).collect();
            let model = LofClassifier::fit(train_proj, config.lof_k, config.lof_threshold)?;
            for f in &test {
                c.record(true, model.is_inlier(&set.project(f))?);
            }
            for f in &attack {
                c.record(false, model.is_inlier(&set.project(f))?);
            }
        }
        rows.push(AblationRow {
            variant: set.label().to_string(),
            tar: c.tar(),
            trr: c.trr(),
        });
    }
    Ok(AblationResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_vector_is_not_dominated() {
        let r = run(AblationOpts {
            users: 2,
            clips: 16,
            train_count: 10,
        })
        .unwrap();
        let behaviour = &r.rows[0];
        let trend = &r.rows[1];
        let full = &r.rows[2];
        // The full vector must stay competitive with the best single pair
        // (within a few points — small-sample noise) and clearly beat the
        // weaker pair. (Empirically the trend features carry most of the
        // power in this simulator; see EXPERIMENTS.md.)
        let bal = |row: &AblationRow| 0.5 * (row.tar + row.trr);
        assert!(
            bal(full) + 0.06 >= bal(behaviour).max(bal(trend)),
            "full {:.3} vs behaviour {:.3} / trend {:.3}",
            bal(full),
            bal(behaviour),
            bal(trend)
        );
        assert!(
            bal(full) >= bal(behaviour).min(bal(trend)) - 0.02,
            "full {:.3} below the weaker variant",
            bal(full)
        );
    }
}
