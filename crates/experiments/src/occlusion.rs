//! Occlusion robustness (extension; Sec. II-E names partial occlusion by
//! "hair and sunglasses" as a challenge the nasal-bridge ROI mitigates):
//! sweep the burst-disturbance intensity of a volunteer and watch the
//! single-detection TAR degrade gracefully.

use crate::runner::{pct, render_table};
use crate::ExpResult;
use lumen_chat::endpoint::{Caller, LiveFace};
use lumen_chat::session::{run_session, SessionConfig};
use lumen_chat::trace::ScenarioKind;
use lumen_core::dataset::split_train_test;
use lumen_core::detector::Detector;
use lumen_core::features::FeatureVector;
use lumen_core::metrics::Confusion;
use lumen_core::Config;
use lumen_video::content::MeteringScript;
use lumen_video::noise::substream;
use lumen_video::profile::UserProfile;
use lumen_video::synth::SynthConfig;
use serde::{Deserialize, Serialize};

/// Options for the occlusion sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OcclusionOpts {
    /// Base volunteer whose burst parameters are scaled.
    pub user: usize,
    /// Clips per condition.
    pub clips: usize,
    /// Training instances (collected at the *baseline* disturbance level —
    /// a deployment cannot re-train for every bad hair day).
    pub train_count: usize,
    /// Multipliers applied to burst rate and amplitude.
    pub intensity: Vec<f64>,
}

impl Default for OcclusionOpts {
    fn default() -> Self {
        OcclusionOpts {
            user: 0,
            clips: 30,
            train_count: 20,
            intensity: vec![1.0, 2.0, 4.0, 8.0],
        }
    }
}

/// One intensity's row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OcclusionRow {
    /// Burst multiplier.
    pub intensity: f64,
    /// Mean TAR (attacks are unaffected by the victim's occlusion, so only
    /// usability degrades).
    pub tar: f64,
}

/// The occlusion result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OcclusionResult {
    /// Rows, mildest first.
    pub rows: Vec<OcclusionRow>,
}

impl OcclusionResult {
    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| vec![format!("x{:.0}", r.intensity), pct(r.tar)])
            .collect();
        render_table(
            "Occlusion robustness — burst disturbance multiplier vs TAR",
            &["bursts", "TAR"],
            &rows,
        )
    }
}

fn occluded_profile(base: &UserProfile, intensity: f64) -> UserProfile {
    UserProfile::new(
        base.id,
        format!("{}-x{intensity:.0}", base.name),
        base.skin_reflectance,
        base.motion_diffusion,
        base.motion_reversion,
        (base.burst_rate * intensity).min(1.0),
        base.burst_amplitude * intensity,
        base.tracking_jitter * intensity.sqrt(),
    )
    // lint:allow(no-panic): intensity is clamped to [0, 1] by the caller,
    // which keeps every scaled parameter inside its valid range
    .expect("scaled profile is valid")
}

/// Substream label for the occlusion experiment's metering-script draws
/// (allocated workspace-wide in SUBSTREAMS.md; independent of the chat
/// scenario streams so experiment noise never correlates with scenarios).
const OCCLUSION_SCRIPT_SUBSTREAM: u64 = 55;

fn legit_features_with_profile(
    profile: &UserProfile,
    clips: usize,
    seed_base: u64,
    config: &Config,
) -> ExpResult<Vec<FeatureVector>> {
    let session = SessionConfig::default();
    (0..clips as u64)
        .map(|i| {
            let seed = seed_base + i;
            let mut rng = substream(seed, OCCLUSION_SCRIPT_SUBSTREAM);
            let script = MeteringScript::random(
                &mut rng,
                session.duration,
                &lumen_video::content::ScriptParams::default(),
            )?;
            let caller = Caller::new(script);
            let callee = LiveFace {
                profile: profile.clone(),
                conditions: SynthConfig::default(),
            };
            let pair = run_session(
                &caller,
                &callee,
                &session,
                ScenarioKind::Legitimate { user: profile.id },
                seed,
            )?;
            Ok(Detector::features_with(&pair, config)?)
        })
        .collect()
}

/// Runs the occlusion sweep.
///
/// # Errors
///
/// Propagates simulation and detection errors.
pub fn run(opts: OcclusionOpts) -> ExpResult<OcclusionResult> {
    let config = Config::default();
    let base = UserProfile::preset(opts.user);
    // Train once at baseline disturbance.
    let train_pool = legit_features_with_profile(&base, opts.clips, 140_000, &config)?;
    let (train, _) = split_train_test(&train_pool, opts.train_count, 7);
    let det = Detector::train(&train, config)?;

    let mut rows = Vec::new();
    for &intensity in &opts.intensity {
        let profile = occluded_profile(&base, intensity);
        let test = legit_features_with_profile(&profile, opts.clips, 141_000, &config)?;
        let mut c = Confusion::new();
        for f in &test {
            c.record(true, det.judge(f)?.accepted);
        }
        rows.push(OcclusionRow {
            intensity,
            tar: c.tar(),
        });
    }
    Ok(OcclusionResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_is_graceful() {
        let r = run(OcclusionOpts {
            user: 0,
            clips: 14,
            train_count: 9,
            intensity: vec![1.0, 6.0],
        })
        .unwrap();
        let mild = &r.rows[0];
        let heavy = &r.rows[1];
        assert!(mild.tar > 0.7, "baseline TAR {}", mild.tar);
        // Heavier occlusion can only cost usability.
        assert!(heavy.tar <= mild.tar + 0.1);
    }
}
