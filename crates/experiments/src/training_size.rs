//! Fig. 15 — influence of the number of training instances: the paper finds
//! 8 instances already give ≈ 92 % TAR / 91 % TRR, rising to ≈ 95 % with
//! 20, with standard deviations shrinking.

use crate::runner::{pct, render_table, user_features};
use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_core::dataset::split_train_test;
use lumen_core::detector::Detector;
use lumen_core::metrics::{mean_std, Confusion};
use lumen_core::Config;
use serde::{Deserialize, Serialize};

/// Options for the training-size experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingOpts {
    /// The volunteer whose data is used (the paper uses one volunteer).
    pub user: usize,
    /// Clips per role.
    pub clips: usize,
    /// Training sizes to sweep.
    pub sizes: Vec<usize>,
    /// Random re-splits per size.
    pub repeats: usize,
}

impl Default for TrainingOpts {
    fn default() -> Self {
        TrainingOpts {
            user: 0,
            clips: 40,
            sizes: vec![6, 8, 12, 16, 20],
            repeats: 20,
        }
    }
}

/// One training-size row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingRow {
    /// Training instances used.
    pub train_count: usize,
    /// Mean TAR.
    pub tar: f64,
    /// TAR standard deviation across repeats.
    pub tar_std: f64,
    /// Mean TRR.
    pub trr: f64,
    /// TRR standard deviation across repeats.
    pub trr_std: f64,
}

/// The Fig. 15 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingResult {
    /// Rows, smallest size first.
    pub rows: Vec<TrainingRow>,
}

impl TrainingResult {
    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.train_count.to_string(),
                    format!("{} ±{:4.1}", pct(r.tar), 100.0 * r.tar_std),
                    format!("{} ±{:4.1}", pct(r.trr), 100.0 * r.trr_std),
                ]
            })
            .collect();
        render_table(
            "Fig. 15 — influence of training-set size",
            &["train", "TAR", "TRR"],
            &rows,
        )
    }
}

/// Runs the Fig. 15 experiment.
///
/// # Errors
///
/// Propagates simulation, feature-extraction and LOF errors.
pub fn run(opts: TrainingOpts) -> ExpResult<TrainingResult> {
    let builder = ScenarioBuilder::default();
    let config = Config::default();
    let (legit, attack) = user_features(&builder, opts.user, opts.clips, &config)?;
    let mut rows = Vec::new();
    for &size in &opts.sizes {
        let mut tars = Vec::new();
        let mut trrs = Vec::new();
        for rep in 0..opts.repeats as u64 {
            let (train, test) = split_train_test(&legit, size, 800 + rep);
            let det = Detector::train(&train, config)?;
            let mut c = Confusion::new();
            for f in &test {
                c.record(true, det.judge(f)?.accepted);
            }
            tars.push(c.tar());
            let mut c = Confusion::new();
            for f in &attack {
                c.record(false, det.judge(f)?.accepted);
            }
            trrs.push(c.trr());
        }
        let (tar, tar_std) = mean_std(&tars);
        let (trr, trr_std) = mean_std(&trrs);
        rows.push(TrainingRow {
            train_count: size,
            tar,
            tar_std,
            trr,
            trr_std,
        });
    }
    Ok(TrainingResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_training_is_not_worse() {
        let result = run(TrainingOpts {
            user: 1,
            clips: 24,
            sizes: vec![6, 12, 18],
            repeats: 6,
        })
        .unwrap();
        assert_eq!(result.rows.len(), 3);
        let small = &result.rows[0];
        let large = &result.rows[2];
        // With more knowledge, mean accuracy should not collapse and the
        // spread should not blow up.
        assert!(large.tar >= small.tar - 0.1);
        assert!(large.tar_std <= small.tar_std + 0.1);
    }
}
