//! Daemon loopback load generation: N concurrent simulated clients drive
//! a real `lumend` daemon through real kernel sockets — honest sessions
//! streaming recorded luminance feeds alongside a hostile cast (a
//! frame-flooder, a garbage-speaker, a slowloris and a silent idler) —
//! and the run is falsified unless:
//!
//! * every honest client receives a verdict for every clip it streamed;
//! * every hostile client is disconnected with exactly its typed cause
//!   (rate-limit abuse, malformed, slow-read, idle) while honest traffic
//!   keeps flowing;
//! * repeated abuse trips the flight recorder's post-mortem;
//! * the wire accounting identity holds end-to-end:
//!   `verdicts-on-the-wire == served` and `sheds-on-the-wire == shed`
//!   and `served + shed == offered` — the socket layer adds zero slack
//!   to the supervisor's exact shed accounting.

use crate::runner::render_table;
use crate::ExpResult;
use lumen_chat::feed::SampleFeed;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_chat::trace::TracePair;
use lumen_core::detector::Detector;
use lumen_core::stream::StreamingDetector;
use lumen_core::Config;
use lumen_daemon::wire::{DisconnectCause, Frame};
use lumen_daemon::{Daemon, DaemonClient, DaemonConfig};
use lumen_obs::FlightConfig;
use lumen_serve::{CheckpointStore, MemStorage, ServeConfig, StoreConfig, Supervisor};
use serde::{Deserialize, Serialize};

/// Options for the loopback load run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonOpts {
    /// Honest clients streaming recorded feeds.
    pub honest: usize,
    /// Clips each honest client streams.
    pub clips: usize,
    /// Clean training instances for the shared enrolment.
    pub train_count: usize,
    /// Per-connection token-bucket burst capacity.
    pub bucket_capacity: u32,
    /// Tokens regained per turn per connection.
    pub bucket_refill: f64,
    /// Rate-limited frames tolerated before an abuse disconnect.
    pub abuse_disconnect_after: u32,
    /// Turns of silence before an idle disconnect.
    pub idle_turns: u64,
    /// Turns a stalled partial frame survives before a slow-read
    /// disconnect.
    pub read_turns: u64,
    /// Frames the flooder bursts in one turn (must exceed the bucket).
    pub flood_frames: usize,
    /// Turn at which the hostile cast connects.
    pub hostile_at_turn: u64,
    /// Detections allowed per budget period.
    pub budget_clips: u64,
    /// Budget period length, ticks.
    pub budget_period_ticks: u64,
    /// Queued-clip deadline, ticks.
    pub deadline_ticks: u64,
}

impl Default for DaemonOpts {
    fn default() -> Self {
        DaemonOpts {
            honest: 4,
            clips: 2,
            train_count: 10,
            bucket_capacity: 16,
            bucket_refill: 4.0,
            abuse_disconnect_after: 16,
            idle_turns: 120,
            read_turns: 60,
            flood_frames: 64,
            hostile_at_turn: 40,
            budget_clips: 64,
            budget_period_ticks: 30,
            deadline_ticks: 1_000,
        }
    }
}

/// One client's row in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientRow {
    /// Client class (`honest`, `flood`, `garbage`, `slowloris`, `idle`).
    pub class: String,
    /// Frames (or raw bursts) the client sent.
    pub sent: u64,
    /// Verdict frames received.
    pub verdicts: u64,
    /// Shed frames received.
    pub sheds: u64,
    /// Turns from `Hello` to the first verdict (honest clients only).
    pub first_verdict_turns: Option<u64>,
    /// The daemon's typed goodbye, if the client was disconnected.
    pub goodbye: Option<String>,
}

/// The loopback load-generation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonResult {
    /// One row per client, honest first.
    pub rows: Vec<ClientRow>,
    /// Clips offered / served / shed (supervisor accounting).
    pub offered: u64,
    /// Clips served.
    pub served: u64,
    /// Clips shed.
    pub shed: u64,
    /// Verdict frames accounted at the wire (delivered + parked + orphaned).
    pub wire_verdicts: u64,
    /// Shed frames accounted at the wire.
    pub wire_sheds: u64,
    /// Frames refused by token buckets.
    pub rate_limited: u64,
    /// Typed disconnects: abuse / idle / slow-read / malformed.
    pub abuse_disconnects: u64,
    /// Idle-deadline disconnects.
    pub idle_disconnects: u64,
    /// Slowloris disconnects.
    pub slow_read_disconnects: u64,
    /// Malformed/oversize disconnects.
    pub malformed_disconnects: u64,
    /// The abuse post-mortem fired in the flight recorder.
    pub abuse_postmortem_ok: bool,
    /// Every honest client saw every clip verdict.
    pub verdicts_complete_ok: bool,
    /// Every hostile client got exactly its typed cause.
    pub hostile_typed_ok: bool,
    /// `verdicts == served`, `sheds == shed`, `served + shed == offered`.
    pub accounting_ok: bool,
    /// All of the above.
    pub integrity_ok: bool,
}

impl DaemonResult {
    /// Renders the result as an aligned table plus a verdict footer.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.class.clone(),
                    r.sent.to_string(),
                    r.verdicts.to_string(),
                    r.sheds.to_string(),
                    r.first_verdict_turns
                        .map_or("-".to_string(), |t| t.to_string()),
                    r.goodbye.clone().unwrap_or_else(|| "-".to_string()),
                ]
            })
            .collect();
        let mut out = render_table(
            "Daemon — loopback load generation with a hostile cast",
            &[
                "client",
                "sent",
                "verdicts",
                "sheds",
                "first-verdict",
                "goodbye",
            ],
            &rows,
        );
        out.push('\n');
        out.push_str(&format!(
            "offered {} served {} shed {}; wire verdicts {} wire sheds {}\n",
            self.offered, self.served, self.shed, self.wire_verdicts, self.wire_sheds,
        ));
        out.push_str(&format!(
            "abuse: rate-limited {} abuse-disconnects {} idle {} slow-read {} malformed {}; \
             abuse post-mortem: {}\n",
            self.rate_limited,
            self.abuse_disconnects,
            self.idle_disconnects,
            self.slow_read_disconnects,
            self.malformed_disconnects,
            ok(self.abuse_postmortem_ok),
        ));
        out.push_str(&format!(
            "honest verdicts complete: {}; hostile disconnects typed: {}; \
             wire accounting (served+shed==offered): {}\n",
            ok(self.verdicts_complete_ok),
            ok(self.hostile_typed_ok),
            ok(self.accounting_ok),
        ));
        out.push_str(&format!("daemon integrity: {}\n", ok(self.integrity_ok)));
        out
    }
}

fn ok(flag: bool) -> String {
    if flag { "ok" } else { "FAIL" }.to_string()
}

struct HonestClient {
    client: DaemonClient,
    feed: SampleFeed,
    session: Option<u64>,
    admitted_turn: u64,
    first_verdict_turn: Option<u64>,
    sent: u64,
    verdicts: u64,
    sheds: u64,
}

/// Runs the loopback load-generation experiment.
///
/// # Errors
///
/// Propagates scenario, training, daemon and transport errors; hostile
/// traffic is never an error (it is the subject).
pub fn run(opts: DaemonOpts) -> ExpResult<DaemonResult> {
    let clean = ScenarioBuilder::default();
    let training: Vec<TracePair> = (0..opts.train_count)
        .map(|i| clean.legitimate(0, 91_000 + i as u64))
        .collect::<Result<_, _>>()?;
    let detector = Detector::train_from_traces(&training, Config::default())?;

    let serve_config = ServeConfig {
        max_sessions: opts.honest + 2,
        queue_clips: 4,
        budget_clips: opts.budget_clips,
        budget_period_ticks: opts.budget_period_ticks,
        deadline_ticks: opts.deadline_ticks,
        ..ServeConfig::default()
    };
    let daemon_config = DaemonConfig {
        bucket_capacity: opts.bucket_capacity,
        bucket_refill: opts.bucket_refill,
        abuse_disconnect_after: opts.abuse_disconnect_after,
        idle_turns: opts.idle_turns,
        read_turns: opts.read_turns,
        ..DaemonConfig::default()
    };
    let sup = Supervisor::new(serve_config)?.with_flight(FlightConfig::default());
    let store = CheckpointStore::new(MemStorage::new(), StoreConfig::default())?;
    let det = detector.clone();
    let mut daemon: Daemon<MemStorage> = Daemon::new(
        sup,
        Box::new(move |_| StreamingDetector::new(det.clone(), 15.0, 3)),
        daemon_config,
        Some(store),
    )?;

    // Honest clients: one multi-clip recorded feed each, paced one sample
    // per event-loop turn — the daemon's real-time cadence.
    let mut honest = Vec::with_capacity(opts.honest);
    for ci in 0..opts.honest {
        let pairs: Vec<TracePair> = (0..opts.clips)
            .map(|clip| clean.legitimate(0, 92_000 + (clip * 100 + ci) as u64))
            .collect::<Result<_, _>>()?;
        let mut client = DaemonClient::connect(daemon.port())?;
        client.send(&Frame::Hello)?;
        honest.push(HonestClient {
            client,
            feed: SampleFeed::from_pairs(&pairs)?,
            session: None,
            admitted_turn: 0,
            first_verdict_turn: None,
            sent: 1,
            verdicts: 0,
            sheds: 0,
        });
    }

    let mut flood: Option<DaemonClient> = None;
    let mut garbage: Option<DaemonClient> = None;
    let mut slowloris: Option<DaemonClient> = None;
    let mut idler: Option<DaemonClient> = None;
    let mut flood_sent = 0u64;

    let total_steps = opts.clips * StreamingDetector::new(detector, 15.0, 3)?.clip_samples();
    let max_turns = (total_steps as u64) + opts.idle_turns + 2_000;
    for turn in 0..max_turns {
        // The hostile cast arrives mid-run, all at once.
        if turn == opts.hostile_at_turn {
            let mut f = DaemonClient::connect(daemon.port())?;
            for nonce in 0..opts.flood_frames as u64 {
                f.send(&Frame::Ping { nonce })?;
                flood_sent += 1;
            }
            flood = Some(f);
            let mut g = DaemonClient::connect(daemon.port())?;
            g.send_raw(b"\xDE\xAD\xBE\xEF not a lumen frame")?;
            garbage = Some(g);
            let mut s = DaemonClient::connect(daemon.port())?;
            s.send_raw(&lumen_daemon::wire::MAGIC[..2])?;
            slowloris = Some(s);
            idler = Some(DaemonClient::connect(daemon.port())?);
        }
        for h in honest.iter_mut() {
            if let Some(session) = h.session {
                if let Some((tx, rx)) = h.feed.next_sample() {
                    h.client.send(&Frame::Sample { session, tx, rx })?;
                    h.sent += 1;
                }
            }
        }
        daemon.turn_once()?;
        for h in honest.iter_mut() {
            for frame in h.client.poll()? {
                match frame {
                    Frame::Welcome { session } => {
                        h.session = Some(session);
                        h.admitted_turn = turn;
                        h.client.set_session(Some(session));
                    }
                    Frame::Verdict { .. } => {
                        h.verdicts += 1;
                        h.first_verdict_turn.get_or_insert(turn - h.admitted_turn);
                    }
                    Frame::Shed { .. } => h.sheds += 1,
                    _ => {}
                }
            }
        }
        for hostile in [&mut flood, &mut garbage, &mut slowloris, &mut idler]
            .into_iter()
            .flatten()
        {
            if !hostile.is_closed() {
                hostile.poll()?;
            }
        }
        let done = honest
            .iter()
            .all(|h| h.feed.remaining() == 0 && h.verdicts + h.sheds >= opts.clips as u64);
        let hostiles_settled = [&flood, &garbage, &slowloris, &idler]
            .iter()
            .all(|h| h.as_ref().is_none_or(|c| c.is_closed()));
        if done && hostiles_settled && turn > opts.hostile_at_turn {
            break;
        }
    }
    daemon.drain(10_000)?;
    for h in honest.iter_mut() {
        h.client.poll()?;
    }

    let goodbye_of = |c: &Option<DaemonClient>| c.as_ref().and_then(DaemonClient::goodbye);
    let serve = daemon.serve_stats().clone();
    let wire = daemon.wire_stats().clone();

    let verdicts_complete_ok = honest
        .iter()
        .all(|h| h.verdicts + h.sheds >= opts.clips as u64 && h.session.is_some());
    let hostile_typed_ok = goodbye_of(&flood) == Some(DisconnectCause::RateLimitAbuse)
        && goodbye_of(&garbage) == Some(DisconnectCause::Malformed)
        && goodbye_of(&slowloris) == Some(DisconnectCause::SlowRead)
        && goodbye_of(&idler) == Some(DisconnectCause::IdleTimeout);
    let accounting_ok = wire.verdict_total() == serve.served_clips
        && wire.shed_total() == serve.shed_clips
        && serve.served_clips + serve.shed_clips == serve.offered_clips;
    let abuse_postmortem_ok = daemon.supervisor().dump_flight_record().is_some();
    let integrity_ok =
        verdicts_complete_ok && hostile_typed_ok && accounting_ok && abuse_postmortem_ok;

    let mut rows: Vec<ClientRow> = honest
        .iter()
        .map(|h| ClientRow {
            class: "honest".to_string(),
            sent: h.sent,
            verdicts: h.verdicts,
            sheds: h.sheds,
            first_verdict_turns: h.first_verdict_turn,
            goodbye: h.client.goodbye().map(|c| c.to_string()),
        })
        .collect();
    for (class, sent, client) in [
        ("flood", flood_sent, &flood),
        ("garbage", 1, &garbage),
        ("slowloris", 1, &slowloris),
        ("idle", 0, &idler),
    ] {
        rows.push(ClientRow {
            class: class.to_string(),
            sent,
            verdicts: 0,
            sheds: 0,
            first_verdict_turns: None,
            goodbye: goodbye_of(client).map(|c| c.to_string()),
        });
    }

    Ok(DaemonResult {
        rows,
        offered: serve.offered_clips,
        served: serve.served_clips,
        shed: serve.shed_clips,
        wire_verdicts: wire.verdict_total(),
        wire_sheds: wire.shed_total(),
        rate_limited: wire.rate_limited,
        abuse_disconnects: wire.abuse_disconnects,
        idle_disconnects: wire.idle_disconnects,
        slow_read_disconnects: wire.slow_read_disconnects,
        malformed_disconnects: wire.malformed_disconnects,
        abuse_postmortem_ok,
        verdicts_complete_ok,
        hostile_typed_ok,
        accounting_ok,
        integrity_ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_load_run_reaches_integrity() {
        let r = run(DaemonOpts {
            honest: 2,
            clips: 1,
            train_count: 8,
            ..DaemonOpts::default()
        })
        .expect("run");
        assert!(r.integrity_ok, "{}", r.print());
        let rendered = r.print();
        assert!(rendered.contains("daemon integrity: ok"));
        assert!(rendered.contains("rate-limit abuse"));
    }
}
