//! Related-work comparison (the paper's three claimed strengths, Sec. I /
//! Sec. X-B, made quantitative): Lumen versus a FaceLive-style
//! head-movement challenge and a Tang-et-al.-style screen-flashing
//! challenge, scored on
//!
//! * rejection of a reenactment attacker *with* the countermeasure the
//!   paper predicts (sensor forging for FaceLive; nothing extra needed
//!   against flashing),
//! * user-experience disruption (how much of the displayed video the
//!   defense destroys),
//! * deployment requirements (extra sensors; attacker-side trust).

use crate::runner::{pct, render_table};
use crate::ExpResult;
use lumen_attack::facelive::{FaceLiveDetector, HeadMovementChallenge};
use lumen_attack::flashing::{live_face_response, FlashingChallenge, FlashingDetector};
use lumen_attack::reenact::ReenactmentAttacker;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_core::detector::Detector;
use lumen_core::Config;
use lumen_video::content::MeteringScript;
use lumen_video::profile::UserProfile;
use lumen_video::synth::SynthConfig;
use serde::{Deserialize, Serialize};

/// Options for the related-work comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelatedWorkOpts {
    /// Trials per defense.
    pub trials: usize,
    /// The impersonated volunteer.
    pub victim: usize,
}

impl Default for RelatedWorkOpts {
    fn default() -> Self {
        RelatedWorkOpts {
            trials: 30,
            victim: 0,
        }
    }
}

/// One defense's row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelatedWorkRow {
    /// Defense name.
    pub defense: String,
    /// Acceptance rate for genuine users.
    pub tar: f64,
    /// Rejection rate against the strongest applicable reenactment attack.
    pub trr: f64,
    /// Mean displayed-video disruption in `[0, 1]`.
    pub disruption: f64,
    /// Whether extra sensors / hardware trust on the remote device are
    /// required.
    pub needs_remote_trust: bool,
}

/// The related-work comparison result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelatedWorkResult {
    /// One row per defense.
    pub rows: Vec<RelatedWorkRow>,
}

impl RelatedWorkResult {
    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.defense.clone(),
                    pct(r.tar),
                    pct(r.trr),
                    format!("{:.2}", r.disruption),
                    if r.needs_remote_trust { "yes" } else { "no" }.into(),
                ]
            })
            .collect();
        render_table(
            "Related work — defense comparison under reenactment + countermeasures",
            &["defense", "TAR", "TRR*", "UX cost", "remote trust"],
            &rows,
        )
    }
}

/// Runs the comparison.
///
/// # Errors
///
/// Propagates simulation and detection errors.
pub fn run(opts: RelatedWorkOpts) -> ExpResult<RelatedWorkResult> {
    let trials = opts.trials as u64;
    let victim = opts.victim;
    let mut rows = Vec::new();

    // --- FaceLive-style: correlates head pose with IMU. The reenactment
    // attacker forges the sensor stream (Sec. X-B) and sails through.
    {
        let det = FaceLiveDetector::default();
        let mut tar_hits = 0usize;
        let mut trr_hits = 0usize;
        for s in 0..trials {
            let challenge = HeadMovementChallenge::issue(15.0, 10.0, 100 + s)?;
            let (pose, imu) = challenge.live_response(200 + s);
            if det.accepts(&challenge, &pose, &imu)? {
                tar_hits += 1;
            }
            let (fpose, fimu) = challenge.forged_response(300 + s);
            if !det.accepts(&challenge, &fpose, &fimu)? {
                trr_hits += 1;
            }
        }
        rows.push(RelatedWorkRow {
            defense: "facelive-style".into(),
            tar: tar_hits as f64 / trials as f64,
            trr: trr_hits as f64 / trials as f64,
            disruption: 0.0,
            needs_remote_trust: true, // detection runs on the attacker's device
        });
    }

    // --- Flashing challenge: active reflection check; catches reenactment
    // but replaces displayed frames.
    {
        let det = FlashingDetector::default();
        let challenge = FlashingChallenge::default();
        let mut tar_hits = 0usize;
        let mut trr_hits = 0usize;
        let mut disruption_sum = 0.0;
        for s in 0..trials {
            let original = MeteringScript::random_with_seed(400 + s, 15.0)?.sample_signal(10.0)?;
            disruption_sum += challenge.disruption(&original)?;
            let genuine = det.accepts(
                &challenge,
                &original,
                live_face_response(SynthConfig::default(), UserProfile::preset(victim), 500 + s),
            )?;
            if genuine {
                tar_hits += 1;
            }
            let attacker =
                ReenactmentAttacker::new(UserProfile::preset(victim), SynthConfig::default());
            let fake_passes = det.accepts(&challenge, &original, |displayed| {
                attacker.generate(displayed.duration(), displayed.sample_rate(), 600 + s)
            })?;
            if !fake_passes {
                trr_hits += 1;
            }
        }
        rows.push(RelatedWorkRow {
            defense: "flashing-challenge".into(),
            tar: tar_hits as f64 / trials as f64,
            trr: trr_hits as f64 / trials as f64,
            disruption: disruption_sum / trials as f64,
            needs_remote_trust: false,
        });
    }

    // --- Lumen (this paper): passive reflection correlation.
    {
        let chats = ScenarioBuilder::default();
        let training: Vec<_> = (0..20)
            .map(|i| chats.legitimate(victim, 46_000 + i))
            .collect::<Result<_, _>>()?;
        let det = Detector::train_from_traces(&training, Config::default())?;
        let mut tar_hits = 0usize;
        let mut trr_hits = 0usize;
        for s in 0..trials {
            if det.detect(&chats.legitimate(victim, 47_000 + s)?)?.accepted {
                tar_hits += 1;
            }
            if !det
                .detect(&chats.reenactment(victim, 48_000 + s)?)?
                .accepted
            {
                trr_hits += 1;
            }
        }
        rows.push(RelatedWorkRow {
            defense: "lumen (this paper)".into(),
            tar: tar_hits as f64 / trials as f64,
            trr: trr_hits as f64 / trials as f64,
            disruption: 0.0, // never alters displayed frames
            needs_remote_trust: false,
        });
    }

    Ok(RelatedWorkResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_three_strengths() {
        let r = run(RelatedWorkOpts {
            trials: 12,
            victim: 0,
        })
        .unwrap();
        let facelive = &r.rows[0];
        let flashing = &r.rows[1];
        let lumen = &r.rows[2];
        // 1. FaceLive is defeated by sensor forging.
        assert!(facelive.trr < 0.2, "facelive TRR {}", facelive.trr);
        // 2. Flashing works but costs user experience; Lumen is passive.
        assert!(flashing.trr > 0.7);
        assert!(flashing.disruption > 0.2);
        assert_eq!(lumen.disruption, 0.0);
        // 3. Lumen keeps both rates high without remote trust.
        assert!(lumen.tar > 0.7 && lumen.trr > 0.7);
        assert!(!lumen.needs_remote_trust);
    }
}
