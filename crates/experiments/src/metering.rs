//! Camera-metering ablation (extension; Sec. II-B discusses both modes):
//! the callee's camera in spot-metering mode compensates face-level changes
//! aggressively, eating part of the reflection signal; multi-zone metering
//! (the default on phones) preserves it.

use crate::runner::{pct, render_table, user_features};
use crate::ExpResult;
use lumen_chat::scenario::ScenarioBuilder;
use lumen_core::dataset::split_train_test;
use lumen_core::detector::Detector;
use lumen_core::metrics::Confusion;
use lumen_core::Config;
use lumen_video::camera::{Camera, MeteringMode};
use lumen_video::synth::SynthConfig;
use serde::{Deserialize, Serialize};

/// Options for the metering ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeteringOpts {
    /// Volunteers per mode.
    pub users: usize,
    /// Clips per role per volunteer.
    pub clips: usize,
    /// Training instances.
    pub train_count: usize,
}

impl Default for MeteringOpts {
    fn default() -> Self {
        MeteringOpts {
            users: 3,
            clips: 24,
            train_count: 16,
        }
    }
}

/// One metering mode's row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeteringRow {
    /// Mode label.
    pub mode: String,
    /// Fraction of the face-radiance change the AE compensates away.
    pub ae_coupling: f64,
    /// Mean TAR.
    pub tar: f64,
    /// Mean TRR.
    pub trr: f64,
}

/// The metering-ablation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeteringResult {
    /// One row per metering mode.
    pub rows: Vec<MeteringRow>,
}

impl MeteringResult {
    /// Renders the result as an aligned table.
    pub fn print(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.clone(),
                    format!("{:.2}", r.ae_coupling),
                    pct(r.tar),
                    pct(r.trr),
                ]
            })
            .collect();
        render_table(
            "Metering ablation — callee camera AE mode",
            &["mode", "AE coupling", "TAR", "TRR"],
            &rows,
        )
    }
}

/// Runs the metering ablation.
///
/// # Errors
///
/// Propagates simulation and detection errors.
pub fn run(opts: MeteringOpts) -> ExpResult<MeteringResult> {
    let config = Config::default();
    let mut rows = Vec::new();
    for (label, mode) in [
        ("multi-zone", MeteringMode::MultiZone),
        ("spot", MeteringMode::Spot),
    ] {
        let camera = Camera {
            metering: mode,
            ..Camera::nexus6_front()
        };
        let builder = ScenarioBuilder::default().with_conditions(SynthConfig {
            camera,
            ..SynthConfig::default()
        });
        let mut c = Confusion::new();
        for u in 0..opts.users {
            let (legit, attack) = user_features(&builder, u, opts.clips, &config)?;
            let (train, test) = split_train_test(&legit, opts.train_count, 95 + u as u64);
            let det = Detector::train(&train, config)?;
            for f in &test {
                c.record(true, det.judge(f)?.accepted);
            }
            for f in &attack {
                c.record(false, det.judge(f)?.accepted);
            }
        }
        rows.push(MeteringRow {
            mode: label.to_string(),
            ae_coupling: mode.ae_coupling(),
            tar: c.tar(),
            trr: c.trr(),
        });
    }
    Ok(MeteringResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_complete_and_multizone_not_worse() {
        let r = run(MeteringOpts {
            users: 2,
            clips: 12,
            train_count: 8,
        })
        .unwrap();
        assert_eq!(r.rows.len(), 2);
        let mz = &r.rows[0];
        let spot = &r.rows[1];
        // Spot metering eats signal: its balanced accuracy must not beat
        // multi-zone by a wide margin.
        let bal = |row: &MeteringRow| 0.5 * (row.tar + row.trr);
        assert!(
            bal(mz) + 0.1 >= bal(spot),
            "mz {:.3} spot {:.3}",
            bal(mz),
            bal(spot)
        );
    }
}
