//! Aggregation: mergeable log-linear histograms, the event-folding
//! [`Registry`] and its serializable [`Snapshot`].
//!
//! The [`Histogram`] is HDR-style: a fixed log-linear bucket layout shared
//! by every instance, so [`Histogram::merge`] is a plain element-wise count
//! addition — exact, associative and commutative. Per-worker registries
//! from the experiment runner therefore combine into fleet-level quantiles
//! with exact counts and a bounded relative error on the quantile values
//! ([`QUANTILE_RELATIVE_ERROR`]).

use crate::event::{Event, EventKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Subbuckets per power-of-two octave. 32 subbuckets bound the relative
/// quantile error at `1 / (2 * 32)` ≈ 1.6% while keeping the whole layout
/// at [`BUCKETS`] fixed-size counters.
pub const SUBBUCKETS_PER_OCTAVE: usize = 32;

/// Lowest tracked octave: samples below `2^MIN_EXP` (≈ 9.3e-10) clamp into
/// the first bucket and are tallied in [`Histogram::saturated_low`].
const MIN_EXP: i32 = -30;

/// One past the highest tracked octave: samples at or above `2^MAX_EXP`
/// (≈ 1.1e12) clamp into the last bucket ([`Histogram::saturated_high`]).
/// The range comfortably covers nanosecond span durations (1 ns … ~18 min)
/// and every value observation the pipeline emits (z-scores, fractions,
/// delays in seconds).
const MAX_EXP: i32 = 40;

/// Total bucket count of the shared log-linear layout.
pub const BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize * SUBBUCKETS_PER_OCTAVE;

/// Upper bound on the relative error of [`Histogram::quantile`] for
/// positive samples inside the tracked range: half of one subbucket's
/// relative width, `1 / (2 * SUBBUCKETS_PER_OCTAVE)`.
pub const QUANTILE_RELATIVE_ERROR: f64 = 1.0 / (2.0 * SUBBUCKETS_PER_OCTAVE as f64);

/// A mergeable log-bucketed histogram with bounded relative error.
///
/// Every instance shares one global log-linear layout
/// ([`SUBBUCKETS_PER_OCTAVE`] subbuckets per octave across `2^-30 … 2^40`),
/// so allocation is fixed at construction ([`BUCKETS`] counters) and never
/// grows with the sample count — safe for unbounded production streams,
/// unlike the raw-sample histogram it replaces. Count, sum, min and max are
/// tracked exactly; quantiles come from bucket midpoints with relative
/// error at most [`QUANTILE_RELATIVE_ERROR`] for positive in-range samples.
/// Non-positive samples collapse into one dedicated bucket; out-of-range
/// samples clamp into the edge buckets and are tallied separately, never
/// silently dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    nonpositive: u64,
    saturated_low: u64,
    saturated_high: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram on the shared log-linear layout.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            nonpositive: 0,
            saturated_low: 0,
            saturated_high: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Maps a positive finite sample to its bucket index, or `None` when it
    /// falls outside the tracked range. Derived from the IEEE-754 bit
    /// pattern (exponent selects the octave, the mantissa's top bits the
    /// subbucket), so the mapping is exact and branch-cheap — no float
    /// logarithm whose platform-dependent rounding could move boundary
    /// samples between buckets.
    fn bucket_index(value: f64) -> Option<usize> {
        debug_assert!(value > 0.0 && value.is_finite());
        let bits = value.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        if !(MIN_EXP..MAX_EXP).contains(&exp) {
            return None;
        }
        let sub = ((bits >> (52 - 5)) & (SUBBUCKETS_PER_OCTAVE as u64 - 1)) as usize;
        Some((exp - MIN_EXP) as usize * SUBBUCKETS_PER_OCTAVE + sub)
    }

    /// Lower edge of bucket `i` (inclusive).
    fn bucket_lower(i: usize) -> f64 {
        let octave = (i / SUBBUCKETS_PER_OCTAVE) as i32 + MIN_EXP;
        let sub = (i % SUBBUCKETS_PER_OCTAVE) as f64;
        (octave as f64).exp2() * (1.0 + sub / SUBBUCKETS_PER_OCTAVE as f64)
    }

    /// Upper edge of bucket `i` (exclusive).
    fn bucket_upper(i: usize) -> f64 {
        if i + 1 >= BUCKETS {
            (MAX_EXP as f64).exp2()
        } else {
            Self::bucket_lower(i + 1)
        }
    }

    /// Midpoint used as the representative value of bucket `i`.
    fn bucket_mid(i: usize) -> f64 {
        0.5 * (Self::bucket_lower(i) + Self::bucket_upper(i))
    }

    /// Records one sample. Non-finite samples are ignored; non-positive and
    /// out-of-range samples are tracked in their dedicated tallies.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        if value <= 0.0 {
            self.nonpositive += 1;
        } else {
            match Self::bucket_index(value) {
                Some(i) => self.counts[i] += 1,
                None if value < 1.0 => {
                    self.saturated_low += 1;
                    self.counts[0] += 1;
                }
                None => {
                    self.saturated_high += 1;
                    self.counts[BUCKETS - 1] += 1;
                }
            }
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one by element-wise count
    /// addition. Because every instance shares one layout, the merge is
    /// exact (no re-bucketing error), associative and commutative on every
    /// integer tally, `min` and `max`; only the float `sum` accumulator
    /// can differ in the last ulp between merge orders.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.nonpositive += other.nonpositive;
        self.saturated_low += other.saturated_low;
        self.saturated_high += other.saturated_high;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples (exact).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (exact).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (exact); `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (exact); `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (exact); `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Non-positive samples (collapsed into one bucket).
    pub fn nonpositive(&self) -> u64 {
        self.nonpositive
    }

    /// Positive samples below the tracked range, clamped into the first
    /// bucket.
    pub fn saturated_low(&self) -> u64 {
        self.saturated_low
    }

    /// Samples at or above the top of the tracked range, clamped into the
    /// last bucket.
    pub fn saturated_high(&self) -> u64 {
        self.saturated_high
    }

    /// Nearest-rank quantile, answered from bucket midpoints. For positive
    /// samples inside the tracked range the relative error is at most
    /// [`QUANTILE_RELATIVE_ERROR`]; `q = 0` and `q = 1` return the exact
    /// min / max. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.nonpositive;
        if rank <= seen {
            // All non-positive samples collapse to the recorded minimum:
            // the layout only resolves positive magnitudes.
            return Some(self.min);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank <= seen {
                return Some(Self::bucket_mid(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs in ascending
    /// order; non-positive samples appear first with an upper bound of
    /// `0.0`. This sparse view is what snapshots serialize.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        let mut rows = Vec::new();
        if self.nonpositive > 0 {
            rows.push((0.0, self.nonpositive));
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                rows.push((Self::bucket_upper(i), c));
            }
        }
        rows
    }
}

/// Aggregated view of an event stream: counters, gauges, value histograms
/// and per-span duration histograms. Registries from different workers
/// [`merge`](Registry::merge) into one, which is how the experiment runner
/// combines per-worker instrumentation.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Folds one event into the aggregates. `SpanStart` carries no
    /// aggregate payload; marks are tallied as counters under their name.
    pub fn absorb(&mut self, event: &Event) {
        match event.kind {
            EventKind::CounterAdd => {
                *self.counters.entry(event.name.clone()).or_insert(0) +=
                    event.value.unwrap_or(0.0).max(0.0) as u64;
            }
            EventKind::GaugeSet => {
                self.gauges
                    .insert(event.name.clone(), event.value.unwrap_or(0.0));
            }
            EventKind::Observe => {
                self.histograms
                    .entry(event.name.clone())
                    .or_default()
                    .observe(event.value.unwrap_or(0.0));
            }
            EventKind::SpanEnd => {
                if let Some(ns) = event.duration_ns {
                    self.spans
                        .entry(event.name.clone())
                        .or_default()
                        .observe(ns as f64);
                }
            }
            EventKind::Mark => {
                *self.counters.entry(event.name.clone()).or_insert(0) += 1;
            }
            EventKind::SpanStart => {}
        }
    }

    /// Builds a registry by folding a whole event stream.
    pub fn from_events(events: &[Event]) -> Self {
        let mut r = Registry::new();
        for e in events {
            r.absorb(e);
        }
        r
    }

    /// Folds another registry into this one: counters add, gauges take the
    /// other's level (last writer wins), histograms and span stats merge
    /// bucket by bucket (exact: both sides share one layout).
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
        for (name, h) in &other.spans {
            self.spans.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Merges any number of registries into one (fold over
    /// [`Registry::merge`]). The fleet runtime uses this to collapse
    /// per-shard registries into one exact fleet-wide view: counters and
    /// histogram buckets add exactly, so cross-shard totals carry no
    /// aggregation error.
    #[must_use]
    pub fn merged<'a, I>(registries: I) -> Registry
    where
        I: IntoIterator<Item = &'a Registry>,
    {
        let mut out = Registry::new();
        for r in registries {
            out.merge(r);
        }
        out
    }

    /// Counter level by name.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge level by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Value histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Span-duration histogram (nanoseconds) by name.
    pub fn span_durations(&self, name: &str) -> Option<&Histogram> {
        self.spans.get(name)
    }

    /// Freezes the registry into a serializable snapshot, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        const MS: f64 = 1e-6; // nanoseconds -> milliseconds
        let q = |h: &Histogram, q: f64| h.quantile(q).unwrap_or(0.0);
        let spans = self
            .spans
            .iter()
            .map(|(name, h)| SpanRow {
                name: name.clone(),
                count: h.count(),
                total_ms: h.sum() * MS,
                mean_ms: h.mean() * MS,
                p50_ms: q(h, 0.5) * MS,
                p90_ms: q(h, 0.9) * MS,
                p99_ms: q(h, 0.99) * MS,
                p999_ms: q(h, 0.999) * MS,
                max_ms: h.max().unwrap_or(0.0) * MS,
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| CounterRow {
                name: name.clone(),
                value: *v,
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(name, v)| GaugeRow {
                name: name.clone(),
                value: *v,
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| HistogramRow {
                name: name.clone(),
                count: h.count(),
                mean: h.mean(),
                min: h.min().unwrap_or(0.0),
                max: h.max().unwrap_or(0.0),
                p50: q(h, 0.5),
                p90: q(h, 0.9),
                p99: q(h, 0.99),
                buckets: h
                    .nonzero_buckets()
                    .into_iter()
                    .map(|(le, count)| BucketRow { le, count })
                    .collect(),
                overflow: h.saturated_high(),
            })
            .collect();
        Snapshot {
            spans,
            counters,
            gauges,
            histograms,
        }
    }
}

/// Aggregated timing of one span name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRow {
    /// Span (stage) name.
    pub name: String,
    /// Completed span count.
    pub count: u64,
    /// Total time spent, milliseconds.
    pub total_ms: f64,
    /// Mean duration, milliseconds.
    pub mean_ms: f64,
    /// Median duration, milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile duration, milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile duration, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile duration, milliseconds.
    pub p999_ms: f64,
    /// Worst duration, milliseconds.
    pub max_ms: f64,
}

/// One counter level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterRow {
    /// Counter name.
    pub name: String,
    /// Accumulated count.
    pub value: u64,
}

/// One gauge level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeRow {
    /// Gauge name.
    pub name: String,
    /// Last recorded level.
    pub value: f64,
}

/// One non-empty histogram bucket (plain per-bucket counts, not
/// Prometheus-style cumulative). A bound of `0.0` is the dedicated
/// non-positive bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketRow {
    /// Bucket upper bound (exclusive).
    pub le: f64,
    /// Samples in this bucket.
    pub count: u64,
}

/// Aggregated distribution of one observed value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramRow {
    /// Metric name.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Mean sample (exact).
    pub mean: f64,
    /// Smallest sample (exact).
    pub min: f64,
    /// Largest sample (exact).
    pub max: f64,
    /// Median sample (bucket-midpoint estimate).
    pub p50: f64,
    /// 90th-percentile sample (bucket-midpoint estimate).
    pub p90: f64,
    /// 99th-percentile sample (bucket-midpoint estimate).
    pub p99: f64,
    /// Non-empty buckets, ascending by bound.
    pub buckets: Vec<BucketRow>,
    /// Samples clamped into the last bucket from above the tracked range.
    pub overflow: u64,
}

/// A frozen, serializable view of a [`Registry`]. Rows are sorted by name,
/// so snapshots of equal registries compare equal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Per-span timing rows.
    pub spans: Vec<SpanRow>,
    /// Counter rows.
    pub counters: Vec<CounterRow>,
    /// Gauge rows.
    pub gauges: Vec<GaugeRow>,
    /// Histogram rows.
    pub histograms: Vec<HistogramRow>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_event(name: &str, delta: f64) -> Event {
        Event {
            seq: 0,
            kind: EventKind::CounterAdd,
            name: name.to_string(),
            parent: None,
            depth: 0,
            session: None,
            clip: None,
            value: Some(delta),
            duration_ns: None,
            detail: None,
        }
    }

    /// Nearest-rank ground truth over the raw samples.
    fn exact_nearest_rank(samples: &mut [f64], q: f64) -> f64 {
        samples.sort_by(|a, b| a.total_cmp(b));
        let rank = ((q * samples.len() as f64).ceil().max(1.0) as usize).min(samples.len());
        samples[rank - 1]
    }

    #[test]
    fn exact_stats_and_extreme_quantiles() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
        assert!((h.mean() - 2.5).abs() < 1e-12);
        assert!((h.sum() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_stay_within_the_documented_relative_error() {
        let samples: Vec<f64> = (1..=2000).map(|i| (i as f64) * 17.3 + 0.5).collect();
        let mut h = Histogram::new();
        for &v in &samples {
            h.observe(v);
        }
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            let mut raw = samples.clone();
            let truth = exact_nearest_rank(&mut raw, q);
            let est = h.quantile(q).unwrap();
            let rel = (est - truth).abs() / truth;
            assert!(
                rel <= QUANTILE_RELATIVE_ERROR + 1e-12,
                "q={q}: est {est} vs truth {truth} (rel {rel})"
            );
        }
    }

    #[test]
    fn merge_is_exact_and_order_independent() {
        let all: Vec<f64> = (1..=600).map(|i| (i as f64) * 3.7).collect();
        let mut whole = Histogram::new();
        for &v in &all {
            whole.observe(v);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in all.iter().enumerate() {
            if i % 3 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole, "split+merge must equal observing everything");
        assert_eq!(ab, ba, "merge must be commutative");
    }

    #[test]
    fn nonpositive_and_saturation_are_tallied_not_dropped() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(1e-12); // below 2^-30
        h.observe(1e15); // above 2^40
        h.observe(f64::NAN); // ignored entirely
        h.observe(f64::INFINITY); // ignored entirely
        assert_eq!(h.count(), 4);
        assert_eq!(h.nonpositive(), 2);
        assert_eq!(h.saturated_low(), 1);
        assert_eq!(h.saturated_high(), 1);
        assert_eq!(h.min(), Some(-3.0));
        assert_eq!(h.max(), Some(1e15));
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets[0], (0.0, 2));
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), 4);
    }

    #[test]
    fn bucket_index_respects_bucket_edges() {
        // A value exactly on a bucket's lower edge belongs to that bucket,
        // and values just below it to the previous one.
        for i in [0, 1, 31, 32, 1000, BUCKETS - 1] {
            let lo = Histogram::bucket_lower(i);
            assert_eq!(Histogram::bucket_index(lo), Some(i), "lower edge of {i}");
            let inside = lo * (1.0 + 1.0 / 128.0);
            assert_eq!(Histogram::bucket_index(inside), Some(i), "inside {i}");
        }
        assert_eq!(Histogram::bucket_index(Histogram::bucket_upper(0)), Some(1));
    }

    #[test]
    fn registry_counter_merge_adds() {
        let mut a =
            Registry::from_events(&[counter_event("frames", 3.0), counter_event("frames", 2.0)]);
        let b = Registry::from_events(&[counter_event("frames", 5.0), counter_event("drops", 1.0)]);
        a.merge(&b);
        assert_eq!(a.counter("frames"), 10);
        assert_eq!(a.counter("drops"), 1);
        assert_eq!(a.counter("missing"), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_round_trips() {
        let mut r = Registry::new();
        r.absorb(&counter_event("zeta", 1.0));
        r.absorb(&counter_event("alpha", 2.0));
        r.absorb(&Event {
            seq: 1,
            kind: EventKind::SpanEnd,
            name: "detect".to_string(),
            parent: None,
            depth: 0,
            session: None,
            clip: None,
            value: None,
            duration_ns: Some(2_000_000),
            detail: None,
        });
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].name, "alpha");
        assert_eq!(snap.counters[1].name, "zeta");
        assert_eq!(snap.spans.len(), 1);
        assert!((snap.spans[0].total_ms - 2.0).abs() < 1e-9);
        let text = serde_json::to_string(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_buckets_are_sparse() {
        let mut r = Registry::new();
        let mut e = counter_event("detector.score", 0.0);
        e.kind = EventKind::Observe;
        e.value = Some(1.5);
        r.absorb(&e);
        let snap = r.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].buckets.len(), 1);
        assert_eq!(snap.histograms[0].buckets[0].count, 1);
    }

    #[test]
    fn marks_count_as_counters() {
        let mut r = Registry::new();
        r.absorb(&Event {
            seq: 0,
            kind: EventKind::Mark,
            name: "stream.status".to_string(),
            parent: None,
            depth: 0,
            session: None,
            clip: None,
            value: None,
            duration_ns: None,
            detail: Some("Gathering->Trusted".to_string()),
        });
        assert_eq!(r.counter("stream.status"), 1);
    }
}
