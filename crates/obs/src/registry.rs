//! Aggregation: fixed-bucket histograms, the event-folding [`Registry`]
//! and its serializable [`Snapshot`].

use crate::event::{Event, EventKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default bucket upper bounds for span durations, in nanoseconds
/// (1 µs … 10 s, roughly log-spaced).
pub const DURATION_BOUNDS_NS: [f64; 9] = [1e3, 1e4, 1e5, 1e6, 5e6, 1e7, 1e8, 1e9, 1e10];

/// Default bucket upper bounds for generic value observations (LOF scores,
/// feature values, delays in seconds — all live comfortably in this range).
pub const VALUE_BOUNDS: [f64; 8] = [0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 100.0];

/// A fixed-bucket histogram that also retains its raw observations, so the
/// bucket counts sketch the distribution while quantile readout stays exact
/// (via [`lumen_dsp::stats::quantile`]). Intended for bounded experiment
/// runs, not unbounded production streams.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    bucket_counts: Vec<u64>,
    overflow: u64,
    values: Vec<f64>,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    /// Samples above the last bound land in the overflow bucket.
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            bucket_counts: vec![0; bounds.len()],
            overflow: 0,
            values: Vec::new(),
            sum: 0.0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => self.bucket_counts[i] += 1,
            None => self.overflow += 1,
        }
        self.values.push(value);
        self.sum += value;
    }

    /// Folds another histogram into this one. The other histogram's raw
    /// observations are re-bucketed, so differing bounds merge correctly.
    pub fn merge(&mut self, other: &Histogram) {
        for &v in &other.values {
            self.observe(v);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.values.len() as u64
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.sum / self.values.len() as f64
        }
    }

    /// Smallest sample; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Largest sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Exact quantile of the recorded samples (linear interpolation between
    /// order statistics); `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        lumen_dsp::stats::quantile(&sorted, q)
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket sample counts (aligned with [`Histogram::bounds`]).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.bucket_counts
    }

    /// Samples above the last bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

/// Aggregated view of an event stream: counters, gauges, value histograms
/// and per-span duration histograms. Registries from different workers
/// [`merge`](Registry::merge) into one, which is how the experiment runner
/// combines per-worker instrumentation.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Folds one event into the aggregates. `SpanStart` and `Mark` carry no
    /// aggregate payload; marks are tallied as counters under their name.
    pub fn absorb(&mut self, event: &Event) {
        match event.kind {
            EventKind::CounterAdd => {
                *self.counters.entry(event.name.clone()).or_insert(0) +=
                    event.value.unwrap_or(0.0).max(0.0) as u64;
            }
            EventKind::GaugeSet => {
                self.gauges
                    .insert(event.name.clone(), event.value.unwrap_or(0.0));
            }
            EventKind::Observe => {
                self.histograms
                    .entry(event.name.clone())
                    .or_insert_with(|| Histogram::new(&VALUE_BOUNDS))
                    .observe(event.value.unwrap_or(0.0));
            }
            EventKind::SpanEnd => {
                if let Some(ns) = event.duration_ns {
                    self.spans
                        .entry(event.name.clone())
                        .or_insert_with(|| Histogram::new(&DURATION_BOUNDS_NS))
                        .observe(ns as f64);
                }
            }
            EventKind::Mark => {
                *self.counters.entry(event.name.clone()).or_insert(0) += 1;
            }
            EventKind::SpanStart => {}
        }
    }

    /// Builds a registry by folding a whole event stream.
    pub fn from_events(events: &[Event]) -> Self {
        let mut r = Registry::new();
        for e in events {
            r.absorb(e);
        }
        r
    }

    /// Folds another registry into this one: counters add, gauges take the
    /// other's level (last writer wins), histograms and span stats merge
    /// sample by sample.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_insert_with(|| Histogram::new(h.bounds()))
                .merge(h);
        }
        for (name, h) in &other.spans {
            self.spans
                .entry(name.clone())
                .or_insert_with(|| Histogram::new(&DURATION_BOUNDS_NS))
                .merge(h);
        }
    }

    /// Counter level by name.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge level by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Value histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Span-duration histogram (nanoseconds) by name.
    pub fn span_durations(&self, name: &str) -> Option<&Histogram> {
        self.spans.get(name)
    }

    /// Freezes the registry into a serializable snapshot, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        const MS: f64 = 1e-6; // nanoseconds -> milliseconds
        let spans = self
            .spans
            .iter()
            .map(|(name, h)| SpanRow {
                name: name.clone(),
                count: h.count(),
                total_ms: h.sum() * MS,
                mean_ms: h.mean() * MS,
                p50_ms: h.quantile(0.5).unwrap_or(0.0) * MS,
                p95_ms: h.quantile(0.95).unwrap_or(0.0) * MS,
                max_ms: h.max().unwrap_or(0.0) * MS,
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| CounterRow {
                name: name.clone(),
                value: *v,
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(name, v)| GaugeRow {
                name: name.clone(),
                value: *v,
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| HistogramRow {
                name: name.clone(),
                count: h.count(),
                mean: h.mean(),
                min: h.min().unwrap_or(0.0),
                max: h.max().unwrap_or(0.0),
                p50: h.quantile(0.5).unwrap_or(0.0),
                p95: h.quantile(0.95).unwrap_or(0.0),
                buckets: h
                    .bounds()
                    .iter()
                    .zip(h.bucket_counts())
                    .map(|(&le, &count)| BucketRow { le, count })
                    .collect(),
                overflow: h.overflow(),
            })
            .collect();
        Snapshot {
            spans,
            counters,
            gauges,
            histograms,
        }
    }
}

/// Aggregated timing of one span name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRow {
    /// Span (stage) name.
    pub name: String,
    /// Completed span count.
    pub count: u64,
    /// Total time spent, milliseconds.
    pub total_ms: f64,
    /// Mean duration, milliseconds.
    pub mean_ms: f64,
    /// Median duration, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile duration, milliseconds.
    pub p95_ms: f64,
    /// Worst duration, milliseconds.
    pub max_ms: f64,
}

/// One counter level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterRow {
    /// Counter name.
    pub name: String,
    /// Accumulated count.
    pub value: u64,
}

/// One gauge level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeRow {
    /// Gauge name.
    pub name: String,
    /// Last recorded level.
    pub value: f64,
}

/// One histogram bucket: samples `<= le`, cumulative with lower buckets
/// excluded (plain per-bucket counts, not Prometheus-style cumulative).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketRow {
    /// Bucket upper bound (inclusive).
    pub le: f64,
    /// Samples in this bucket.
    pub count: u64,
}

/// Aggregated distribution of one observed value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramRow {
    /// Metric name.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Mean sample.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median sample.
    pub p50: f64,
    /// 95th-percentile sample.
    pub p95: f64,
    /// Fixed buckets.
    pub buckets: Vec<BucketRow>,
    /// Samples above the last bucket bound.
    pub overflow: u64,
}

/// A frozen, serializable view of a [`Registry`]. Rows are sorted by name,
/// so snapshots of equal registries compare equal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Per-span timing rows.
    pub spans: Vec<SpanRow>,
    /// Counter rows.
    pub counters: Vec<CounterRow>,
    /// Gauge rows.
    pub gauges: Vec<GaugeRow>,
    /// Histogram rows.
    pub histograms: Vec<HistogramRow>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_event(name: &str, delta: f64) -> Event {
        Event {
            seq: 0,
            kind: EventKind::CounterAdd,
            name: name.to_string(),
            parent: None,
            depth: 0,
            value: Some(delta),
            duration_ns: None,
            detail: None,
        }
    }

    #[test]
    fn histogram_quantiles_are_exact() {
        let mut h = Histogram::new(&VALUE_BOUNDS);
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(0.5), Some(2.5));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.0));
        assert!((h.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        h.observe(f64::NAN); // ignored
        assert_eq!(h.bucket_counts(), &[1, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn histogram_merge_rebuckets() {
        let mut a = Histogram::new(&[1.0, 10.0]);
        a.observe(0.5);
        let mut b = Histogram::new(&[100.0]);
        b.observe(5.0);
        b.observe(50.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket_counts(), &[1, 1]);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    fn registry_counter_merge_adds() {
        let mut a =
            Registry::from_events(&[counter_event("frames", 3.0), counter_event("frames", 2.0)]);
        let b = Registry::from_events(&[counter_event("frames", 5.0), counter_event("drops", 1.0)]);
        a.merge(&b);
        assert_eq!(a.counter("frames"), 10);
        assert_eq!(a.counter("drops"), 1);
        assert_eq!(a.counter("missing"), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_round_trips() {
        let mut r = Registry::new();
        r.absorb(&counter_event("zeta", 1.0));
        r.absorb(&counter_event("alpha", 2.0));
        r.absorb(&Event {
            seq: 1,
            kind: EventKind::SpanEnd,
            name: "detect".to_string(),
            parent: None,
            depth: 0,
            value: None,
            duration_ns: Some(2_000_000),
            detail: None,
        });
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].name, "alpha");
        assert_eq!(snap.counters[1].name, "zeta");
        assert_eq!(snap.spans.len(), 1);
        assert!((snap.spans[0].total_ms - 2.0).abs() < 1e-9);
        let text = serde_json::to_string(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn marks_count_as_counters() {
        let mut r = Registry::new();
        r.absorb(&Event {
            seq: 0,
            kind: EventKind::Mark,
            name: "stream.status".to_string(),
            parent: None,
            depth: 0,
            value: None,
            duration_ns: None,
            detail: Some("Gathering->Trusted".to_string()),
        });
        assert_eq!(r.counter("stream.status"), 1);
    }
}
