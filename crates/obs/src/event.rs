//! The structured event model every sink consumes.
//!
//! Events are designed for two different readers at once: the
//! [`InMemorySink`](crate::sink::InMemorySink) folds them into an aggregated
//! [`Registry`](crate::registry::Registry), while the
//! [`JsonlSink`](crate::sink::JsonlSink) writes each one as a line of JSON
//! for offline analysis. Every field except [`Event::duration_ns`] is a
//! deterministic function of the instrumented code path, so two runs of the
//! same seeded scenario produce identical [`Event::stable`] streams.

use serde::{Deserialize, Serialize};

/// What an [`Event`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A span opened; `parent` and `depth` locate it in the hierarchy.
    SpanStart,
    /// A span closed; `duration_ns` carries the measured wall time.
    SpanEnd,
    /// A counter increment; `value` is the delta.
    CounterAdd,
    /// A gauge update; `value` is the new level.
    GaugeSet,
    /// A histogram observation; `value` is the sample.
    Observe,
    /// A free-form annotation; `detail` carries the payload.
    Mark,
}

/// One observability event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Monotone per-recorder sequence number (emission order).
    pub seq: u64,
    /// Event discriminator.
    pub kind: EventKind,
    /// Metric, span or annotation name.
    pub name: String,
    /// Name of the enclosing span on this thread, if any.
    pub parent: Option<String>,
    /// Span-stack depth at emission time (0 = no enclosing span).
    pub depth: u64,
    /// Session the emitting code was serving, if a
    /// [`session scope`](crate::Recorder::session_scope) was open.
    pub session: Option<u64>,
    /// Clip index within the session, if a
    /// [`clip scope`](crate::Recorder::clip_scope) was open.
    pub clip: Option<u64>,
    /// Numeric payload: counter delta, gauge level or observed sample.
    pub value: Option<f64>,
    /// Measured span duration in nanoseconds (`SpanEnd` only). This is the
    /// only field that varies between runs of the same seeded scenario.
    pub duration_ns: Option<u64>,
    /// Free-form annotation payload (`Mark` only).
    pub detail: Option<String>,
}

impl Event {
    /// The event with its wall-clock measurement removed. Two runs of the
    /// same seeded scenario produce identical `stable` streams even though
    /// the measured durations differ.
    pub fn stable(&self) -> Event {
        Event {
            duration_ns: None,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            seq: 7,
            kind: EventKind::SpanEnd,
            name: "preprocess".to_string(),
            parent: Some("detect".to_string()),
            depth: 1,
            session: Some(3),
            clip: Some(17),
            value: None,
            duration_ns: Some(12_345),
            detail: None,
        }
    }

    #[test]
    fn stable_strips_only_the_duration() {
        let e = sample();
        let s = e.stable();
        assert_eq!(s.duration_ns, None);
        assert_eq!(s.seq, e.seq);
        assert_eq!(s.name, e.name);
        assert_eq!(s.parent, e.parent);
        assert_eq!(s.session, e.session);
        assert_eq!(s.clip, e.clip);
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let e = sample();
        let text = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&text).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn kind_serializes_as_its_variant_name() {
        let text = serde_json::to_string(&EventKind::CounterAdd).unwrap();
        assert_eq!(text, "\"CounterAdd\"");
    }
}
