//! The [`Recorder`] handle instrumented code holds, and the [`SpanGuard`]
//! RAII timer.

use crate::event::{Event, EventKind};
use crate::sink::{InMemorySink, Sink};
use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    // The per-thread stack of open span names: parents are attributed per
    // thread, so a recorder shared across workers never mixes their spans.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };

    // The per-thread trace context: which session / clip the code currently
    // executing on this thread is serving. Scoped the same way spans are, so
    // a recorder shared across workers never mixes their attributions.
    static TRACE_CTX: Cell<TraceCtx> = const { Cell::new(TraceCtx { session: None, clip: None }) };
}

/// The ambient trace attribution applied to every emitted event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TraceCtx {
    session: Option<u64>,
    clip: Option<u64>,
}

struct Inner {
    sink: Arc<dyn Sink>,
    seq: AtomicU64,
}

/// A cheap, cloneable handle instrumented code emits events through.
///
/// The disabled state ([`Recorder::null`], the default, or any sink whose
/// [`Sink::is_active`] is `false`) short-circuits before any event is
/// assembled: no allocation, no clock read, no lock. Instrumented APIs can
/// therefore take a `Recorder` unconditionally.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Recorder {
    /// The disabled recorder (every emission is a no-op).
    pub fn null() -> Self {
        Recorder { inner: None }
    }

    /// A recorder emitting into `sink`. An inactive sink yields a disabled
    /// recorder, so `Recorder::new(Arc::new(NullSink))` costs nothing per
    /// event.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        if sink.is_active() {
            Recorder {
                inner: Some(Arc::new(Inner {
                    sink,
                    seq: AtomicU64::new(0),
                })),
            }
        } else {
            Recorder::null()
        }
    }

    /// Convenience: a recorder backed by a fresh [`InMemorySink`], returning
    /// both so the caller can inspect what was recorded.
    pub fn in_memory() -> (Self, Arc<InMemorySink>) {
        let sink = Arc::new(InMemorySink::new());
        (Recorder::new(sink.clone()), sink)
    }

    /// `true` when events actually reach a sink.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn emit(inner: &Inner, kind: EventKind, name: &str, payload: Payload) {
        let ctx = TRACE_CTX.with(Cell::get);
        let event = Event {
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            kind,
            name: name.to_string(),
            parent: payload.parent,
            depth: payload.depth,
            session: ctx.session,
            clip: ctx.clip,
            value: payload.value,
            duration_ns: payload.duration_ns,
            detail: payload.detail,
        };
        inner.sink.record(&event);
    }

    /// Tags every event emitted on this thread with `session` until the
    /// returned guard drops, at which point the previous attribution (if
    /// any) is restored. Disabled recorders return an inert guard.
    #[must_use = "the session tag applies until the guard drops"]
    pub fn session_scope(&self, session: u64) -> TraceGuard {
        if self.inner.is_none() {
            return TraceGuard { restore: None };
        }
        TRACE_CTX.with(|c| {
            let prev = c.get();
            c.set(TraceCtx {
                session: Some(session),
                ..prev
            });
            TraceGuard {
                restore: Some(prev),
            }
        })
    }

    /// Tags every event emitted on this thread with `clip` until the
    /// returned guard drops; nests inside [`Recorder::session_scope`].
    /// Disabled recorders return an inert guard.
    #[must_use = "the clip tag applies until the guard drops"]
    pub fn clip_scope(&self, clip: u64) -> TraceGuard {
        if self.inner.is_none() {
            return TraceGuard { restore: None };
        }
        TRACE_CTX.with(|c| {
            let prev = c.get();
            c.set(TraceCtx {
                clip: Some(clip),
                ..prev
            });
            TraceGuard {
                restore: Some(prev),
            }
        })
    }

    fn context() -> (Option<String>, u64) {
        SPAN_STACK.with(|s| {
            let s = s.borrow();
            (s.last().map(|n| n.to_string()), s.len() as u64)
        })
    }

    /// Opens a timing span; the returned guard closes it (emitting the
    /// measured duration) when dropped. Spans opened while another span is
    /// live on the same thread record it as their parent.
    #[must_use = "the span is timed until the guard drops"]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { active: None };
        };
        let (parent, depth) = Self::context();
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        Self::emit(
            inner,
            EventKind::SpanStart,
            name,
            Payload {
                parent,
                depth,
                ..Payload::default()
            },
        );
        SpanGuard {
            active: Some(ActiveSpan {
                inner: inner.clone(),
                name,
                depth,
                start: Instant::now(),
            }),
        }
    }

    /// Increments a counter.
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            let (parent, depth) = Self::context();
            Self::emit(
                inner,
                EventKind::CounterAdd,
                name,
                Payload {
                    parent,
                    depth,
                    value: Some(delta as f64),
                    ..Payload::default()
                },
            );
        }
    }

    /// Sets a gauge level.
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            let (parent, depth) = Self::context();
            Self::emit(
                inner,
                EventKind::GaugeSet,
                name,
                Payload {
                    parent,
                    depth,
                    value: Some(value),
                    ..Payload::default()
                },
            );
        }
    }

    /// Sets a per-index gauge level under the name `{name}.{index}` —
    /// e.g. `fleet.shard.queue_depth.3` for shard 3. Gauge names are
    /// otherwise static; this is the one sanctioned dynamic-name path,
    /// for families indexed by a small bounded id (shards). The string
    /// is assembled only when the recorder is enabled.
    pub fn gauge_indexed(&self, name: &'static str, index: u64, value: f64) {
        if let Some(inner) = &self.inner {
            let (parent, depth) = Self::context();
            Self::emit(
                inner,
                EventKind::GaugeSet,
                &format!("{name}.{index}"),
                Payload {
                    parent,
                    depth,
                    value: Some(value),
                    ..Payload::default()
                },
            );
        }
    }

    /// Records one histogram observation.
    pub fn observe(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            let (parent, depth) = Self::context();
            Self::emit(
                inner,
                EventKind::Observe,
                name,
                Payload {
                    parent,
                    depth,
                    value: Some(value),
                    ..Payload::default()
                },
            );
        }
    }

    /// Emits a free-form annotation (verdicts, status transitions, ...).
    pub fn mark(&self, name: &'static str, detail: &str) {
        if let Some(inner) = &self.inner {
            let (parent, depth) = Self::context();
            Self::emit(
                inner,
                EventKind::Mark,
                name,
                Payload {
                    parent,
                    depth,
                    detail: Some(detail.to_string()),
                    ..Payload::default()
                },
            );
        }
    }
}

/// RAII guard returned by [`Recorder::session_scope`] /
/// [`Recorder::clip_scope`]: restores the previous thread-local trace
/// attribution when dropped. Guards nest lexically, like spans.
#[must_use = "the trace tag applies until the guard drops"]
pub struct TraceGuard {
    restore: Option<TraceCtx>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.restore.take() {
            TRACE_CTX.with(|c| c.set(prev));
        }
    }
}

/// The per-kind fields of an [`Event`]; `seq`, `kind` and `name` are filled
/// in by `emit`.
#[derive(Default)]
struct Payload {
    parent: Option<String>,
    depth: u64,
    value: Option<f64>,
    duration_ns: Option<u64>,
    detail: Option<String>,
}

struct ActiveSpan {
    inner: Arc<Inner>,
    name: &'static str,
    depth: u64,
    start: Instant,
}

/// RAII guard returned by [`Recorder::span`]; emits the `SpanEnd` event
/// with the measured wall time when dropped. Guards are expected to drop in
/// LIFO order (lexical scoping guarantees this).
#[must_use = "the span is timed until the guard drops"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else {
            return;
        };
        let elapsed = span.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop the nearest matching frame so one out-of-order drop cannot
            // desync the whole stack.
            if let Some(i) = s.iter().rposition(|&n| n == span.name) {
                s.remove(i);
            }
        });
        Recorder::emit(
            &span.inner,
            EventKind::SpanEnd,
            span.name,
            Payload {
                depth: span.depth,
                duration_ns: Some(elapsed),
                ..Payload::default()
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::NullSink;

    #[test]
    fn null_recorder_is_disabled_and_silent() {
        let rec = Recorder::null();
        assert!(!rec.is_enabled());
        let _g = rec.span("detect");
        rec.add("frames", 1);
        rec.observe("score", 2.0);
        // Nothing to assert beyond "does not panic": there is no sink.
    }

    #[test]
    fn null_sink_collapses_to_disabled() {
        let rec = Recorder::new(Arc::new(NullSink));
        assert!(!rec.is_enabled());
    }

    #[test]
    fn default_is_null() {
        assert!(!Recorder::default().is_enabled());
    }

    #[test]
    fn spans_nest_and_attribute_parents() {
        let (rec, sink) = Recorder::in_memory();
        {
            let _outer = rec.span("detect");
            rec.add("clips", 1);
            {
                let _inner = rec.span("preprocess");
            }
        }
        let events = sink.events();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].kind, EventKind::SpanStart);
        assert_eq!(events[0].name, "detect");
        assert_eq!(events[0].depth, 0);
        assert_eq!(events[0].parent, None);
        assert_eq!(events[1].name, "clips");
        assert_eq!(events[1].parent.as_deref(), Some("detect"));
        assert_eq!(events[2].name, "preprocess");
        assert_eq!(events[2].parent.as_deref(), Some("detect"));
        assert_eq!(events[2].depth, 1);
        assert_eq!(events[3].kind, EventKind::SpanEnd);
        assert_eq!(events[3].name, "preprocess");
        assert!(events[3].duration_ns.is_some());
        assert_eq!(events[4].name, "detect");
        // Sequence numbers follow emission order.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn trace_scopes_tag_and_restore() {
        let (rec, sink) = Recorder::in_memory();
        rec.add("before", 1);
        {
            let _s = rec.session_scope(7);
            rec.add("in_session", 1);
            {
                let _c = rec.clip_scope(3);
                rec.add("in_clip", 1);
            }
            rec.add("after_clip", 1);
        }
        rec.add("after", 1);
        let by_name = |name: &str| sink.events().into_iter().find(|e| e.name == name).unwrap();
        assert_eq!(
            (by_name("before").session, by_name("before").clip),
            (None, None)
        );
        assert_eq!(by_name("in_session").session, Some(7));
        assert_eq!(by_name("in_session").clip, None);
        assert_eq!(by_name("in_clip").session, Some(7));
        assert_eq!(by_name("in_clip").clip, Some(3));
        assert_eq!(by_name("after_clip").session, Some(7));
        assert_eq!(by_name("after_clip").clip, None);
        assert_eq!(
            (by_name("after").session, by_name("after").clip),
            (None, None)
        );
    }

    #[test]
    fn nested_session_scopes_restore_the_outer_session() {
        let (rec, sink) = Recorder::in_memory();
        {
            let _a = rec.session_scope(1);
            {
                let _b = rec.session_scope(2);
                rec.add("inner", 1);
            }
            rec.add("outer", 1);
        }
        let events = sink.events();
        let find = |n: &str| events.iter().find(|e| e.name == n).unwrap().session;
        assert_eq!(find("inner"), Some(2));
        assert_eq!(find("outer"), Some(1));
    }

    #[test]
    fn disabled_recorder_scopes_are_inert() {
        let null = Recorder::null();
        let (rec, sink) = Recorder::in_memory();
        let _g = null.session_scope(9);
        rec.add("tagged_by_nobody", 1);
        assert_eq!(sink.events()[0].session, None);
    }

    #[test]
    fn stack_unwinds_after_guards_drop() {
        let (rec, sink) = Recorder::in_memory();
        {
            let _g = rec.span("a");
        }
        rec.add("after", 1);
        let events = sink.events();
        let after = events.iter().find(|e| e.name == "after").unwrap();
        assert_eq!(after.parent, None);
        assert_eq!(after.depth, 0);
    }
}
