//! Observability for the Lumen pipeline: hierarchical timing spans,
//! counters, gauges, mergeable log-bucketed histograms, pluggable event
//! sinks and a flight recorder for post-mortem reconstruction.
//!
//! The paper's evaluation (Sec. IX) reports per-stage computation overhead;
//! this crate is the instrumentation layer that lets the reproduction
//! measure the same breakdown. A [`Recorder`] is a cheap cloneable handle
//! that instrumented code (the detector, the chat transport, the video
//! synthesizer) emits [`Event`]s through; where they go is decided by the
//! [`Sink`] behind it:
//!
//! * [`NullSink`] / [`Recorder::null`] — the default: emission
//!   short-circuits before any event is assembled;
//! * [`InMemorySink`] — buffers events and aggregates them into a
//!   [`Registry`] / [`Snapshot`];
//! * [`JsonlSink`] — one JSON object per event, newline-delimited, for
//!   offline analysis;
//! * [`FlightSink`] — a bounded tick-stamped ring plus an always-on
//!   metrics fold, dumping deterministic [`Postmortem`] bundles on anomaly
//!   triggers;
//! * [`FanoutSink`] — duplicates events to several of the above.
//!
//! Events carry a session/clip trace context set via
//! [`Recorder::session_scope`] / [`Recorder::clip_scope`], so a fleet-wide
//! sink can reconstruct the per-session event sequence after the fact.
//! Histograms share one log-linear layout ([`registry::BUCKETS`] buckets,
//! relative quantile error bounded by
//! [`registry::QUANTILE_RELATIVE_ERROR`]) and merge exactly, which is how
//! per-worker registries combine into fleet quantiles.
//!
//! # Example
//!
//! ```
//! use lumen_obs::{report, Recorder};
//!
//! let (recorder, sink) = Recorder::in_memory();
//! {
//!     let _clip = recorder.span("detect");
//!     let _stage = recorder.span(lumen_obs::stage::PREPROCESS);
//!     recorder.add("clips", 1);
//! }
//! let snapshot = sink.snapshot();
//! assert_eq!(snapshot.spans.len(), 2);
//! println!("{}", report::render_text(&snapshot));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod event;
pub mod flight;
pub mod recorder;
pub mod registry;
pub mod report;
pub mod sink;

pub use event::{Event, EventKind};
pub use flight::{
    FlightConfig, FlightEvent, FlightRecorder, FlightSink, Postmortem, PostmortemHeader,
};
pub use recorder::{Recorder, SpanGuard, TraceGuard};
pub use registry::{Histogram, Registry, Snapshot, SpanRow};
pub use sink::{FanoutSink, InMemorySink, JsonlSink, NullSink, Sink};

/// Canonical span names for the detection pipeline stages, so every layer
/// and every report agrees on spelling.
pub mod stage {
    /// The whole frame-to-verdict detection of one clip.
    pub const DETECT: &str = "detect";
    /// Smoothing chain (low-pass through moving average) on both traces.
    pub const PREPROCESS: &str = "preprocess";
    /// Significant-luminance-change (peak) detection on both traces.
    pub const CHANGE_DETECTION: &str = "change_detection";
    /// Behaviour/trend feature extraction (z1–z4).
    pub const FEATURE_EXTRACTION: &str = "feature_extraction";
    /// LOF scoring of the feature vector.
    pub const LOF_SCORING: &str = "lof_scoring";
    /// Majority-vote fusion over the recent clip verdicts.
    pub const VOTE_FUSION: &str = "vote_fusion";
    /// Signal-quality screening of a clip before any vote is cast.
    pub const QUALITY_GATE: &str = "quality_gate";
    /// One scheduler tick of the multi-session serving runtime.
    pub const SERVE_TICK: &str = "serve_tick";
    /// One queued clip being served to detection by the runtime.
    pub const SERVE_CLIP: &str = "serve_clip";
    /// Capturing a checkpoint of the serving runtime.
    pub const CHECKPOINT: &str = "checkpoint";
    /// Matched-filter verification of one active luminance probe.
    pub const PROBE_VERIFY: &str = "probe_verify";
    /// One event-loop turn of the serving daemon (accept, read, dispatch,
    /// tick, write).
    pub const DAEMON_TURN: &str = "daemon_turn";
    /// One scheduler tick of the sharded fleet runtime (admission,
    /// per-shard ticks, work stealing).
    pub const FLEET_TICK: &str = "fleet_tick";

    /// The four stages nested under [`DETECT`] plus the fusion stage, in
    /// pipeline order.
    pub const PIPELINE: [&str; 5] = [
        PREPROCESS,
        CHANGE_DETECTION,
        FEATURE_EXTRACTION,
        LOF_SCORING,
        VOTE_FUSION,
    ];
}
