//! Renders a [`Snapshot`] as an aligned text table (the per-stage latency
//! breakdown of the paper's Sec. IX overhead analysis) or as JSON.

use crate::registry::Snapshot;

fn table(out: &mut String, title: &str, headers: &[&str], rows: &[Vec<String>]) {
    if rows.is_empty() {
        return;
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    out.push_str(&format!("### {title}\n"));
    let header: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:>width$}", h, width = widths[i]))
        .collect();
    let header = header.join("  ");
    out.push_str(&header);
    out.push('\n');
    out.push_str(&"-".repeat(header.len()));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out.push('\n');
}

fn ms(v: f64) -> String {
    format!("{v:.3}")
}

/// Renders the snapshot as aligned text tables: spans (the stage-latency
/// breakdown), counters, gauges and histograms. Empty sections are omitted.
pub fn render_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    table(
        &mut out,
        "Stage latency (ms)",
        &[
            "stage", "calls", "total", "mean", "p50", "p90", "p99", "p99.9", "max",
        ],
        &snapshot
            .spans
            .iter()
            .map(|s| {
                vec![
                    s.name.clone(),
                    s.count.to_string(),
                    ms(s.total_ms),
                    ms(s.mean_ms),
                    ms(s.p50_ms),
                    ms(s.p90_ms),
                    ms(s.p99_ms),
                    ms(s.p999_ms),
                    ms(s.max_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    table(
        &mut out,
        "Counters",
        &["counter", "value"],
        &snapshot
            .counters
            .iter()
            .map(|c| vec![c.name.clone(), c.value.to_string()])
            .collect::<Vec<_>>(),
    );
    table(
        &mut out,
        "Gauges",
        &["gauge", "value"],
        &snapshot
            .gauges
            .iter()
            .map(|g| vec![g.name.clone(), format!("{:.4}", g.value)])
            .collect::<Vec<_>>(),
    );
    table(
        &mut out,
        "Distributions",
        &["metric", "count", "mean", "p50", "p90", "p99", "min", "max"],
        &snapshot
            .histograms
            .iter()
            .map(|h| {
                vec![
                    h.name.clone(),
                    h.count.to_string(),
                    format!("{:.4}", h.mean),
                    format!("{:.4}", h.p50),
                    format!("{:.4}", h.p90),
                    format!("{:.4}", h.p99),
                    format!("{:.4}", h.min),
                    format!("{:.4}", h.max),
                ]
            })
            .collect::<Vec<_>>(),
    );
    if out.is_empty() {
        out.push_str("(no observability data recorded)\n");
    }
    out
}

/// Renders the snapshot as pretty-printed JSON.
///
/// # Errors
///
/// Propagates serialization errors (none occur for well-formed snapshots).
pub fn render_json(snapshot: &Snapshot) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};
    use crate::registry::Registry;

    fn snapshot() -> Snapshot {
        let mut r = Registry::new();
        r.absorb(&Event {
            seq: 0,
            kind: EventKind::SpanEnd,
            name: "preprocess".to_string(),
            parent: None,
            depth: 1,
            session: None,
            clip: None,
            value: None,
            duration_ns: Some(1_500_000),
            detail: None,
        });
        r.absorb(&Event {
            seq: 1,
            kind: EventKind::CounterAdd,
            name: "detector.accepted".to_string(),
            parent: None,
            depth: 0,
            session: None,
            clip: None,
            value: Some(3.0),
            duration_ns: None,
            detail: None,
        });
        r.snapshot()
    }

    #[test]
    fn text_report_contains_all_sections_present() {
        let text = render_text(&snapshot());
        assert!(text.contains("Stage latency"));
        assert!(text.contains("preprocess"));
        assert!(text.contains("Counters"));
        assert!(text.contains("detector.accepted"));
        assert!(!text.contains("Gauges"), "empty sections are omitted");
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let text = render_text(&Registry::new().snapshot());
        assert!(text.contains("no observability data"));
    }

    #[test]
    fn json_report_parses_back() {
        let snap = snapshot();
        let json = render_json(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
