//! Pluggable event sinks: the disabled fast path, in-memory aggregation
//! and line-delimited JSON capture.

use crate::event::Event;
use crate::registry::{Registry, Snapshot};
use parking_lot::Mutex;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

/// Consumes observability events. Implementations must be cheap and
/// infallible from the caller's point of view: instrumentation must never
/// fail the pipeline it observes.
pub trait Sink: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);

    /// `false` when recording is a no-op; the
    /// [`Recorder`](crate::recorder::Recorder) checks this once at
    /// construction and skips event assembly entirely for inactive sinks.
    fn is_active(&self) -> bool {
        true
    }
}

/// Discards everything. A recorder built on this sink is
/// indistinguishable from [`Recorder::null`](crate::recorder::Recorder::null):
/// no event is ever assembled, so the instrumented path stays within noise
/// of the uninstrumented one (verified by `benches/obs.rs`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}

    fn is_active(&self) -> bool {
        false
    }
}

/// Buffers every event in memory and aggregates on demand.
#[derive(Debug, Default)]
pub struct InMemorySink {
    events: Mutex<Vec<Event>>,
}

impl InMemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        InMemorySink::default()
    }

    /// A copy of every recorded event, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Folds the recorded events into an aggregated registry.
    pub fn registry(&self) -> Registry {
        Registry::from_events(&self.events.lock())
    }

    /// Aggregated, serializable snapshot of the recorded events.
    pub fn snapshot(&self) -> Snapshot {
        self.registry().snapshot()
    }
}

impl Sink for InMemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

/// Writes one JSON object per event, newline-delimited — the standard
/// format for offline analysis tooling. Write errors are swallowed
/// (instrumentation must not fail the pipeline); call
/// [`JsonlSink::flush`] to surface buffered-IO completion.
pub struct JsonlSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the writer's flush error.
    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().flush()
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.out.into_inner()
    }
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL capture file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl JsonlSink<Vec<u8>> {
    /// The captured JSONL text so far (in-memory writer only) — handy for
    /// tests and determinism checks.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.out.lock()).into_owned()
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&self, event: &Event) {
        if let Ok(line) = serde_json::to_string(event) {
            let mut out = self.out.lock();
            let _ = out.write_all(line.as_bytes());
            let _ = out.write_all(b"\n");
        }
    }
}

/// Duplicates every event to several sinks — e.g. a flight recorder plus a
/// JSONL capture file. Inactive children are filtered out at construction;
/// the fanout itself is active only while it has at least one child, so a
/// recorder built on an all-inactive fanout still collapses to the
/// disabled fast path.
#[derive(Default)]
pub struct FanoutSink {
    children: Vec<Arc<dyn Sink>>,
}

impl FanoutSink {
    /// A fanout over `children`, dropping any that report inactive.
    pub fn new(children: Vec<Arc<dyn Sink>>) -> Self {
        FanoutSink {
            children: children.into_iter().filter(|c| c.is_active()).collect(),
        }
    }
}

impl Sink for FanoutSink {
    fn record(&self, event: &Event) {
        for child in &self.children {
            child.record(event);
        }
    }

    fn is_active(&self) -> bool {
        !self.children.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn event(seq: u64) -> Event {
        Event {
            seq,
            kind: EventKind::Observe,
            name: "score".to_string(),
            parent: None,
            depth: 0,
            session: None,
            clip: None,
            value: Some(1.25),
            duration_ns: None,
            detail: None,
        }
    }

    #[test]
    fn null_sink_is_inactive() {
        assert!(!NullSink.is_active());
    }

    #[test]
    fn in_memory_sink_buffers_in_order() {
        let sink = InMemorySink::new();
        assert!(sink.is_empty());
        sink.record(&event(0));
        sink.record(&event(1));
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        sink.clear();
        assert_eq!(sink.len(), 0);
    }

    #[test]
    fn fanout_duplicates_and_filters_inactive() {
        let a = Arc::new(InMemorySink::new());
        let b = Arc::new(InMemorySink::new());
        let fan = FanoutSink::new(vec![a.clone(), Arc::new(NullSink), b.clone()]);
        assert!(fan.is_active());
        fan.record(&event(0));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert!(!FanoutSink::new(vec![Arc::new(NullSink)]).is_active());
        assert!(!FanoutSink::default().is_active());
    }

    #[test]
    fn jsonl_round_trip() {
        let sink = JsonlSink::new(Vec::new());
        sink.record(&event(0));
        sink.record(&event(1));
        let text = sink.contents();
        let back: Vec<Event> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(back, vec![event(0), event(1)]);
    }
}
