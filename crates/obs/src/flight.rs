//! The flight recorder: a bounded ring of recent structured events plus
//! deterministic tick-stamped post-mortem bundles.
//!
//! Averages tell you the fleet is healthy; the flight recorder tells you
//! what the one mistimed probe round or tripped breaker actually did. The
//! [`FlightSink`] sits behind an ordinary [`Recorder`](crate::Recorder) and
//! keeps three things, all bounded and allocation-stable:
//!
//! * a [`FlightRecorder`] ring of the most recent events, each stamped
//!   with the serving runtime's logical tick (never wall clock) and the
//!   session/clip trace context;
//! * an always-on [`Registry`] fold, so a live metrics snapshot is always
//!   one call away;
//! * a bounded queue of [`Postmortem`] bundles captured whenever an
//!   anomaly trigger fires (breaker trip, shed burst, watchdog retrigger,
//!   suspicious probe verdict).
//!
//! Post-mortems render as JSONL via [`Postmortem::to_jsonl`]; because
//! events are stored without their wall-clock durations, two runs of the
//! same seeded scenario dump byte-identical bundles.

use crate::event::{Event, EventKind};
use crate::registry::{Registry, Snapshot};
use crate::sink::Sink;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sizing for a [`FlightSink`]. Both bounds are hard: the ring drops its
/// oldest events (counted, never silent) and the post-mortem queue drops
/// its oldest bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightConfig {
    /// Ring capacity in events.
    pub capacity: usize,
    /// Post-mortem bundles retained before the oldest is evicted.
    pub max_postmortems: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            capacity: 4096,
            max_postmortems: 8,
        }
    }
}

/// One event as retained by the flight recorder: the deterministic fields
/// of an [`Event`], stamped with the logical tick that was current when it
/// was recorded. There is no wall-clock field at all, so post-mortems are
/// byte-identical across runs of the same seeded scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Logical tick of the serving runtime when the event was recorded.
    pub tick: u64,
    /// Per-recorder sequence number (emission order).
    pub seq: u64,
    /// Event discriminator.
    pub kind: EventKind,
    /// Metric, span or annotation name.
    pub name: String,
    /// Enclosing span, if any.
    pub parent: Option<String>,
    /// Span-stack depth at emission time.
    pub depth: u64,
    /// Session trace tag, if a session scope was open.
    pub session: Option<u64>,
    /// Clip trace tag, if a clip scope was open.
    pub clip: Option<u64>,
    /// Numeric payload (counter delta, gauge level, observed sample).
    pub value: Option<f64>,
    /// Free-form annotation payload.
    pub detail: Option<String>,
}

impl FlightEvent {
    fn from_event(tick: u64, event: &Event) -> Self {
        FlightEvent {
            tick,
            seq: event.seq,
            kind: event.kind,
            name: event.name.clone(),
            parent: event.parent.clone(),
            depth: event.depth,
            session: event.session,
            clip: event.clip,
            value: event.value,
            detail: event.detail.clone(),
        }
    }
}

/// A bounded ring buffer of [`FlightEvent`]s. Once full, every push evicts
/// the oldest event and increments [`FlightRecorder::dropped_events`] — the
/// loss is explicit, never silent.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<FlightEvent>,
    dropped: u64,
}

impl FlightRecorder {
    /// An empty ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            ring: VecDeque::with_capacity(capacity.max(1)),
            dropped: 0,
        }
    }

    /// Appends one event, evicting the oldest when full.
    pub fn push(&mut self, event: FlightEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.ring.iter().cloned().collect()
    }

    /// Events evicted so far to make room for newer ones.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

/// A frozen copy of the flight ring taken at an anomaly trigger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Postmortem {
    /// Why the bundle was captured (e.g. `breaker_tripped`, `shed_burst`).
    pub reason: String,
    /// Logical tick at capture time.
    pub tick: u64,
    /// Ring evictions before capture: how much history was already lost.
    pub dropped_events: u64,
    /// The retained events, oldest first.
    pub events: Vec<FlightEvent>,
}

/// The first line of a [`Postmortem::to_jsonl`] dump.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostmortemHeader {
    /// Why the bundle was captured.
    pub reason: String,
    /// Logical tick at capture time.
    pub tick: u64,
    /// Ring evictions before capture.
    pub dropped_events: u64,
    /// Number of event lines that follow.
    pub event_count: u64,
}

impl Postmortem {
    /// Renders the bundle as JSONL: one header line (reason, tick, drop
    /// count, event count) followed by one line per event, oldest first.
    /// Deterministic for seeded scenarios — no wall-clock field exists.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let header = PostmortemHeader {
            reason: self.reason.clone(),
            tick: self.tick,
            dropped_events: self.dropped_events,
            event_count: self.events.len() as u64,
        };
        if let Ok(line) = serde_json::to_string(&header) {
            out.push_str(&line);
            out.push('\n');
        }
        for event in &self.events {
            if let Ok(line) = serde_json::to_string(event) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

struct FlightState {
    ring: FlightRecorder,
    registry: Registry,
    postmortems: VecDeque<Postmortem>,
    max_postmortems: usize,
}

/// A [`Sink`] that maintains the flight ring, an always-on metrics
/// registry and the captured post-mortems.
///
/// The owner (the serving runtime) advances the logical tick with
/// [`FlightSink::set_tick`]; every event recorded afterwards is stamped
/// with that tick. [`FlightSink::trigger`] freezes the current ring into a
/// [`Postmortem`].
pub struct FlightSink {
    tick: AtomicU64,
    state: Mutex<FlightState>,
}

impl std::fmt::Debug for FlightSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightSink")
            .field("tick", &self.tick())
            .finish_non_exhaustive()
    }
}

impl FlightSink {
    /// An empty flight sink.
    pub fn new(config: FlightConfig) -> Self {
        FlightSink {
            tick: AtomicU64::new(0),
            state: Mutex::new(FlightState {
                ring: FlightRecorder::new(config.capacity),
                registry: Registry::new(),
                postmortems: VecDeque::new(),
                max_postmortems: config.max_postmortems.max(1),
            }),
        }
    }

    /// Sets the logical tick stamped onto subsequently recorded events.
    pub fn set_tick(&self, tick: u64) {
        self.tick.store(tick, Ordering::Relaxed);
    }

    /// The current logical tick.
    pub fn tick(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    /// Freezes the current ring into a [`Postmortem`] tagged `reason`,
    /// evicting the oldest retained bundle when the queue is full.
    pub fn trigger(&self, reason: &str) {
        let tick = self.tick();
        let mut state = self.state.lock();
        let bundle = Postmortem {
            reason: reason.to_string(),
            tick,
            dropped_events: state.ring.dropped_events(),
            events: state.ring.events(),
        };
        if state.postmortems.len() == state.max_postmortems {
            state.postmortems.pop_front();
        }
        state.postmortems.push_back(bundle);
    }

    /// The most recently captured post-mortem, if any.
    pub fn latest_postmortem(&self) -> Option<Postmortem> {
        self.state.lock().postmortems.back().cloned()
    }

    /// Every retained post-mortem, oldest first.
    pub fn postmortems(&self) -> Vec<Postmortem> {
        self.state.lock().postmortems.iter().cloned().collect()
    }

    /// Snapshot of the always-on metrics fold.
    pub fn registry_snapshot(&self) -> Snapshot {
        self.state.lock().registry.snapshot()
    }

    /// Ring evictions so far (history lost to the bound).
    pub fn dropped_events(&self) -> u64 {
        self.state.lock().ring.dropped_events()
    }
}

impl Sink for FlightSink {
    fn record(&self, event: &Event) {
        let tick = self.tick();
        let mut state = self.state.lock();
        // The registry folds the raw event (span durations feed the timing
        // histograms); the ring keeps only the deterministic fields.
        state.registry.absorb(event);
        state.ring.push(FlightEvent::from_event(tick, event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use std::sync::Arc;

    fn flight_pair(capacity: usize) -> (Recorder, Arc<FlightSink>) {
        let sink = Arc::new(FlightSink::new(FlightConfig {
            capacity,
            max_postmortems: 2,
        }));
        (Recorder::new(sink.clone()), sink)
    }

    #[test]
    fn ring_wraparound_drops_oldest_and_counts() {
        let mut ring = FlightRecorder::new(4);
        for seq in 0..10u64 {
            ring.push(FlightEvent {
                tick: seq,
                seq,
                kind: EventKind::Mark,
                name: "m".to_string(),
                parent: None,
                depth: 0,
                session: None,
                clip: None,
                value: None,
                detail: None,
            });
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped_events(), 6);
        let seqs: Vec<u64> = ring.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest events are the ones lost");
    }

    #[test]
    fn events_are_stamped_with_the_current_tick() {
        let (rec, sink) = flight_pair(64);
        sink.set_tick(3);
        rec.add("a", 1);
        sink.set_tick(7);
        rec.add("b", 1);
        sink.trigger("test");
        let pm = sink.latest_postmortem().unwrap();
        assert_eq!(pm.tick, 7);
        assert_eq!(pm.events[0].tick, 3);
        assert_eq!(pm.events[1].tick, 7);
    }

    #[test]
    fn span_durations_never_reach_the_ring_but_feed_the_registry() {
        let (rec, sink) = flight_pair(64);
        {
            let _g = rec.span("detect");
        }
        sink.trigger("test");
        let pm = sink.latest_postmortem().unwrap();
        let end = pm
            .events
            .iter()
            .find(|e| e.kind == EventKind::SpanEnd)
            .unwrap();
        assert!(
            !pm.to_jsonl().contains("duration"),
            "no wall clock in dumps"
        );
        assert_eq!(end.name, "detect");
        let snap = sink.registry_snapshot();
        assert_eq!(snap.spans.len(), 1, "registry still aggregates timings");
    }

    #[test]
    fn postmortem_queue_is_bounded() {
        let (rec, sink) = flight_pair(8);
        rec.add("x", 1);
        sink.trigger("one");
        sink.trigger("two");
        sink.trigger("three");
        let bundles = sink.postmortems();
        assert_eq!(bundles.len(), 2);
        assert_eq!(bundles[0].reason, "two");
        assert_eq!(bundles[1].reason, "three");
    }

    #[test]
    fn jsonl_round_trips_and_counts_header() {
        let (rec, sink) = flight_pair(8);
        let _s = rec.session_scope(5);
        rec.mark("serve.breaker", "Closed->Tripped");
        sink.trigger("breaker_tripped");
        let text = sink.latest_postmortem().unwrap().to_jsonl();
        let mut lines = text.lines();
        let header: PostmortemHeader = serde_json::from_str(lines.next().unwrap()).unwrap();
        assert_eq!(header.reason, "breaker_tripped");
        assert_eq!(header.event_count, 1);
        let event: FlightEvent = serde_json::from_str(lines.next().unwrap()).unwrap();
        assert_eq!(event.session, Some(5));
        assert_eq!(event.detail.as_deref(), Some("Closed->Tripped"));
    }
}
