//! Property-based tests for the DSP primitives.

use lumen_dsp::filters::{fir, moving, savgol, threshold};
use lumen_dsp::peaks::{find_peaks, PeakConfig};
use lumen_dsp::{dtw, normalize, stats, Signal};
use proptest::prelude::*;

fn finite_samples(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, 1..max_len)
}

proptest! {
    #[test]
    fn pearson_is_bounded(x in finite_samples(64), y in finite_samples(64)) {
        let n = x.len().min(y.len());
        let r = stats::pearson(&x[..n], &y[..n]).unwrap();
        prop_assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn pearson_is_symmetric(x in finite_samples(64), y in finite_samples(64)) {
        let n = x.len().min(y.len());
        let a = stats::pearson(&x[..n], &y[..n]).unwrap();
        let b = stats::pearson(&y[..n], &x[..n]).unwrap();
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn pearson_shift_scale_invariant(x in finite_samples(64), scale in 0.1f64..10.0, shift in -50.0f64..50.0) {
        prop_assume!(x.len() >= 3);
        let y: Vec<f64> = x.iter().map(|v| v * scale + shift).collect();
        if stats::stddev_population(&x) > 1e-6 {
            let r = stats::pearson(&x, &y).unwrap();
            prop_assert!((r - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn variance_is_non_negative(x in finite_samples(64)) {
        prop_assert!(stats::variance_population(&x) >= 0.0);
        prop_assert!(stats::variance_sample(&x) >= 0.0);
    }

    #[test]
    fn moving_average_stays_in_range(x in finite_samples(64), w in 1usize..10) {
        prop_assume!(w <= x.len());
        let s = Signal::new(x.clone(), 10.0).unwrap();
        let out = moving::moving_average(&s, w).unwrap();
        let lo = x.iter().cloned().fold(f64::MAX, f64::min);
        let hi = x.iter().cloned().fold(f64::MIN, f64::max);
        for &v in out.samples() {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn moving_variance_non_negative(x in finite_samples(64), w in 1usize..10) {
        prop_assume!(w <= x.len());
        let s = Signal::new(x, 10.0).unwrap();
        let out = moving::moving_variance(&s, w).unwrap();
        prop_assert!(out.samples().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn fir_lowpass_is_linear(x in finite_samples(48), a in -3.0f64..3.0) {
        prop_assume!(x.len() >= 2);
        let sx = Signal::new(x.clone(), 10.0).unwrap();
        let scaled = Signal::new(x.iter().map(|v| a * v).collect(), 10.0).unwrap();
        let f1 = fir::lowpass(&sx, 1.0).unwrap();
        let f2 = fir::lowpass(&scaled, 1.0).unwrap();
        for (u, v) in f1.samples().iter().zip(f2.samples()) {
            prop_assert!((a * u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn fir_lowpass_preserves_constant(level in -100.0f64..100.0, n in 8usize..64) {
        let s = Signal::new(vec![level; n], 10.0).unwrap();
        let out = fir::lowpass(&s, 1.0).unwrap();
        for &v in out.samples() {
            prop_assert!((v - level).abs() < 1e-6);
        }
    }

    #[test]
    fn savgol_preserves_linear_trend(a in -5.0f64..5.0, b in -50.0f64..50.0) {
        let s = Signal::from_fn(60, 10.0, |t| a * t + b).unwrap();
        let out = savgol::savgol_smooth(&s, 11, 2).unwrap();
        for i in 8..52 {
            prop_assert!((out.samples()[i] - s.samples()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn threshold_output_never_below_cutoff(x in finite_samples(64), cutoff in -10.0f64..10.0) {
        let s = Signal::new(x, 10.0).unwrap();
        let out = threshold::threshold_filter(&s, cutoff).unwrap();
        for &v in out.samples() {
            prop_assert!(v == 0.0 || v >= cutoff);
        }
    }

    #[test]
    fn peak_heights_match_signal(x in finite_samples(64)) {
        let peaks = find_peaks(&x, &PeakConfig::new());
        for p in peaks {
            prop_assert_eq!(p.height, x[p.index]);
            prop_assert!(p.prominence >= 0.0);
            prop_assert!(p.index > 0 && p.index < x.len() - 1);
        }
    }

    #[test]
    fn peaks_respect_min_distance(x in finite_samples(64), d in 2usize..8) {
        let peaks = find_peaks(&x, &PeakConfig::new().min_distance(d));
        for w in peaks.windows(2) {
            prop_assert!(w[1].index - w[0].index >= d);
        }
    }

    #[test]
    fn dtw_identity_is_zero(x in finite_samples(32)) {
        prop_assume!(x.len() >= 2);
        prop_assert_eq!(dtw::dtw_distance(&x, &x).unwrap(), 0.0);
    }

    #[test]
    fn dtw_is_symmetric_and_non_negative(x in finite_samples(24), y in finite_samples(24)) {
        prop_assume!(x.len() >= 2 && y.len() >= 2);
        let a = dtw::dtw_distance(&x, &y).unwrap();
        let b = dtw::dtw_distance(&y, &x).unwrap();
        prop_assert!(a >= 0.0);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn normalize_min_max_in_unit_interval(x in finite_samples(64)) {
        let s = Signal::new(x, 10.0).unwrap();
        let out = normalize::normalize_min_max(&s).unwrap();
        for &v in out.samples() {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn shift_roundtrip_preserves_interior(x in finite_samples(64), k in 0usize..5) {
        prop_assume!(x.len() > 2 * k + 2);
        let s = Signal::new(x.clone(), 10.0).unwrap();
        let delay = k as f64 / 10.0;
        let roundtrip = s.shift(delay).shift(-delay);
        // Interior samples (away from both edges) survive the round trip.
        #[allow(clippy::needless_range_loop)]
        for i in k..(x.len() - k) {
            prop_assert_eq!(roundtrip.samples()[i], x[i]);
        }
    }

    #[test]
    fn split_even_partitions(x in finite_samples(64), parts in 1usize..6) {
        prop_assume!(parts <= x.len());
        let s = Signal::new(x.clone(), 10.0).unwrap();
        let segs = s.split_even(parts).unwrap();
        let rejoined: Vec<f64> = segs.iter().flat_map(|g| g.samples().to_vec()).collect();
        prop_assert_eq!(rejoined, x);
    }
}
