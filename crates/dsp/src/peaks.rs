//! Peak detection with prominence filtering.
//!
//! Sec. V of the paper: "the traditional peak finding algorithm is applied on
//! each smoothed variance signal... the minimal prominence of the peaks is
//! set to 10 and 0.5 for the screen light and face-reflected light,
//! respectively." The algorithm below mirrors the scipy `find_peaks`
//! semantics: local maxima (plateau-aware) filtered by height, prominence
//! and minimum distance.

use crate::Signal;

/// A detected peak.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Peak {
    /// Sample index of the peak (middle of a plateau).
    pub index: usize,
    /// Signal value at the peak.
    pub height: f64,
    /// Topographic prominence of the peak.
    pub prominence: f64,
}

/// Selection criteria for [`find_peaks`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PeakConfig {
    /// Minimum absolute height; `None` disables the check.
    pub min_height: Option<f64>,
    /// Minimum topographic prominence; `None` disables the check.
    pub min_prominence: Option<f64>,
    /// Minimum distance in samples between retained peaks; `None` disables
    /// the check. When two peaks are closer, the higher one wins.
    pub min_distance: Option<usize>,
}

impl PeakConfig {
    /// Creates a config with all criteria disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the minimum height.
    pub fn min_height(mut self, h: f64) -> Self {
        self.min_height = Some(h);
        self
    }

    /// Sets the minimum prominence.
    pub fn min_prominence(mut self, p: f64) -> Self {
        self.min_prominence = Some(p);
        self
    }

    /// Sets the minimum inter-peak distance in samples.
    pub fn min_distance(mut self, d: usize) -> Self {
        self.min_distance = Some(d);
        self
    }
}

/// Indices of all strict local maxima; a flat plateau contributes its middle
/// sample. Endpoints are never peaks.
fn local_maxima(x: &[f64]) -> Vec<usize> {
    let n = x.len();
    let mut out = Vec::new();
    let mut i = 1;
    while i + 1 < n {
        if x[i] > x[i - 1] {
            // Walk a potential plateau.
            let start = i;
            while i + 1 < n && x[i + 1] == x[i] {
                i += 1;
            }
            if i + 1 < n && x[i + 1] < x[start] {
                out.push((start + i) / 2);
            }
        }
        i += 1;
    }
    out
}

/// Topographic prominence of the peak at `index`.
fn prominence_at(x: &[f64], index: usize) -> f64 {
    let height = x[index];
    // Left base: walk left until a strictly higher sample; track minimum.
    let mut left_min = height;
    let mut i = index;
    while i > 0 {
        i -= 1;
        if x[i] > height {
            break;
        }
        left_min = left_min.min(x[i]);
    }
    let mut right_min = height;
    let mut i = index;
    while i + 1 < x.len() {
        i += 1;
        if x[i] > height {
            break;
        }
        right_min = right_min.min(x[i]);
    }
    height - left_min.max(right_min)
}

/// Detects peaks in `x` according to `config`.
///
/// Peaks are returned sorted by index. The distance criterion is enforced
/// greedily from the highest peak down, matching scipy's behaviour.
///
/// # Example
///
/// ```
/// use lumen_dsp::peaks::{find_peaks, PeakConfig};
///
/// let x = [0.0, 1.0, 0.0, 5.0, 0.0, 0.4, 0.0];
/// let peaks = find_peaks(&x, &PeakConfig::new().min_prominence(0.5));
/// let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
/// assert_eq!(idx, vec![1, 3]);
/// ```
pub fn find_peaks(x: &[f64], config: &PeakConfig) -> Vec<Peak> {
    let mut peaks: Vec<Peak> = local_maxima(x)
        .into_iter()
        .map(|index| Peak {
            index,
            height: x[index],
            prominence: prominence_at(x, index),
        })
        .filter(|p| config.min_height.is_none_or(|h| p.height >= h))
        .filter(|p| config.min_prominence.is_none_or(|pr| p.prominence >= pr))
        .collect();

    if let Some(dist) = config.min_distance {
        if dist > 1 {
            // Keep highest peaks first, discard any within `dist` of a kept one.
            let mut order: Vec<usize> = (0..peaks.len()).collect();
            order.sort_by(|&a, &b| peaks[b].height.total_cmp(&peaks[a].height));
            let mut keep = vec![true; peaks.len()];
            for &i in &order {
                if !keep[i] {
                    continue;
                }
                for (j, k) in keep.iter_mut().enumerate() {
                    if j != i
                        && *k
                        && peaks[i].index.abs_diff(peaks[j].index) < dist
                        && peaks[j].height <= peaks[i].height
                    {
                        *k = false;
                    }
                }
            }
            peaks = peaks
                .into_iter()
                .zip(keep)
                .filter_map(|(p, k)| k.then_some(p))
                .collect();
        }
    }
    peaks
}

/// Convenience wrapper over [`find_peaks`] returning peak *times* in seconds
/// for a [`Signal`].
pub fn find_peak_times(signal: &Signal, config: &PeakConfig) -> Vec<f64> {
    find_peaks(signal.samples(), config)
        .into_iter()
        .map(|p| signal.time_at(p.index))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_simple_peaks() {
        let x = [0.0, 2.0, 0.0, 3.0, 0.0];
        let peaks = find_peaks(&x, &PeakConfig::new());
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].index, 1);
        assert_eq!(peaks[1].index, 3);
    }

    #[test]
    fn endpoints_are_not_peaks() {
        let x = [5.0, 1.0, 0.0, 1.0, 5.0];
        let peaks = find_peaks(&x, &PeakConfig::new());
        assert!(peaks.is_empty());
    }

    #[test]
    fn plateau_reports_middle() {
        let x = [0.0, 1.0, 3.0, 3.0, 3.0, 1.0, 0.0];
        let peaks = find_peaks(&x, &PeakConfig::new());
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 3);
    }

    #[test]
    fn plateau_at_edge_is_not_a_peak() {
        let x = [0.0, 1.0, 3.0, 3.0];
        let peaks = find_peaks(&x, &PeakConfig::new());
        assert!(peaks.is_empty());
    }

    #[test]
    fn prominence_of_isolated_peak_is_height_above_baseline() {
        let x = [1.0, 1.0, 6.0, 1.0, 1.0];
        let peaks = find_peaks(&x, &PeakConfig::new());
        assert_eq!(peaks.len(), 1);
        assert!((peaks[0].prominence - 5.0).abs() < 1e-12);
    }

    #[test]
    fn prominence_of_shoulder_peak_is_small() {
        // Small bump riding on the flank of a big peak.
        let x = [0.0, 10.0, 4.0, 5.0, 0.0];
        let peaks = find_peaks(&x, &PeakConfig::new());
        let shoulder = peaks.iter().find(|p| p.index == 3).unwrap();
        assert!((shoulder.prominence - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_prominence_filters() {
        let x = [0.0, 10.0, 4.0, 5.0, 0.0, 8.0, 0.0];
        let peaks = find_peaks(&x, &PeakConfig::new().min_prominence(2.0));
        let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![1, 5]);
    }

    #[test]
    fn min_height_filters() {
        let x = [0.0, 1.0, 0.0, 4.0, 0.0];
        let peaks = find_peaks(&x, &PeakConfig::new().min_height(2.0));
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 3);
    }

    #[test]
    fn min_distance_keeps_higher_peak() {
        let x = [0.0, 5.0, 0.0, 9.0, 0.0, 4.0, 0.0];
        let peaks = find_peaks(&x, &PeakConfig::new().min_distance(3));
        let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![3]); // 1 and 5 are both within 3 of... actually |1-3|=2 <3, |5-3|=2 <3
    }

    #[test]
    fn min_distance_allows_far_peaks() {
        let x = [0.0, 5.0, 0.0, 0.0, 0.0, 9.0, 0.0];
        let peaks = find_peaks(&x, &PeakConfig::new().min_distance(3));
        assert_eq!(peaks.len(), 2);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(find_peaks(&[], &PeakConfig::new()).is_empty());
        assert!(find_peaks(&[1.0], &PeakConfig::new()).is_empty());
        assert!(find_peaks(&[1.0, 2.0], &PeakConfig::new()).is_empty());
    }

    #[test]
    fn peak_times_use_sample_rate() {
        let mut v = vec![0.0; 21];
        v[10] = 5.0;
        let s = Signal::new(v, 10.0).unwrap();
        let times = find_peak_times(&s, &PeakConfig::new());
        assert_eq!(times, vec![1.0]);
    }
}
