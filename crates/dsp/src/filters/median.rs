//! Sliding-window median filtering.
//!
//! Not part of the paper's chain; used by the ablation experiments as an
//! alternative de-noising stage (a median is the classic way to remove the
//! burst artifacts that blinks and brief occlusions put into the ROI trace,
//! where a linear low-pass only smears them).

use crate::{DspError, Result, Signal};

/// Centered sliding-window median with a `window`-sample window (clipped at
/// the signal edges).
///
/// # Errors
///
/// Returns [`DspError::EmptySignal`] for empty input,
/// [`DspError::InvalidParameter`] for a zero window and
/// [`DspError::WindowTooLarge`] when the window exceeds the signal length.
///
/// # Example
///
/// ```
/// use lumen_dsp::{Signal, filters::median::median_filter};
///
/// # fn main() -> Result<(), lumen_dsp::DspError> {
/// // A single-sample spike vanishes under a 3-sample median.
/// let s = Signal::new(vec![1.0, 1.0, 99.0, 1.0, 1.0], 10.0)?;
/// let out = median_filter(&s, 3)?;
/// assert_eq!(out.samples()[2], 1.0);
/// # Ok(())
/// # }
/// ```
pub fn median_filter(signal: &Signal, window: usize) -> Result<Signal> {
    if signal.is_empty() {
        return Err(DspError::EmptySignal);
    }
    if window == 0 {
        return Err(DspError::invalid_parameter("window", "must be non-zero"));
    }
    if window > signal.len() {
        return Err(DspError::WindowTooLarge {
            window,
            len: signal.len(),
        });
    }
    let x = signal.samples();
    let half_left = (window - 1) / 2;
    let half_right = window / 2;
    let out: Vec<f64> = (0..x.len())
        .map(|i| {
            let start = i.saturating_sub(half_left);
            let end = (i + half_right + 1).min(x.len());
            // lint:allow(no-panic): start <= i < end, so the window always
            // holds at least sample i
            crate::stats::median(&x[start..end]).expect("window is non-empty")
        })
        .collect();
    Signal::new(out, signal.sample_rate())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_impulses_keeps_steps() {
        let mut v = vec![10.0; 30];
        for s in v.iter_mut().skip(15) {
            *s = 50.0;
        }
        v[7] = 200.0; // impulse
        let s = Signal::new(v, 10.0).unwrap();
        let out = median_filter(&s, 5).unwrap();
        assert_eq!(out.samples()[7], 10.0); // impulse gone
        assert_eq!(out.samples()[20], 50.0); // step preserved
        assert_eq!(out.samples()[10], 10.0);
    }

    #[test]
    fn preserves_constant() {
        let s = Signal::new(vec![3.0; 10], 10.0).unwrap();
        let out = median_filter(&s, 3).unwrap();
        assert_eq!(out.samples(), s.samples());
    }

    #[test]
    fn window_one_is_identity() {
        let s = Signal::new(vec![5.0, -2.0, 9.0], 10.0).unwrap();
        let out = median_filter(&s, 1).unwrap();
        assert_eq!(out.samples(), s.samples());
    }

    #[test]
    fn validates_inputs() {
        let s = Signal::new(vec![1.0; 4], 10.0).unwrap();
        assert!(median_filter(&s, 0).is_err());
        assert!(median_filter(&s, 5).is_err());
        let empty = Signal::new(vec![], 10.0).unwrap();
        assert!(median_filter(&empty, 1).is_err());
    }
}
