//! Sliding-window statistics: moving average, short-time variance and
//! root-mean-square.
//!
//! The paper's preprocessing (Sec. V) computes a short-time variance over a
//! 10-sample window to turn luminance steps into peaks, merges neighbouring
//! sub-peaks with a 30-sample RMS window, and finishes with a 10-sample
//! moving average. All three operators here produce same-length outputs
//! using a centered window that is clipped at the signal boundaries.

use crate::{stats, DspError, Result, Signal};

fn window_bounds(i: usize, len: usize, window: usize) -> (usize, usize) {
    let half_left = (window - 1) / 2;
    let half_right = window / 2;
    let start = i.saturating_sub(half_left);
    let end = (i + half_right + 1).min(len);
    (start, end)
}

fn validate(signal: &Signal, window: usize) -> Result<()> {
    if signal.is_empty() {
        return Err(DspError::EmptySignal);
    }
    if window == 0 {
        return Err(DspError::invalid_parameter("window", "must be non-zero"));
    }
    if window > signal.len() {
        return Err(DspError::WindowTooLarge {
            window,
            len: signal.len(),
        });
    }
    Ok(())
}

/// Centered moving average with a `window`-sample window.
///
/// # Errors
///
/// Returns [`DspError::EmptySignal`] for empty input,
/// [`DspError::InvalidParameter`] for a zero window and
/// [`DspError::WindowTooLarge`] when the window exceeds the signal length.
///
/// # Example
///
/// ```
/// use lumen_dsp::{Signal, filters::moving::moving_average};
///
/// # fn main() -> Result<(), lumen_dsp::DspError> {
/// let s = Signal::new(vec![0.0, 0.0, 9.0, 0.0, 0.0], 1.0)?;
/// let avg = moving_average(&s, 3)?;
/// assert_eq!(avg.samples()[2], 3.0);
/// # Ok(())
/// # }
/// ```
pub fn moving_average(signal: &Signal, window: usize) -> Result<Signal> {
    validate(signal, window)?;
    let x = signal.samples();
    let out: Vec<f64> = (0..x.len())
        .map(|i| {
            let (s, e) = window_bounds(i, x.len(), window);
            stats::mean(&x[s..e])
        })
        .collect();
    Signal::new(out, signal.sample_rate())
}

/// Centered short-time (population) variance with a `window`-sample window.
///
/// A rapid luminance rise or fall inside the window produces a local maximum
/// in the output — the property the paper uses to locate significant
/// luminance changes.
///
/// # Errors
///
/// Same conditions as [`moving_average`].
pub fn moving_variance(signal: &Signal, window: usize) -> Result<Signal> {
    validate(signal, window)?;
    let x = signal.samples();
    let out: Vec<f64> = (0..x.len())
        .map(|i| {
            let (s, e) = window_bounds(i, x.len(), window);
            stats::variance_population(&x[s..e])
        })
        .collect();
    Signal::new(out, signal.sample_rate())
}

/// Centered root-mean-square with a `window`-sample window.
///
/// Applied to the thresholded variance signal it groups neighbouring lower
/// peaks into one significant luminance change (Sec. V).
///
/// # Errors
///
/// Same conditions as [`moving_average`].
pub fn moving_rms(signal: &Signal, window: usize) -> Result<Signal> {
    validate(signal, window)?;
    let x = signal.samples();
    let out: Vec<f64> = (0..x.len())
        .map(|i| {
            let (s, e) = window_bounds(i, x.len(), window);
            stats::rms(&x[s..e])
        })
        .collect();
    Signal::new(out, signal.sample_rate())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(v: Vec<f64>) -> Signal {
        Signal::new(v, 10.0).unwrap()
    }

    #[test]
    fn bounds_cover_window() {
        assert_eq!(window_bounds(0, 10, 3), (0, 2));
        assert_eq!(window_bounds(5, 10, 3), (4, 7));
        assert_eq!(window_bounds(9, 10, 3), (8, 10));
        // Even window leans right.
        assert_eq!(window_bounds(5, 10, 4), (4, 8));
    }

    #[test]
    fn average_of_constant_is_constant() {
        let s = sig(vec![7.0; 20]);
        let out = moving_average(&s, 5).unwrap();
        assert!(out.samples().iter().all(|&v| (v - 7.0).abs() < 1e-12));
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let s = sig(vec![7.0; 20]);
        let out = moving_variance(&s, 5).unwrap();
        assert!(out.samples().iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn variance_peaks_at_step() {
        let mut v = vec![0.0; 30];
        for x in v.iter_mut().skip(15) {
            *x = 10.0;
        }
        let out = moving_variance(&sig(v), 10).unwrap();
        let (argmax, _) =
            out.samples()
                .iter()
                .enumerate()
                .fold(
                    (0, f64::MIN),
                    |(ai, am), (i, &x)| {
                        if x > am {
                            (i, x)
                        } else {
                            (ai, am)
                        }
                    },
                );
        assert!((14..=16).contains(&argmax), "variance peak at {argmax}");
        // Peak value for a balanced window: half zeros, half tens -> var 25.
        assert!((out.samples()[argmax] - 25.0).abs() < 1.0);
    }

    #[test]
    fn rms_of_impulse_spreads() {
        let mut v = vec![0.0; 21];
        v[10] = 9.0;
        let out = moving_rms(&sig(v), 3).unwrap();
        assert!(out.samples()[9] > 0.0);
        assert!(out.samples()[10] >= out.samples()[9]);
        assert_eq!(out.samples()[8], 0.0);
        assert_eq!(out.samples()[0], 0.0);
    }

    #[test]
    fn rejects_bad_windows() {
        let s = sig(vec![1.0; 5]);
        assert!(moving_average(&s, 0).is_err());
        assert!(matches!(
            moving_average(&s, 6),
            Err(DspError::WindowTooLarge { window: 6, len: 5 })
        ));
        let empty = Signal::new(vec![], 10.0).unwrap();
        assert!(moving_average(&empty, 1).is_err());
    }

    #[test]
    fn outputs_preserve_length_and_rate() {
        let s = sig((0..50).map(|i| i as f64).collect());
        for f in [moving_average, moving_variance, moving_rms] {
            let out = f(&s, 7).unwrap();
            assert_eq!(out.len(), 50);
            assert_eq!(out.sample_rate(), 10.0);
        }
    }
}
