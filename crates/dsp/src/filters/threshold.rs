//! Threshold filtering (Sec. V: cut-off 2 on the variance signal).
//!
//! "To remove small spikes, we apply a threshold filter on the variance
//! signal with a cut-off threshold of 2." Values strictly below the cut-off
//! are zeroed; everything else passes unchanged.

use crate::{DspError, Result, Signal};

/// Zeroes every sample strictly below `cutoff`.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when `cutoff` is not finite.
///
/// # Example
///
/// ```
/// use lumen_dsp::{Signal, filters::threshold::threshold_filter};
///
/// # fn main() -> Result<(), lumen_dsp::DspError> {
/// let s = Signal::new(vec![0.5, 2.0, 5.0, 1.9], 10.0)?;
/// let out = threshold_filter(&s, 2.0)?;
/// assert_eq!(out.samples(), &[0.0, 2.0, 5.0, 0.0]);
/// # Ok(())
/// # }
/// ```
pub fn threshold_filter(signal: &Signal, cutoff: f64) -> Result<Signal> {
    if !cutoff.is_finite() {
        return Err(DspError::invalid_parameter("cutoff", "must be finite"));
    }
    signal.try_map(|x| if x < cutoff { 0.0 } else { x })
}

/// Zeroes every sample whose absolute value is strictly below `cutoff`.
///
/// Useful for signed residual signals; the paper's variance signal is
/// non-negative so [`threshold_filter`] suffices there.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when `cutoff` is not finite or is
/// negative.
pub fn threshold_filter_abs(signal: &Signal, cutoff: f64) -> Result<Signal> {
    if !cutoff.is_finite() || cutoff < 0.0 {
        return Err(DspError::invalid_parameter(
            "cutoff",
            "must be finite and non-negative",
        ));
    }
    signal.try_map(|x| if x.abs() < cutoff { 0.0 } else { x })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroes_below_cutoff() {
        let s = Signal::new(vec![0.0, 1.0, 2.0, 3.0], 10.0).unwrap();
        let out = threshold_filter(&s, 2.0).unwrap();
        assert_eq!(out.samples(), &[0.0, 0.0, 2.0, 3.0]);
    }

    #[test]
    fn negative_cutoff_passes_everything() {
        let s = Signal::new(vec![-5.0, 0.0, 5.0], 10.0).unwrap();
        let out = threshold_filter(&s, -10.0).unwrap();
        assert_eq!(out.samples(), s.samples());
    }

    #[test]
    fn abs_variant_is_symmetric() {
        let s = Signal::new(vec![-3.0, -1.0, 1.0, 3.0], 10.0).unwrap();
        let out = threshold_filter_abs(&s, 2.0).unwrap();
        assert_eq!(out.samples(), &[-3.0, 0.0, 0.0, 3.0]);
        assert!(threshold_filter_abs(&s, -1.0).is_err());
    }

    #[test]
    fn rejects_non_finite_cutoff() {
        let s = Signal::new(vec![1.0], 10.0).unwrap();
        assert!(threshold_filter(&s, f64::NAN).is_err());
    }
}
