//! Savitzky–Golay polynomial smoothing (Sec. V: window length 31).
//!
//! The smoother fits a degree-`p` polynomial to each window by linear least
//! squares and replaces the center sample with the fitted value. For
//! uniformly spaced samples the fit reduces to a fixed convolution kernel,
//! which we derive by solving the normal equations of the Vandermonde system
//! with Gaussian elimination — no external linear-algebra dependency.

use crate::filters::fir::convolve_same;
use crate::{DspError, Result, Signal};

/// Solves the dense linear system `a · x = b` in place by Gaussian
/// elimination with partial pivoting.
///
/// `a` is row-major `n × n`. Returns `None` when the matrix is singular to
/// working precision.
fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot_row = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        // Eliminate below.
        #[allow(clippy::needless_range_loop)]
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for col in row + 1..n {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Computes the Savitzky–Golay smoothing kernel for an odd `window` length
/// and polynomial order `polyorder`.
///
/// The returned kernel, convolved with a signal, yields the least-squares
/// polynomial estimate at each window center.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when `window` is even or zero, or
/// when `polyorder >= window`.
pub fn savgol_coeffs(window: usize, polyorder: usize) -> Result<Vec<f64>> {
    if window == 0 || window.is_multiple_of(2) {
        return Err(DspError::invalid_parameter(
            "window",
            format!("must be odd and non-zero, got {window}"),
        ));
    }
    if polyorder >= window {
        return Err(DspError::invalid_parameter(
            "polyorder",
            format!("order {polyorder} must be below window length {window}"),
        ));
    }
    let half = (window / 2) as isize;
    let p = polyorder + 1;
    // Normal equations: (A^T A) c = A^T e_center, where A[i][j] = x_i^j and
    // the kernel is h = A (A^T A)^{-1} a_0 row. Equivalently, kernel weight
    // for offset x is the value at 0 of the polynomial fit to a unit impulse;
    // we compute G = (A^T A)^{-1} A^T and take its first row.
    let xs: Vec<f64> = (-half..=half).map(|x| x as f64).collect();
    // ata[j][k] = sum_i x_i^(j+k)
    let mut moments = vec![0.0; 2 * p];
    for &x in &xs {
        let mut pw = 1.0;
        for m in moments.iter_mut() {
            *m += pw;
            pw *= x;
        }
    }
    let ata: Vec<Vec<f64>> = (0..p)
        .map(|j| (0..p).map(|k| moments[j + k]).collect())
        .collect();
    // Solve (A^T A) c = e_0 -> c gives first row of (A^T A)^{-1}.
    let mut e0 = vec![0.0; p];
    e0[0] = 1.0;
    let c = solve_linear(ata, e0)
        .ok_or_else(|| DspError::invalid_parameter("window", "normal equations are singular"))?;
    // Kernel h[i] = sum_j c[j] * x_i^j.
    let kernel: Vec<f64> = xs
        .iter()
        .map(|&x| {
            let mut pw = 1.0;
            let mut acc = 0.0;
            for &cj in &c {
                acc += cj * pw;
                pw *= x;
            }
            acc
        })
        .collect();
    Ok(kernel)
}

/// Smooths `signal` with a Savitzky–Golay filter.
///
/// When the signal is shorter than `window`, the window is shrunk to the
/// largest odd length that fits (with `polyorder` reduced accordingly); this
/// keeps short clips — e.g. 15 s at 5 Hz in the Fig. 16 sampling-rate study —
/// processable without special-casing at the call site.
///
/// # Errors
///
/// Returns [`DspError::EmptySignal`] for an empty signal and propagates
/// [`savgol_coeffs`] errors.
///
/// # Example
///
/// ```
/// use lumen_dsp::{Signal, filters::savgol::savgol_smooth};
///
/// # fn main() -> Result<(), lumen_dsp::DspError> {
/// let noisy = Signal::from_fn(100, 10.0, |t| t + ((t * 97.0).sin() * 0.1))?;
/// let smooth = savgol_smooth(&noisy, 31, 3)?;
/// assert_eq!(smooth.len(), 100);
/// # Ok(())
/// # }
/// ```
pub fn savgol_smooth(signal: &Signal, window: usize, polyorder: usize) -> Result<Signal> {
    if signal.is_empty() {
        return Err(DspError::EmptySignal);
    }
    let mut window = window;
    let mut polyorder = polyorder;
    if window > signal.len() {
        window = if signal.len().is_multiple_of(2) {
            signal.len() - 1
        } else {
            signal.len()
        };
        if window == 0 {
            window = 1;
        }
        polyorder = polyorder.min(window.saturating_sub(1));
    }
    let kernel = savgol_coeffs(window, polyorder)?;
    let out = convolve_same(signal.samples(), &kernel)?;
    Signal::new(out, signal.sample_rate())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coeffs_reject_bad_parameters() {
        assert!(savgol_coeffs(0, 0).is_err());
        assert!(savgol_coeffs(10, 2).is_err());
        assert!(savgol_coeffs(5, 5).is_err());
    }

    #[test]
    fn kernel_sums_to_one() {
        for (w, p) in [(5, 2), (7, 3), (31, 3), (11, 4)] {
            let k = savgol_coeffs(w, p).unwrap();
            let sum: f64 = k.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "window {w} order {p}: sum {sum}");
        }
    }

    #[test]
    fn kernel_is_symmetric() {
        let k = savgol_coeffs(9, 2).unwrap();
        for i in 0..k.len() {
            assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_scipy_reference_5_2() {
        // scipy.signal.savgol_coeffs(5, 2) = [-3/35, 12/35, 17/35, 12/35, -3/35]
        let k = savgol_coeffs(5, 2).unwrap();
        let expected = [
            -3.0 / 35.0,
            12.0 / 35.0,
            17.0 / 35.0,
            12.0 / 35.0,
            -3.0 / 35.0,
        ];
        for (a, b) in k.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn preserves_polynomials_up_to_order() {
        // A degree-3 filter must reproduce a cubic exactly (mid-signal).
        let s =
            Signal::from_fn(60, 10.0, |t| 1.0 + 2.0 * t - 0.5 * t * t + 0.1 * t * t * t).unwrap();
        let out = savgol_smooth(&s, 11, 3).unwrap();
        for i in 10..50 {
            assert!(
                (out.samples()[i] - s.samples()[i]).abs() < 1e-6,
                "deviation at {i}"
            );
        }
    }

    #[test]
    fn attenuates_noise() {
        let noisy = Signal::from_fn(200, 10.0, |t| (t * 131.7).sin()).unwrap();
        let out = savgol_smooth(&noisy, 31, 3).unwrap();
        let in_rms = crate::stats::rms(noisy.samples());
        let out_rms = crate::stats::rms(out.samples());
        assert!(out_rms < in_rms * 0.5, "{out_rms} !< {in_rms}");
    }

    #[test]
    fn short_signal_shrinks_window() {
        let s = Signal::new(vec![1.0, 2.0, 3.0, 4.0], 10.0).unwrap();
        let out = savgol_smooth(&s, 31, 3).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn solve_linear_simple_system() {
        // 2x + y = 5, x - y = 1 -> x = 2, y = 1
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve_linear(a, vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_detects_singularity() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear(a, vec![1.0, 2.0]).is_none());
    }
}
