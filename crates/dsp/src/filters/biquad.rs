//! Second-order IIR (biquad) sections and Butterworth low-pass design.
//!
//! The paper's pipeline uses an FIR low-pass; this module provides the IIR
//! alternative used in the ablation benchmarks (`lumen-bench`), plus a
//! zero-phase `filtfilt` so the IIR variant does not shift peak positions —
//! peak *timing* is what features z1/z2 compare.

use crate::{DspError, Result, Signal};
use std::f64::consts::{PI, SQRT_2};

/// A direct-form-II-transposed biquad section.
#[derive(Debug, Clone, PartialEq)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
}

impl Biquad {
    /// Designs a 2nd-order Butterworth low-pass section (Q = 1/√2) using the
    /// bilinear transform.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when `cutoff_hz` is outside
    /// `(0, sample_rate / 2)` and [`DspError::InvalidSampleRate`] for a bad
    /// rate.
    pub fn butterworth_lowpass(cutoff_hz: f64, sample_rate: f64) -> Result<Self> {
        if !(sample_rate.is_finite() && sample_rate > 0.0) {
            return Err(DspError::InvalidSampleRate(sample_rate));
        }
        if !(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0) {
            return Err(DspError::invalid_parameter(
                "cutoff_hz",
                format!("must lie in (0, {})", sample_rate / 2.0),
            ));
        }
        let q = 1.0 / SQRT_2;
        let w0 = 2.0 * PI * cutoff_hz / sample_rate;
        let alpha = w0.sin() / (2.0 * q);
        let cosw = w0.cos();
        let a0 = 1.0 + alpha;
        Ok(Biquad {
            b0: (1.0 - cosw) / 2.0 / a0,
            b1: (1.0 - cosw) / a0,
            b2: (1.0 - cosw) / 2.0 / a0,
            a1: -2.0 * cosw / a0,
            a2: (1.0 - alpha) / a0,
        })
    }

    /// Runs the filter over `input`, returning the filtered samples.
    /// The filter state starts at zero.
    pub fn process(&self, input: &[f64]) -> Vec<f64> {
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        input
            .iter()
            .map(|&x| {
                let y = self.b0 * x + s1;
                s1 = self.b1 * x - self.a1 * y + s2;
                s2 = self.b2 * x - self.a2 * y;
                y
            })
            .collect()
    }
}

/// Zero-phase Butterworth low-pass: the section is applied forward and then
/// backward, cancelling the phase delay (the classic `filtfilt`).
///
/// The signal edges are extended by reflection (up to 3× the filter's
/// effective settling length) to suppress start-up transients.
///
/// # Errors
///
/// Returns [`DspError::EmptySignal`] for an empty input,
/// [`DspError::TooShort`] for a single sample (no frequency content to
/// filter), and propagates design errors of
/// [`Biquad::butterworth_lowpass`].
///
/// # Example
///
/// ```
/// use lumen_dsp::{Signal, filters::biquad::filtfilt_lowpass};
///
/// # fn main() -> Result<(), lumen_dsp::DspError> {
/// let s = Signal::from_fn(100, 10.0, |t| 20.0 + (t * 40.0).sin())?;
/// let out = filtfilt_lowpass(&s, 1.0)?;
/// assert_eq!(out.len(), 100);
/// # Ok(())
/// # }
/// ```
pub fn filtfilt_lowpass(signal: &Signal, cutoff_hz: f64) -> Result<Signal> {
    if signal.is_empty() {
        return Err(DspError::EmptySignal);
    }
    crate::guard::ensure_min_len(signal.samples(), 2)?;
    let biquad = Biquad::butterworth_lowpass(cutoff_hz, signal.sample_rate())?;
    let x = signal.samples();
    let pad = (3.0 * signal.sample_rate() / cutoff_hz).ceil() as usize;
    let pad = pad.min(x.len().saturating_sub(1));

    // Reflect-pad: x[pad], ..., x[1], x[0..n], x[n-2], ..., x[n-1-pad]
    let mut extended = Vec::with_capacity(x.len() + 2 * pad);
    for i in (1..=pad).rev() {
        extended.push(2.0 * x[0] - x[i]);
    }
    extended.extend_from_slice(x);
    for i in 1..=pad {
        extended.push(2.0 * x[x.len() - 1] - x[x.len() - 1 - i]);
    }

    let forward = biquad.process(&extended);
    let mut reversed: Vec<f64> = forward.into_iter().rev().collect();
    reversed = biquad.process(&reversed);
    let mut out: Vec<f64> = reversed.into_iter().rev().collect();
    out.drain(..pad);
    out.truncate(x.len());
    Signal::new(out, signal.sample_rate())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_rejects_bad_cutoff() {
        assert!(Biquad::butterworth_lowpass(0.0, 10.0).is_err());
        assert!(Biquad::butterworth_lowpass(5.0, 10.0).is_err());
        assert!(Biquad::butterworth_lowpass(1.0, 0.0).is_err());
    }

    #[test]
    fn dc_gain_is_unity() {
        let bq = Biquad::butterworth_lowpass(1.0, 10.0).unwrap();
        let out = bq.process(&vec![1.0; 500]);
        assert!((out[499] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn attenuates_high_frequency() {
        let s = Signal::from_fn(400, 10.0, |t| (2.0 * PI * 4.0 * t).sin()).unwrap();
        let out = filtfilt_lowpass(&s, 1.0).unwrap();
        let peak = out.samples()[100..300]
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(peak < 0.05, "leakage {peak}");
    }

    #[test]
    fn filtfilt_has_no_phase_shift() {
        let s = Signal::from_fn(600, 10.0, |t| (2.0 * PI * 0.2 * t).sin()).unwrap();
        let out = filtfilt_lowpass(&s, 1.0).unwrap();
        // Zero-phase: argmax positions must coincide (first full peak near
        // t = 1.25 s, index 12-13).
        let in_max = s.samples()[..50]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let out_max = out.samples()[..50]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((in_max as isize - out_max as isize).abs() <= 1);
    }

    #[test]
    fn preserves_step_level() {
        let s = Signal::from_fn(200, 10.0, |t| if t < 10.0 { 10.0 } else { 90.0 }).unwrap();
        let out = filtfilt_lowpass(&s, 1.0).unwrap();
        assert!((out.samples()[30] - 10.0).abs() < 0.5);
        assert!((out.samples()[170] - 90.0).abs() < 0.5);
    }

    #[test]
    fn short_signal_does_not_panic() {
        let s = Signal::new(vec![1.0, 2.0, 3.0], 10.0).unwrap();
        let out = filtfilt_lowpass(&s, 1.0).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn single_sample_errors_typed() {
        let s = Signal::new(vec![7.0], 10.0).unwrap();
        assert_eq!(
            filtfilt_lowpass(&s, 1.0).unwrap_err(),
            DspError::TooShort { len: 1, min: 2 }
        );
    }
}
