//! The filter bank used by the preprocessing chain (Sec. V of the paper).
//!
//! The chain, in order:
//!
//! 1. [`fir::lowpass`] with a 1 Hz cut-off removes broadband noise;
//! 2. [`moving::moving_variance`] (window 10) turns luminance steps into
//!    variance peaks;
//! 3. [`threshold::threshold_filter`] (cut-off 2) deletes small noise spikes;
//! 4. [`moving::moving_rms`] (window 30) merges neighbouring sub-peaks;
//! 5. [`savgol::savgol_smooth`] (window 31) polynomial smoothing;
//! 6. [`moving::moving_average`] (window 10) final smoothing.
//!
//! [`biquad`] additionally provides IIR Butterworth sections (with a
//! zero-phase `filtfilt`) as an alternative low-pass implementation used in
//! ablation benchmarks.

pub mod biquad;
pub mod fir;
pub mod median;
pub mod moving;
pub mod savgol;
pub mod threshold;
