//! Windowed-sinc FIR low-pass filtering.
//!
//! Sec. V of the paper applies "a low-pass filter with a cut-off frequency of
//! 1 Hz" to both raw luminance signals. We implement the classic
//! windowed-sinc design: ideal sinc impulse response, tapered by a window
//! function and normalized to unity DC gain, applied by same-length
//! convolution with edge replication.

use crate::guard::ensure_finite;
use crate::window::WindowKind;
use crate::{DspError, Result, Signal};
use std::f64::consts::PI;

/// Designs a linear-phase low-pass FIR kernel.
///
/// * `taps` — kernel length; must be odd so the filter has integral group
///   delay (an even request is rejected rather than silently adjusted).
/// * `cutoff_hz` — the −6 dB cut-off frequency.
/// * `sample_rate` — in Hz; `cutoff_hz` must be below Nyquist.
///
/// The kernel is normalized so its coefficients sum to 1 (unity DC gain),
/// which keeps luminance levels unchanged in the passband.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] for an even/zero tap count or a
/// cut-off outside `(0, sample_rate / 2)`, and
/// [`DspError::InvalidSampleRate`] for a bad sample rate.
pub fn design_lowpass(
    taps: usize,
    cutoff_hz: f64,
    sample_rate: f64,
    window: WindowKind,
) -> Result<Vec<f64>> {
    if !(sample_rate.is_finite() && sample_rate > 0.0) {
        return Err(DspError::InvalidSampleRate(sample_rate));
    }
    if taps == 0 || taps.is_multiple_of(2) {
        return Err(DspError::invalid_parameter(
            "taps",
            format!("must be odd and non-zero, got {taps}"),
        ));
    }
    if !(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0) {
        return Err(DspError::invalid_parameter(
            "cutoff_hz",
            format!("must lie in (0, {}), got {cutoff_hz}", sample_rate / 2.0),
        ));
    }
    let fc = cutoff_hz / sample_rate; // normalized (cycles per sample)
    let mid = (taps / 2) as isize;
    let mut kernel: Vec<f64> = (0..taps)
        .map(|i| {
            let n = i as isize - mid;
            let sinc = if n == 0 {
                2.0 * fc
            } else {
                (2.0 * PI * fc * n as f64).sin() / (PI * n as f64)
            };
            sinc * window.coefficient(i, taps)
        })
        .collect();
    let sum: f64 = kernel.iter().sum();
    for k in &mut kernel {
        *k /= sum;
    }
    Ok(kernel)
}

/// Convolves `x` with `kernel`, returning a same-length output.
///
/// Edges are handled by replicating the first/last sample, which avoids the
/// start-up transient dragging the luminance baseline toward zero.
///
/// # Errors
///
/// Returns [`DspError::EmptySignal`] when either input is empty and
/// [`DspError::NonFiniteSample`] for NaN/infinite samples or coefficients.
pub fn convolve_same(x: &[f64], kernel: &[f64]) -> Result<Vec<f64>> {
    if x.is_empty() || kernel.is_empty() {
        return Err(DspError::EmptySignal);
    }
    ensure_finite(x)?;
    ensure_finite(kernel)?;
    let n = x.len() as isize;
    let half = (kernel.len() / 2) as isize;
    let mut out = Vec::with_capacity(x.len());
    for i in 0..n {
        let mut acc = 0.0;
        for (j, &k) in kernel.iter().enumerate() {
            let src = (i + half - j as isize).clamp(0, n - 1) as usize;
            acc += k * x[src];
        }
        out.push(acc);
    }
    Ok(out)
}

/// Low-pass filters `signal` with the given cut-off using an automatically
/// sized windowed-sinc kernel (Hann window).
///
/// The kernel length is chosen as roughly four times the ratio of sample
/// rate to cut-off (forced odd, minimum 5 taps), which gives a transition
/// band narrow enough to separate the sub-1 Hz luminance changes from the
/// broadband noise in Fig. 6 of the paper.
///
/// # Errors
///
/// Propagates the design errors of [`design_lowpass`]; additionally returns
/// [`DspError::EmptySignal`] for an empty input and [`DspError::TooShort`]
/// for a single-sample input (no frequency content to filter).
///
/// # Example
///
/// ```
/// use lumen_dsp::{Signal, filters::fir};
///
/// # fn main() -> Result<(), lumen_dsp::DspError> {
/// // 5 Hz noise on top of a DC level, sampled at 10 Hz.
/// let noisy = Signal::from_fn(200, 10.0, |t| {
///     50.0 + 5.0 * (2.0 * std::f64::consts::PI * 5.0 * t).sin()
/// })?;
/// let clean = fir::lowpass(&noisy, 1.0)?;
/// let mid = &clean.samples()[50..150];
/// assert!(mid.iter().all(|&s| (s - 50.0).abs() < 0.5));
/// # Ok(())
/// # }
/// ```
pub fn lowpass(signal: &Signal, cutoff_hz: f64) -> Result<Signal> {
    if signal.is_empty() {
        return Err(DspError::EmptySignal);
    }
    crate::guard::ensure_min_len(signal.samples(), 2)?;
    let ratio = signal.sample_rate() / cutoff_hz;
    let mut taps = (4.0 * ratio).ceil() as usize;
    taps = taps.max(5);
    if taps.is_multiple_of(2) {
        taps += 1;
    }
    let kernel = design_lowpass(taps, cutoff_hz, signal.sample_rate(), WindowKind::Hann)?;
    let filtered = convolve_same(signal.samples(), &kernel)?;
    Signal::new(filtered, signal.sample_rate())
}

/// Low-pass with an explicit kernel length, for callers that need to trade
/// sharpness against latency.
///
/// # Errors
///
/// Same conditions as [`design_lowpass`] and [`lowpass`].
pub fn lowpass_with_taps(signal: &Signal, cutoff_hz: f64, taps: usize) -> Result<Signal> {
    if signal.is_empty() {
        return Err(DspError::EmptySignal);
    }
    crate::guard::ensure_min_len(signal.samples(), 2)?;
    let kernel = design_lowpass(taps, cutoff_hz, signal.sample_rate(), WindowKind::Hann)?;
    let filtered = convolve_same(signal.samples(), &kernel)?;
    Signal::new(filtered, signal.sample_rate())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_rejects_bad_parameters() {
        assert!(design_lowpass(0, 1.0, 10.0, WindowKind::Hann).is_err());
        assert!(design_lowpass(10, 1.0, 10.0, WindowKind::Hann).is_err());
        assert!(design_lowpass(11, 0.0, 10.0, WindowKind::Hann).is_err());
        assert!(design_lowpass(11, 5.0, 10.0, WindowKind::Hann).is_err());
        assert!(design_lowpass(11, 1.0, 0.0, WindowKind::Hann).is_err());
    }

    #[test]
    fn kernel_has_unity_dc_gain() {
        let k = design_lowpass(41, 1.0, 10.0, WindowKind::Hann).unwrap();
        let sum: f64 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_is_symmetric() {
        let k = design_lowpass(21, 1.5, 10.0, WindowKind::Hamming).unwrap();
        for i in 0..k.len() {
            assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn dc_passes_unchanged() {
        let s = Signal::new(vec![42.0; 100], 10.0).unwrap();
        let out = lowpass(&s, 1.0).unwrap();
        for &v in out.samples() {
            assert!((v - 42.0).abs() < 1e-9);
        }
    }

    #[test]
    fn high_frequency_attenuated() {
        // 4 Hz tone at 10 Hz sampling, 1 Hz cutoff -> heavy attenuation.
        let s = Signal::from_fn(300, 10.0, |t| (2.0 * PI * 4.0 * t).sin()).unwrap();
        let out = lowpass(&s, 1.0).unwrap();
        let peak = out.samples()[50..250]
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(peak < 0.02, "4 Hz leakage {peak}");
    }

    #[test]
    fn low_frequency_preserved() {
        // 0.2 Hz tone well inside the passband.
        let s = Signal::from_fn(600, 10.0, |t| (2.0 * PI * 0.2 * t).sin()).unwrap();
        let out = lowpass(&s, 1.0).unwrap();
        // Compare mid-section against the input (group delay is zero for
        // same-length symmetric convolution).
        for i in 100..500 {
            assert!((out.samples()[i] - s.samples()[i]).abs() < 0.05);
        }
    }

    #[test]
    fn step_edge_is_preserved_in_position() {
        let s = Signal::from_fn(200, 10.0, |t| if t < 10.0 { 0.0 } else { 100.0 }).unwrap();
        let out = lowpass(&s, 1.0).unwrap();
        // The 50% crossing should stay near the step position (sample 100).
        let crossing = out
            .samples()
            .iter()
            .position(|&v| v >= 50.0)
            .expect("step must survive filtering");
        assert!(
            (crossing as isize - 100).unsigned_abs() <= 2,
            "crossing at {crossing}"
        );
    }

    #[test]
    fn convolve_same_identity_kernel() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let out = convolve_same(&x, &[1.0]).unwrap();
        assert_eq!(out, x.to_vec());
    }

    #[test]
    fn convolve_empty_errors() {
        assert!(convolve_same(&[], &[1.0]).is_err());
        assert!(convolve_same(&[1.0], &[]).is_err());
    }

    #[test]
    fn convolve_non_finite_errors_typed() {
        assert_eq!(
            convolve_same(&[1.0, f64::NAN], &[1.0]),
            Err(DspError::NonFiniteSample { index: 1 })
        );
        assert_eq!(
            convolve_same(&[1.0, 2.0], &[f64::INFINITY]),
            Err(DspError::NonFiniteSample { index: 0 })
        );
    }
}
