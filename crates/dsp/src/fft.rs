//! Radix-2 FFT and magnitude spectra (used to reproduce Fig. 6: the spectrum
//! of luminance signals with and without screen-light changes).

use crate::{DspError, Result, Signal};
use std::f64::consts::PI;
use std::ops::{Add, Mul, Sub};

/// A complex number; minimal support for the FFT.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{i·theta}` on the unit circle.
    pub fn from_angle(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

/// Smallest power of two `>= n` (and `>= 1`).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when the length is not a power of
/// two (zero-pad with [`next_pow2`] first) and [`DspError::EmptySignal`] for
/// an empty buffer.
pub fn fft_in_place(data: &mut [Complex]) -> Result<()> {
    let n = data.len();
    if n == 0 {
        return Err(DspError::EmptySignal);
    }
    if !n.is_power_of_two() {
        return Err(DspError::invalid_parameter(
            "data",
            format!("length {n} is not a power of two"),
        ));
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let step = -2.0 * PI / len as f64;
        for start in (0..n).step_by(len) {
            for k in 0..len / 2 {
                let w = Complex::from_angle(step * k as f64);
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = a + b;
                data[start + k + len / 2] = a - b;
            }
        }
        len *= 2;
    }
    Ok(())
}

/// Inverse FFT, in place.
///
/// # Errors
///
/// Same conditions as [`fft_in_place`].
pub fn ifft_in_place(data: &mut [Complex]) -> Result<()> {
    for z in data.iter_mut() {
        *z = z.conj();
    }
    fft_in_place(data)?;
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = Complex::new(z.re / n, -z.im / n);
    }
    Ok(())
}

/// A one-sided magnitude spectrum.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Spectrum {
    /// Frequency of each bin in Hz.
    pub frequencies: Vec<f64>,
    /// Magnitude of each bin (amplitude-normalized: a unit sine yields ~1.0
    /// at its bin).
    pub magnitudes: Vec<f64>,
}

impl Spectrum {
    /// The frequency with the largest magnitude, ignoring the DC bin.
    /// Returns `None` when there are fewer than two bins.
    pub fn dominant_frequency(&self) -> Option<f64> {
        self.frequencies
            .iter()
            .zip(&self.magnitudes)
            .skip(1)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(f, _)| *f)
    }

    /// Total spectral energy (sum of squared magnitudes) within
    /// `[lo_hz, hi_hz]`.
    pub fn band_energy(&self, lo_hz: f64, hi_hz: f64) -> f64 {
        self.frequencies
            .iter()
            .zip(&self.magnitudes)
            .filter(|(f, _)| **f >= lo_hz && **f <= hi_hz)
            .map(|(_, m)| m * m)
            .sum()
    }
}

/// Computes the one-sided amplitude spectrum of `signal`.
///
/// The mean is removed first (the luminance DC level would otherwise dwarf
/// the sub-1 Hz band Fig. 6 examines), a Hann window is applied, and the
/// buffer is zero-padded to the next power of two.
///
/// # Errors
///
/// Returns [`DspError::EmptySignal`] for an empty signal.
pub fn magnitude_spectrum(signal: &Signal) -> Result<Spectrum> {
    if signal.is_empty() {
        return Err(DspError::EmptySignal);
    }
    let x = signal.samples();
    let mean = crate::stats::mean(x);
    let n = x.len();
    let window = crate::window::WindowKind::Hann.coefficients(n);
    // Coherent gain of the window, for amplitude normalization.
    let gain: f64 = window.iter().sum::<f64>() / n as f64;
    let padded = next_pow2(n);
    let mut buf: Vec<Complex> = (0..padded)
        .map(|i| {
            if i < n {
                Complex::new((x[i] - mean) * window[i], 0.0)
            } else {
                Complex::default()
            }
        })
        .collect();
    fft_in_place(&mut buf)?;
    let bins = padded / 2 + 1;
    let df = signal.sample_rate() / padded as f64;
    let norm = 2.0 / (n as f64 * gain);
    let frequencies = (0..bins).map(|i| i as f64 * df).collect();
    let magnitudes = buf[..bins].iter().map(|z| z.abs() * norm).collect();
    Ok(Spectrum {
        frequencies,
        magnitudes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![Complex::default(); 3];
        assert!(fft_in_place(&mut data).is_err());
        let mut empty: Vec<Complex> = vec![];
        assert!(fft_in_place(&mut empty).is_err());
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::default(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut data).unwrap();
        for z in &data {
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_matches_dft_definition() {
        let x = [1.0, 2.0, -1.0, 0.5, 0.0, -2.0, 3.0, 1.0];
        let mut data: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        fft_in_place(&mut data).unwrap();
        for (k, z) in data.iter().enumerate() {
            let mut expected = Complex::default();
            for (n, &v) in x.iter().enumerate() {
                let theta = -2.0 * PI * (k * n) as f64 / x.len() as f64;
                expected = expected + Complex::from_angle(theta) * Complex::new(v, 0.0);
            }
            assert!((z.re - expected.re).abs() < 1e-9);
            assert!((z.im - expected.im).abs() < 1e-9);
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let original: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut data = original.clone();
        fft_in_place(&mut data).unwrap();
        ifft_in_place(&mut data).unwrap();
        for (a, b) in data.iter().zip(&original) {
            assert!((a.re - b.re).abs() < 1e-9);
            assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn spectrum_locates_a_tone() {
        // 0.5 Hz tone at 10 Hz sampling.
        let s = Signal::from_fn(512, 10.0, |t| 80.0 + 10.0 * (2.0 * PI * 0.5 * t).sin()).unwrap();
        let spec = magnitude_spectrum(&s).unwrap();
        let dom = spec.dominant_frequency().unwrap();
        assert!((dom - 0.5).abs() < 0.05, "dominant {dom}");
    }

    #[test]
    fn spectrum_amplitude_is_calibrated() {
        // Tone exactly on bin 128 of a 1024-point FFT to avoid scalloping.
        let f0 = 10.0 * 128.0 / 1024.0;
        let s = Signal::from_fn(1024, 10.0, |t| 3.0 * (2.0 * PI * f0 * t).sin()).unwrap();
        let spec = magnitude_spectrum(&s).unwrap();
        let peak = spec.magnitudes.iter().cloned().fold(f64::MIN, f64::max);
        assert!((peak - 3.0).abs() < 0.1, "peak {peak}");
    }

    #[test]
    fn band_energy_separates_low_and_high() {
        let s = Signal::from_fn(1024, 10.0, |t| {
            (2.0 * PI * 0.3 * t).sin() + 0.2 * (2.0 * PI * 4.0 * t).sin()
        })
        .unwrap();
        let spec = magnitude_spectrum(&s).unwrap();
        assert!(spec.band_energy(0.1, 1.0) > 10.0 * spec.band_energy(3.0, 5.0));
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(1024), 1024);
    }
}
