//! Input guards shared by the slice-based entry points.
//!
//! [`crate::Signal`] already enforces finite samples at construction, but
//! the routines that accept raw `&[f64]` (DTW, cross-correlation,
//! convolution) are reachable with NaN/infinity and degenerate lengths —
//! exactly what a degraded capture path produces. These helpers turn those
//! inputs into typed errors instead of silently poisoned arithmetic.

use crate::{DspError, Result};

/// Errors with [`DspError::NonFiniteSample`] at the first NaN/infinite
/// sample.
pub(crate) fn ensure_finite(samples: &[f64]) -> Result<()> {
    if let Some(index) = samples.iter().position(|s| !s.is_finite()) {
        return Err(DspError::NonFiniteSample { index });
    }
    Ok(())
}

/// Errors with [`DspError::TooShort`] when fewer than `min` samples are
/// provided.
pub(crate) fn ensure_min_len(samples: &[f64], min: usize) -> Result<()> {
    if samples.len() < min {
        return Err(DspError::TooShort {
            len: samples.len(),
            min,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_guard_reports_first_offender() {
        assert!(ensure_finite(&[1.0, 2.0]).is_ok());
        assert_eq!(
            ensure_finite(&[1.0, f64::NAN, f64::INFINITY]),
            Err(DspError::NonFiniteSample { index: 1 })
        );
    }

    #[test]
    fn length_guard_reports_minimum() {
        assert!(ensure_min_len(&[1.0, 2.0], 2).is_ok());
        assert_eq!(
            ensure_min_len(&[1.0], 2),
            Err(DspError::TooShort { len: 1, min: 2 })
        );
    }
}
