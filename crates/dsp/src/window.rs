//! Window functions for FIR design and spectral estimation.

use std::f64::consts::PI;

/// The window functions supported by the FIR designer and the spectrum
/// estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WindowKind {
    /// All-ones window (no tapering).
    Rectangular,
    /// Hann window — the default; good sidelobe suppression for the 1 Hz
    /// low-pass the paper's preprocessing uses.
    #[default]
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window.
    Blackman,
}

impl WindowKind {
    /// Evaluates the window at position `i` of an `n`-point window.
    ///
    /// Returns `1.0` for windows of length 0 or 1 (a degenerate but valid
    /// request).
    pub fn coefficient(self, i: usize, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64;
        match self {
            WindowKind::Rectangular => 1.0,
            WindowKind::Hann => 0.5 - 0.5 * (2.0 * PI * x).cos(),
            WindowKind::Hamming => 0.54 - 0.46 * (2.0 * PI * x).cos(),
            WindowKind::Blackman => 0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos(),
        }
    }

    /// Materializes the full `n`-point window.
    ///
    /// # Example
    ///
    /// ```
    /// use lumen_dsp::window::WindowKind;
    /// let w = WindowKind::Hann.coefficients(5);
    /// assert_eq!(w.len(), 5);
    /// assert!(w[0] < 1e-12 && (w[2] - 1.0).abs() < 1e-12);
    /// ```
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.coefficient(i, n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_symmetric() {
        for kind in [
            WindowKind::Rectangular,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
        ] {
            let w = kind.coefficients(33);
            for i in 0..w.len() {
                assert!(
                    (w[i] - w[w.len() - 1 - i]).abs() < 1e-12,
                    "{kind:?} asymmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn windows_peak_at_center() {
        for kind in [WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman] {
            let w = kind.coefficients(31);
            let max = w.iter().cloned().fold(f64::MIN, f64::max);
            assert!((w[15] - max).abs() < 1e-12, "{kind:?} not centered");
        }
    }

    #[test]
    fn degenerate_lengths() {
        assert_eq!(WindowKind::Hann.coefficients(0), Vec::<f64>::new());
        assert_eq!(WindowKind::Hann.coefficients(1), vec![1.0]);
    }

    #[test]
    fn hamming_endpoints() {
        let w = WindowKind::Hamming.coefficients(11);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[10] - 0.08).abs() < 1e-12);
    }
}
