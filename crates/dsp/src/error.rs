use std::fmt;

/// Errors produced by signal-processing routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DspError {
    /// The operation requires a non-empty signal.
    EmptySignal,
    /// A sample rate must be finite and strictly positive.
    InvalidSampleRate(f64),
    /// Two signals that must have equal length differ.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// A window is longer than the signal it is applied to.
    WindowTooLarge {
        /// Requested window length.
        window: usize,
        /// Signal length.
        len: usize,
    },
    /// A parameter is outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// Samples contain a NaN or infinity where finite values are required.
    NonFiniteSample {
        /// Index of the first offending sample.
        index: usize,
    },
    /// The operation requires more samples than were provided.
    TooShort {
        /// Provided length.
        len: usize,
        /// Minimum required length.
        min: usize,
    },
}

impl DspError {
    /// Convenience constructor for [`DspError::InvalidParameter`].
    pub fn invalid_parameter(name: &'static str, reason: impl Into<String>) -> Self {
        DspError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::EmptySignal => write!(f, "signal is empty"),
            DspError::InvalidSampleRate(rate) => {
                write!(f, "sample rate {rate} is not finite and positive")
            }
            DspError::LengthMismatch { left, right } => {
                write!(f, "signal lengths differ: {left} vs {right}")
            }
            DspError::WindowTooLarge { window, len } => {
                write!(f, "window of {window} samples exceeds signal length {len}")
            }
            DspError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DspError::NonFiniteSample { index } => {
                write!(f, "non-finite sample at index {index}")
            }
            DspError::TooShort { len, min } => {
                write!(
                    f,
                    "signal of {len} samples is shorter than the minimum {min}"
                )
            }
        }
    }
}

impl std::error::Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = DspError::LengthMismatch { left: 3, right: 5 };
        assert!(err.to_string().contains("3 vs 5"));
        let err = DspError::invalid_parameter("cutoff", "must be below Nyquist");
        assert!(err.to_string().contains("cutoff"));
        assert!(err.to_string().contains("Nyquist"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
