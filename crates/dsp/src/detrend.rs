//! Trend removal.
//!
//! Head posture drifts move the ROI luminance baseline over a clip. The
//! paper's variance stage is insensitive to slow drift, but the ablation
//! experiments compare against explicitly detrended variants, and the
//! spectrum experiment uses mean removal.

use crate::{DspError, Result, Signal};

/// Removes the mean (DC component).
///
/// # Errors
///
/// Returns [`DspError::EmptySignal`] for an empty signal.
pub fn remove_mean(signal: &Signal) -> Result<Signal> {
    if signal.is_empty() {
        return Err(DspError::EmptySignal);
    }
    let mean = signal.mean();
    signal.try_map(|x| x - mean)
}

/// Removes the least-squares straight line (linear detrend).
///
/// # Errors
///
/// Returns [`DspError::EmptySignal`] for an empty signal and
/// [`DspError::TooShort`] for a single sample (a line fit needs two
/// points).
///
/// # Example
///
/// ```
/// use lumen_dsp::{Signal, detrend::remove_linear};
///
/// # fn main() -> Result<(), lumen_dsp::DspError> {
/// let drifting = Signal::from_fn(50, 10.0, |t| 5.0 + 2.0 * t)?;
/// let flat = remove_linear(&drifting)?;
/// assert!(flat.samples().iter().all(|v| v.abs() < 1e-9));
/// # Ok(())
/// # }
/// ```
pub fn remove_linear(signal: &Signal) -> Result<Signal> {
    if signal.is_empty() {
        return Err(DspError::EmptySignal);
    }
    crate::guard::ensure_min_len(signal.samples(), 2)?;
    let n = signal.len() as f64;
    let x = signal.samples();
    // Least squares on index: slope = cov(i, x) / var(i).
    let mean_i = (n - 1.0) / 2.0;
    let mean_x = signal.mean();
    let mut cov = 0.0;
    let mut var_i = 0.0;
    for (i, &v) in x.iter().enumerate() {
        let di = i as f64 - mean_i;
        cov += di * (v - mean_x);
        var_i += di * di;
    }
    // lint:allow(float-eq): exactly zero variance means a single sample
    // or constant index weighting; the slope is zero by definition there
    let slope = if var_i == 0.0 { 0.0 } else { cov / var_i };
    let samples: Vec<f64> = x
        .iter()
        .enumerate()
        .map(|(i, &v)| v - (mean_x + slope * (i as f64 - mean_i)))
        .collect();
    Signal::new(samples, signal.sample_rate())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remove_mean_zeroes_dc() {
        let s = Signal::new(vec![5.0, 7.0, 9.0], 10.0).unwrap();
        let out = remove_mean(&s).unwrap();
        assert!(out.mean().abs() < 1e-12);
        assert_eq!(out.samples(), &[-2.0, 0.0, 2.0]);
    }

    #[test]
    fn remove_linear_flattens_ramp_plus_signal() {
        let s = Signal::from_fn(200, 10.0, |t| {
            3.0 * t - 10.0 + (2.0 * std::f64::consts::PI * 0.5 * t).sin()
        })
        .unwrap();
        let out = remove_linear(&s).unwrap();
        // Residual is the sine: bounded by ~1.1 (small leakage at edges).
        assert!(out.samples().iter().all(|v| v.abs() < 1.2));
        assert!(out.mean().abs() < 1e-9);
    }

    #[test]
    fn remove_linear_single_sample_errors_typed() {
        let s = Signal::new(vec![42.0], 10.0).unwrap();
        assert_eq!(
            remove_linear(&s).unwrap_err(),
            DspError::TooShort { len: 1, min: 2 }
        );
    }

    #[test]
    fn empty_errors() {
        let e = Signal::new(vec![], 10.0).unwrap();
        assert!(remove_mean(&e).is_err());
        assert!(remove_linear(&e).is_err());
    }
}
