//! Elementary descriptive statistics and the Pearson correlation used for
//! feature `z3` (Eq. 6 of the paper).

use crate::{DspError, Result};

/// Arithmetic mean; `0.0` for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(lumen_dsp::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Population variance (divides by `n`); `0.0` for fewer than two samples.
///
/// The paper's short-time variance windows use the population convention, so
/// it is the default throughout the pipeline.
pub fn variance_population(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64
}

/// Sample variance (divides by `n - 1`); `0.0` for fewer than two samples.
pub fn variance_sample(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64
}

/// Population standard deviation.
pub fn stddev_population(data: &[f64]) -> f64 {
    variance_population(data).sqrt()
}

/// Sample standard deviation.
pub fn stddev_sample(data: &[f64]) -> f64 {
    variance_sample(data).sqrt()
}

/// Root mean square of the samples; `0.0` for an empty slice.
pub fn rms(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    (data.iter().map(|&x| x * x).sum::<f64>() / data.len() as f64).sqrt()
}

/// Population covariance of two equally long slices.
///
/// # Errors
///
/// Returns [`DspError::LengthMismatch`] when lengths differ and
/// [`DspError::EmptySignal`] for empty inputs.
pub fn covariance(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(DspError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.is_empty() {
        return Err(DspError::EmptySignal);
    }
    let mx = mean(x);
    let my = mean(y);
    Ok(x.iter()
        .zip(y)
        .map(|(&a, &b)| (a - mx) * (b - my))
        .sum::<f64>()
        / x.len() as f64)
}

/// Pearson correlation coefficient between two equally long slices (Eq. 6).
///
/// The result lies in `[-1, 1]`. When either input has zero variance the
/// correlation is undefined; this implementation returns `0.0` in that case,
/// which is the conservative choice for the detector (a flat segment carries
/// no trend information and should not look "correlated").
///
/// # Errors
///
/// Returns [`DspError::LengthMismatch`] when lengths differ and
/// [`DspError::EmptySignal`] for empty inputs.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), lumen_dsp::DspError> {
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((lumen_dsp::stats::pearson(&x, &y)? - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(DspError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.is_empty() {
        return Err(DspError::EmptySignal);
    }
    let sx = stddev_population(x);
    let sy = stddev_population(y);
    // lint:allow(float-eq): an exactly zero stddev marks a constant input,
    // for which Pearson correlation is undefined; we define it as 0
    if sx == 0.0 || sy == 0.0 {
        return Ok(0.0);
    }
    let cov = covariance(x, y)?;
    Ok((cov / (sx * sy)).clamp(-1.0, 1.0))
}

/// Quantile of an **ascending-sorted** slice by linear interpolation
/// between the two nearest order statistics; `None` for an empty slice.
/// `q` is clamped to `[0, 1]`.
///
/// # Example
///
/// ```
/// let sorted = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(lumen_dsp::stats::quantile(&sorted, 0.5), Some(2.5));
/// ```
pub fn quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median of the samples (averaging the middle pair for even lengths);
/// `None` for an empty slice.
pub fn median(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    Some(if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&data) - 5.0).abs() < 1e-12);
        assert!((variance_population(&data) - 4.0).abs() < 1e-12);
        assert!((stddev_population(&data) - 2.0).abs() < 1e-12);
        assert!((variance_sample(&data) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance_population(&[3.0]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn rms_of_constant() {
        assert!((rms(&[-3.0, -3.0, -3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_correlations() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 1.0).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_flat_is_zero() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&x, &y).unwrap(), 0.0);
    }

    #[test]
    fn pearson_errors() {
        assert!(matches!(
            pearson(&[1.0], &[1.0, 2.0]),
            Err(DspError::LengthMismatch { left: 1, right: 2 })
        ));
        assert!(matches!(pearson(&[], &[]), Err(DspError::EmptySignal)));
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        assert_eq!(quantile(&v, -1.0), Some(1.0));
        assert_eq!(quantile(&v, 2.0), Some(4.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_agrees_with_median() {
        let v = [1.0, 2.0, 5.0, 9.0, 11.0];
        assert_eq!(quantile(&v, 0.5), median(&v));
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn covariance_matches_variance() {
        let x = [1.0, 2.0, 3.0, 10.0];
        assert!((covariance(&x, &x).unwrap() - variance_population(&x)).abs() < 1e-12);
    }
}
