//! Dynamic time warping (feature `z4` of the paper).
//!
//! Sec. VI-2: "we also use the maximum dynamic time warping (DTW) distance
//! between each pair of segments as the fourth feature". Distances use the
//! absolute difference as the local cost and the classic
//! `min(insert, delete, match)` recurrence; an optional Sakoe–Chiba band
//! bounds the warping for long inputs.

use crate::guard::{ensure_finite, ensure_min_len};
use crate::{DspError, Result};

/// Unconstrained DTW distance between `x` and `y`.
///
/// Runs in `O(len(x) · len(y))` time and `O(min)` memory (two rolling rows).
///
/// # Errors
///
/// Returns [`DspError::EmptySignal`] when either input is empty.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), lumen_dsp::DspError> {
/// let x = [0.0, 1.0, 2.0, 1.0, 0.0];
/// // Same shape, time-stretched: DTW distance stays zero.
/// let y = [0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 1.0, 0.0];
/// assert_eq!(lumen_dsp::dtw::dtw_distance(&x, &y)?, 0.0);
/// # Ok(())
/// # }
/// ```
pub fn dtw_distance(x: &[f64], y: &[f64]) -> Result<f64> {
    dtw_distance_banded(x, y, None)
}

/// DTW distance constrained to a Sakoe–Chiba band of half-width `band`
/// (in samples). `None` means unconstrained.
///
/// A band at least `|len(x) - len(y)|` wide is required for a path to exist;
/// narrower bands are widened to that minimum automatically.
///
/// # Errors
///
/// Returns [`DspError::EmptySignal`] when either input is empty,
/// [`DspError::TooShort`] when either holds a single sample, and
/// [`DspError::NonFiniteSample`] for NaN/infinite samples.
pub fn dtw_distance_banded(x: &[f64], y: &[f64], band: Option<usize>) -> Result<f64> {
    if x.is_empty() || y.is_empty() {
        return Err(DspError::EmptySignal);
    }
    ensure_min_len(x, 2)?;
    ensure_min_len(y, 2)?;
    ensure_finite(x)?;
    ensure_finite(y)?;
    let n = x.len();
    let m = y.len();
    let band = band.map(|b| b.max(n.abs_diff(m))).unwrap_or(n.max(m));

    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;

    for i in 1..=n {
        curr.fill(f64::INFINITY);
        // Band in y-index space around the diagonal i * m / n.
        let center = i * m / n;
        let lo = center.saturating_sub(band).max(1);
        let hi = (center + band).min(m);
        for j in lo..=hi {
            let cost = (x[i - 1] - y[j - 1]).abs();
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let d = prev[m];
    if d.is_finite() {
        Ok(d)
    } else {
        // Unreachable for the auto-widened band, but kept defensive.
        Err(DspError::invalid_parameter(
            "band",
            "no warping path exists within the band",
        ))
    }
}

/// DTW distance together with the warping path, for diagnostics and the
/// `fig7`-style pipeline visualizations.
///
/// The path is a sequence of `(i, j)` index pairs from `(0, 0)` to
/// `(len(x) - 1, len(y) - 1)`.
///
/// # Errors
///
/// Returns [`DspError::EmptySignal`] when either input is empty,
/// [`DspError::TooShort`] when either holds a single sample, and
/// [`DspError::NonFiniteSample`] for NaN/infinite samples.
pub fn dtw_with_path(x: &[f64], y: &[f64]) -> Result<(f64, Vec<(usize, usize)>)> {
    if x.is_empty() || y.is_empty() {
        return Err(DspError::EmptySignal);
    }
    ensure_min_len(x, 2)?;
    ensure_min_len(y, 2)?;
    ensure_finite(x)?;
    ensure_finite(y)?;
    let n = x.len();
    let m = y.len();
    let mut dp = vec![f64::INFINITY; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    dp[idx(0, 0)] = 0.0;
    for i in 1..=n {
        for j in 1..=m {
            let cost = (x[i - 1] - y[j - 1]).abs();
            let best = dp[idx(i - 1, j)]
                .min(dp[idx(i, j - 1)])
                .min(dp[idx(i - 1, j - 1)]);
            dp[idx(i, j)] = cost + best;
        }
    }
    // Backtrack.
    let mut path = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        path.push((i - 1, j - 1));
        let diag = dp[idx(i - 1, j - 1)];
        let up = dp[idx(i - 1, j)];
        let left = dp[idx(i, j - 1)];
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    path.reverse();
    Ok((dp[idx(n, m)], path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_signals_have_zero_distance() {
        let x = [1.0, 3.0, 2.0, 5.0];
        assert_eq!(dtw_distance(&x, &x).unwrap(), 0.0);
    }

    #[test]
    fn empty_inputs_error() {
        assert!(dtw_distance(&[], &[1.0, 2.0]).is_err());
        assert!(dtw_distance(&[1.0, 2.0], &[]).is_err());
        assert!(dtw_with_path(&[], &[]).is_err());
    }

    #[test]
    fn single_sample_inputs_error_typed() {
        assert_eq!(
            dtw_distance(&[1.0], &[1.0, 2.0]),
            Err(DspError::TooShort { len: 1, min: 2 })
        );
        assert_eq!(
            dtw_with_path(&[1.0, 2.0], &[3.0]).unwrap_err(),
            DspError::TooShort { len: 1, min: 2 }
        );
    }

    #[test]
    fn non_finite_inputs_error_typed() {
        assert_eq!(
            dtw_distance(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(DspError::NonFiniteSample { index: 1 })
        );
        assert_eq!(
            dtw_distance(&[1.0, 2.0], &[f64::INFINITY, 2.0]),
            Err(DspError::NonFiniteSample { index: 0 })
        );
        assert!(dtw_with_path(&[1.0, 2.0], &[f64::NEG_INFINITY, 0.0]).is_err());
    }

    #[test]
    fn warping_absorbs_time_stretch() {
        let x = [0.0, 1.0, 2.0, 3.0, 2.0, 1.0, 0.0];
        let y = [
            0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 2.0, 2.0, 1.0, 1.0, 0.0, 0.0,
        ];
        assert_eq!(dtw_distance(&x, &y).unwrap(), 0.0);
    }

    #[test]
    fn distance_grows_with_dissimilarity() {
        let x = [0.0, 0.0, 0.0, 0.0];
        let near = [0.1, 0.1, 0.1, 0.1];
        let far = [5.0, 5.0, 5.0, 5.0];
        let d_near = dtw_distance(&x, &near).unwrap();
        let d_far = dtw_distance(&x, &far).unwrap();
        assert!(d_near < d_far);
        assert!((d_far - 20.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let x = [0.0, 2.0, 1.0, 4.0, 1.0];
        let y = [1.0, 1.0, 3.0, 0.0];
        let a = dtw_distance(&x, &y).unwrap();
        let b = dtw_distance(&y, &x).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn banded_matches_full_for_wide_band() {
        let x: Vec<f64> = (0..40).map(|i| ((i as f64) * 0.3).sin()).collect();
        let y: Vec<f64> = (0..35).map(|i| ((i as f64) * 0.33).sin()).collect();
        let full = dtw_distance(&x, &y).unwrap();
        let banded = dtw_distance_banded(&x, &y, Some(40)).unwrap();
        assert!((full - banded).abs() < 1e-12);
    }

    #[test]
    fn banded_is_lower_bounded_by_full() {
        // A tighter band can only increase the optimal cost.
        let x: Vec<f64> = (0..50).map(|i| ((i as f64) * 0.5).sin()).collect();
        let y: Vec<f64> = (0..50).map(|i| ((i as f64) * 0.5 + 1.0).sin()).collect();
        let full = dtw_distance(&x, &y).unwrap();
        let banded = dtw_distance_banded(&x, &y, Some(3)).unwrap();
        assert!(banded >= full - 1e-12);
    }

    #[test]
    fn path_endpoints_and_monotonicity() {
        let x = [0.0, 1.0, 2.0, 1.0];
        let y = [0.0, 2.0, 1.0];
        let (d, path) = dtw_with_path(&x, &y).unwrap();
        assert!(d >= 0.0);
        assert_eq!(path.first(), Some(&(0, 0)));
        assert_eq!(path.last(), Some(&(3, 2)));
        for w in path.windows(2) {
            let (i0, j0) = w[0];
            let (i1, j1) = w[1];
            assert!(i1 >= i0 && j1 >= j0);
            assert!(i1 - i0 <= 1 && j1 - j0 <= 1);
        }
    }

    #[test]
    fn path_distance_matches_distance() {
        let x = [0.3, 1.2, 0.7, 2.2, 0.1];
        let y = [0.0, 1.0, 2.0, 0.0];
        let d1 = dtw_distance(&x, &y).unwrap();
        let (d2, _) = dtw_with_path(&x, &y).unwrap();
        assert!((d1 - d2).abs() < 1e-12);
    }
}
