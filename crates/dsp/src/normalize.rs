//! Signal normalization.
//!
//! Sec. VI-2: "Since we only consider the trend of the luminance signal
//! instead of absolute values, we further normalize each smoothed variance
//! signal to [0, 1]."

use crate::{DspError, Result, Signal};

/// Rescales the signal linearly to `[0, 1]`.
///
/// A constant (flat) signal maps to all zeros — the conservative choice for
/// the detector: a flat variance trace carries no trend evidence.
///
/// # Errors
///
/// Returns [`DspError::EmptySignal`] for an empty signal.
///
/// # Example
///
/// ```
/// use lumen_dsp::{Signal, normalize::normalize_min_max};
///
/// # fn main() -> Result<(), lumen_dsp::DspError> {
/// let s = Signal::new(vec![10.0, 20.0, 30.0], 10.0)?;
/// let n = normalize_min_max(&s)?;
/// assert_eq!(n.samples(), &[0.0, 0.5, 1.0]);
/// # Ok(())
/// # }
/// ```
pub fn normalize_min_max(signal: &Signal) -> Result<Signal> {
    let (Some(min), Some(max)) = (signal.min(), signal.max()) else {
        return Err(DspError::EmptySignal);
    };
    let range = max - min;
    // lint:allow(float-eq): exact zero marks a constant signal; any other
    // range is a valid divisor
    if range == 0.0 {
        return signal.try_map(|_| 0.0);
    }
    signal.try_map(|x| (x - min) / range)
}

/// Standardizes the signal to zero mean and unit (population) variance.
///
/// A constant signal maps to all zeros.
///
/// # Errors
///
/// Returns [`DspError::EmptySignal`] for an empty signal.
pub fn normalize_zscore(signal: &Signal) -> Result<Signal> {
    if signal.is_empty() {
        return Err(DspError::EmptySignal);
    }
    let mean = signal.mean();
    let std = crate::stats::stddev_population(signal.samples());
    // lint:allow(float-eq): exact zero marks a constant signal; any other
    // deviation is a valid divisor
    if std == 0.0 {
        return signal.try_map(|_| 0.0);
    }
    signal.try_map(|x| (x - mean) / std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_bounds() {
        let s = Signal::new(vec![-5.0, 0.0, 15.0, 2.0], 10.0).unwrap();
        let n = normalize_min_max(&s).unwrap();
        assert_eq!(n.min(), Some(0.0));
        assert_eq!(n.max(), Some(1.0));
    }

    #[test]
    fn min_max_flat_is_zero() {
        let s = Signal::new(vec![4.0; 5], 10.0).unwrap();
        let n = normalize_min_max(&s).unwrap();
        assert!(n.samples().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zscore_moments() {
        let s = Signal::new(vec![1.0, 2.0, 3.0, 4.0, 5.0], 10.0).unwrap();
        let n = normalize_zscore(&s).unwrap();
        assert!(n.mean().abs() < 1e-12);
        assert!((crate::stats::stddev_population(n.samples()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zscore_flat_is_zero() {
        let s = Signal::new(vec![7.0; 3], 10.0).unwrap();
        let n = normalize_zscore(&s).unwrap();
        assert!(n.samples().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_errors() {
        let s = Signal::new(vec![], 10.0).unwrap();
        assert!(normalize_min_max(&s).is_err());
        assert!(normalize_zscore(&s).is_err());
    }
}
