use crate::{DspError, Result};

/// A uniformly sampled, real-valued time series.
///
/// `Signal` is the common currency of the Lumen pipeline: luminance traces of
/// the transmitted and received videos are `Signal`s at (by default) 10 Hz,
/// and every filter stage consumes and produces `Signal`s.
///
/// # Example
///
/// ```
/// use lumen_dsp::Signal;
///
/// # fn main() -> Result<(), lumen_dsp::DspError> {
/// let s = Signal::new(vec![1.0, 2.0, 3.0, 4.0], 10.0)?;
/// assert_eq!(s.len(), 4);
/// assert!((s.duration() - 0.4).abs() < 1e-12);
/// assert_eq!(s.time_at(2), 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Signal {
    samples: Vec<f64>,
    sample_rate: f64,
}

impl Signal {
    /// Creates a signal from raw samples and a sample rate in Hz.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidSampleRate`] if `sample_rate` is not finite
    /// and strictly positive, and [`DspError::NonFiniteSample`] if any sample
    /// is NaN or infinite.
    pub fn new(samples: Vec<f64>, sample_rate: f64) -> Result<Self> {
        if !(sample_rate.is_finite() && sample_rate > 0.0) {
            return Err(DspError::InvalidSampleRate(sample_rate));
        }
        if let Some(index) = samples.iter().position(|s| !s.is_finite()) {
            return Err(DspError::NonFiniteSample { index });
        }
        Ok(Signal {
            samples,
            sample_rate,
        })
    }

    /// Creates a signal by sampling `f` at `n` uniformly spaced instants
    /// `t = i / sample_rate`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Signal::new`].
    ///
    /// # Example
    ///
    /// ```
    /// use lumen_dsp::Signal;
    ///
    /// # fn main() -> Result<(), lumen_dsp::DspError> {
    /// let sine = Signal::from_fn(100, 10.0, |t| (2.0 * std::f64::consts::PI * t).sin())?;
    /// assert_eq!(sine.len(), 100);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_fn(n: usize, sample_rate: f64, mut f: impl FnMut(f64) -> f64) -> Result<Self> {
        if !(sample_rate.is_finite() && sample_rate > 0.0) {
            return Err(DspError::InvalidSampleRate(sample_rate));
        }
        let samples = (0..n).map(|i| f(i as f64 / sample_rate)).collect();
        Signal::new(samples, sample_rate)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the signal holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Total duration in seconds (`len / sample_rate`).
    pub fn duration(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate
    }

    /// Borrows the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Consumes the signal and returns the raw samples.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// The sample at `index`, or `None` when out of range.
    pub fn get(&self, index: usize) -> Option<f64> {
        self.samples.get(index).copied()
    }

    /// Time (seconds) of the sample at `index`.
    pub fn time_at(&self, index: usize) -> f64 {
        index as f64 / self.sample_rate
    }

    /// Index of the sample closest to time `t` (seconds), clamped to range.
    ///
    /// Returns `None` for an empty signal.
    pub fn index_at(&self, t: f64) -> Option<usize> {
        if self.samples.is_empty() {
            return None;
        }
        let idx = (t * self.sample_rate).round();
        let idx = idx.clamp(0.0, (self.samples.len() - 1) as f64);
        Some(idx as usize)
    }

    /// The time axis, one entry per sample.
    pub fn time_axis(&self) -> Vec<f64> {
        (0..self.samples.len()).map(|i| self.time_at(i)).collect()
    }

    /// Applies `f` to every sample, producing a new signal at the same rate.
    ///
    /// # Panics
    ///
    /// Panics if `f` produces a non-finite value; use [`Signal::try_map`] for
    /// a fallible variant.
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> Signal {
        self.try_map(f)
            // lint:allow(no-panic, hot-path-purity): the panic is this
            // method's documented contract; try_map is the total variant
            // and the one the detection pipeline actually calls
            .expect("map closure produced a non-finite sample")
    }

    /// Applies `f` to every sample, validating the output.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::NonFiniteSample`] if `f` produces NaN/inf.
    pub fn try_map(&self, mut f: impl FnMut(f64) -> f64) -> Result<Signal> {
        let samples: Vec<f64> = self.samples.iter().map(|&s| f(s)).collect();
        Signal::new(samples, self.sample_rate)
    }

    /// Extracts the sub-signal covering sample indices `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when the range is out of bounds
    /// or reversed.
    pub fn slice(&self, start: usize, end: usize) -> Result<Signal> {
        if start > end || end > self.samples.len() {
            return Err(DspError::invalid_parameter(
                "range",
                format!(
                    "slice [{start}, {end}) out of bounds for length {}",
                    self.samples.len()
                ),
            ));
        }
        Signal::new(self.samples[start..end].to_vec(), self.sample_rate)
    }

    /// Splits the signal into `parts` contiguous segments of (near-)equal
    /// length; the first `len % parts` segments are one sample longer.
    ///
    /// Used by the feature extractor, which cuts each smoothed variance
    /// signal into two segments (Sec. VI-2 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] when `parts` is zero or exceeds
    /// the number of samples.
    pub fn split_even(&self, parts: usize) -> Result<Vec<Signal>> {
        if parts == 0 || parts > self.samples.len() {
            return Err(DspError::invalid_parameter(
                "parts",
                format!("cannot split {} samples into {parts} parts", self.len()),
            ));
        }
        let base = self.samples.len() / parts;
        let extra = self.samples.len() % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0;
        for part in 0..parts {
            let len = base + usize::from(part < extra);
            out.push(self.slice(start, start + len)?);
            start += len;
        }
        Ok(out)
    }

    /// Arithmetic mean of the samples; `0.0` for an empty signal.
    pub fn mean(&self) -> f64 {
        crate::stats::mean(&self.samples)
    }

    /// Minimum sample value, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Maximum sample value, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// Shifts the whole signal later in time by `delay` seconds, filling the
    /// front with the first sample and truncating the tail so the length is
    /// unchanged. A negative `delay` shifts earlier.
    ///
    /// This mirrors how the detector removes estimated network delay before
    /// comparing trends (Sec. VI-2).
    pub fn shift(&self, delay: f64) -> Signal {
        if self.samples.is_empty() {
            return self.clone();
        }
        let offset = (delay * self.sample_rate).round() as i64;
        let n = self.samples.len() as i64;
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                let src = (i - offset).clamp(0, n - 1) as usize;
                self.samples[src]
            })
            .collect();
        Signal {
            samples,
            sample_rate: self.sample_rate,
        }
    }
}

impl AsRef<[f64]> for Signal {
    fn as_ref(&self) -> &[f64] {
        &self.samples
    }
}

impl<'a> IntoIterator for &'a Signal {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Signal {
        Signal::from_fn(n, 10.0, |t| t).unwrap()
    }

    #[test]
    fn new_rejects_bad_rate() {
        assert_eq!(
            Signal::new(vec![1.0], 0.0),
            Err(DspError::InvalidSampleRate(0.0))
        );
        assert!(Signal::new(vec![1.0], -3.0).is_err());
        assert!(Signal::new(vec![1.0], f64::NAN).is_err());
    }

    #[test]
    fn new_rejects_non_finite_samples() {
        assert_eq!(
            Signal::new(vec![0.0, f64::NAN], 10.0),
            Err(DspError::NonFiniteSample { index: 1 })
        );
        assert!(Signal::new(vec![f64::INFINITY], 10.0).is_err());
    }

    #[test]
    fn duration_and_time_axis() {
        let s = ramp(20);
        assert!((s.duration() - 2.0).abs() < 1e-12);
        let axis = s.time_axis();
        assert_eq!(axis.len(), 20);
        assert!((axis[10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn index_at_clamps() {
        let s = ramp(10);
        assert_eq!(s.index_at(-5.0), Some(0));
        assert_eq!(s.index_at(0.4), Some(4));
        assert_eq!(s.index_at(100.0), Some(9));
        let empty = Signal::new(vec![], 10.0).unwrap();
        assert_eq!(empty.index_at(1.0), None);
    }

    #[test]
    fn slice_and_split() {
        let s = ramp(10);
        let sub = s.slice(2, 5).unwrap();
        assert_eq!(sub.samples(), &[0.2, 0.3, 0.4]);
        assert!(s.slice(5, 2).is_err());
        assert!(s.slice(0, 11).is_err());

        let parts = s.split_even(3).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 4);
        assert_eq!(parts[1].len(), 3);
        assert_eq!(parts[2].len(), 3);
        let total: usize = parts.iter().map(Signal::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn split_even_rejects_degenerate() {
        let s = ramp(4);
        assert!(s.split_even(0).is_err());
        assert!(s.split_even(5).is_err());
        assert_eq!(s.split_even(4).unwrap().len(), 4);
    }

    #[test]
    fn shift_delays_signal() {
        let s = Signal::new(vec![1.0, 2.0, 3.0, 4.0, 5.0], 10.0).unwrap();
        let shifted = s.shift(0.2); // two samples later
        assert_eq!(shifted.samples(), &[1.0, 1.0, 1.0, 2.0, 3.0]);
        let back = s.shift(-0.2);
        assert_eq!(back.samples(), &[3.0, 4.0, 5.0, 5.0, 5.0]);
        assert_eq!(s.shift(0.0).samples(), s.samples());
    }

    #[test]
    fn map_preserves_rate() {
        let s = ramp(5);
        let doubled = s.map(|x| 2.0 * x);
        assert_eq!(doubled.sample_rate(), 10.0);
        assert!((doubled.samples()[4] - 0.8).abs() < 1e-12);
        assert!(s.try_map(|x| x / 0.0).is_err());
    }

    #[test]
    fn min_max_mean() {
        let s = Signal::new(vec![3.0, -1.0, 2.0], 1.0).unwrap();
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(3.0));
        assert!((s.mean() - 4.0 / 3.0).abs() < 1e-12);
    }
}
