//! Resampling — the Fig. 16 sampling-rate study re-runs the whole pipeline
//! at 5, 8 and 10 Hz, which requires rate conversion of the simulated
//! luminance traces.

use crate::{DspError, Result, Signal};

/// Resamples `signal` to `new_rate` Hz by linear interpolation.
///
/// The output covers the same time span (`floor(duration · new_rate)`
/// samples). No anti-aliasing filter is applied; callers downsampling
/// broadband signals should low-pass first (see
/// [`crate::filters::fir::lowpass`]) or use [`decimate`].
///
/// # Errors
///
/// Returns [`DspError::EmptySignal`] for an empty input,
/// [`DspError::TooShort`] for a single-sample input (nothing to
/// interpolate between), and [`DspError::InvalidSampleRate`] for a
/// non-positive target rate.
///
/// # Example
///
/// ```
/// use lumen_dsp::{Signal, resample::resample_linear};
///
/// # fn main() -> Result<(), lumen_dsp::DspError> {
/// let s = Signal::from_fn(100, 10.0, |t| t)?; // 10 s ramp
/// let down = resample_linear(&s, 5.0)?;
/// assert_eq!(down.len(), 50);
/// assert_eq!(down.sample_rate(), 5.0);
/// # Ok(())
/// # }
/// ```
pub fn resample_linear(signal: &Signal, new_rate: f64) -> Result<Signal> {
    if signal.is_empty() {
        return Err(DspError::EmptySignal);
    }
    crate::guard::ensure_min_len(signal.samples(), 2)?;
    if !(new_rate.is_finite() && new_rate > 0.0) {
        return Err(DspError::InvalidSampleRate(new_rate));
    }
    let n_out = (signal.duration() * new_rate).floor().max(1.0) as usize;
    let x = signal.samples();
    let ratio = signal.sample_rate() / new_rate;
    let out: Vec<f64> = (0..n_out)
        .map(|i| {
            let pos = i as f64 * ratio;
            let lo = pos.floor() as usize;
            if lo + 1 >= x.len() {
                x[x.len() - 1]
            } else {
                let frac = pos - lo as f64;
                x[lo] * (1.0 - frac) + x[lo + 1] * frac
            }
        })
        .collect();
    Signal::new(out, new_rate)
}

/// Keeps every `factor`-th sample after low-pass filtering at 80 % of the
/// new Nyquist frequency (a guard band against aliasing).
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] for a zero factor,
/// [`DspError::EmptySignal`] for an empty signal, [`DspError::TooShort`]
/// for a single-sample signal, and propagates filter design errors.
pub fn decimate(signal: &Signal, factor: usize) -> Result<Signal> {
    if factor == 0 {
        return Err(DspError::invalid_parameter("factor", "must be non-zero"));
    }
    if signal.is_empty() {
        return Err(DspError::EmptySignal);
    }
    crate::guard::ensure_min_len(signal.samples(), 2)?;
    if factor == 1 {
        return Ok(signal.clone());
    }
    let new_rate = signal.sample_rate() / factor as f64;
    let filtered = crate::filters::fir::lowpass(signal, 0.4 * new_rate)?;
    let out: Vec<f64> = filtered.samples().iter().step_by(factor).copied().collect();
    Signal::new(out, new_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resample_identity_rate() {
        let s = Signal::from_fn(50, 10.0, |t| t * t).unwrap();
        let out = resample_linear(&s, 10.0).unwrap();
        assert_eq!(out.len(), 50);
        for (a, b) in out.samples().iter().zip(s.samples()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn resample_preserves_ramp() {
        let s = Signal::from_fn(100, 10.0, |t| 3.0 * t).unwrap();
        let out = resample_linear(&s, 8.0).unwrap();
        for (i, &v) in out.samples().iter().enumerate() {
            let t = i as f64 / 8.0;
            if t < 9.8 {
                assert!((v - 3.0 * t).abs() < 1e-9, "at {t}: {v}");
            }
        }
    }

    #[test]
    fn resample_upsamples() {
        let s = Signal::from_fn(10, 10.0, |t| t).unwrap();
        let out = resample_linear(&s, 20.0).unwrap();
        assert_eq!(out.len(), 20);
        assert_eq!(out.sample_rate(), 20.0);
    }

    #[test]
    fn resample_rejects_bad_rate() {
        let s = Signal::from_fn(10, 10.0, |t| t).unwrap();
        assert!(resample_linear(&s, 0.0).is_err());
        assert!(resample_linear(&s, -1.0).is_err());
    }

    #[test]
    fn decimate_halves_rate() {
        let s = Signal::from_fn(100, 10.0, |t| (t * 0.6).sin()).unwrap();
        let out = decimate(&s, 2).unwrap();
        assert_eq!(out.sample_rate(), 5.0);
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn decimate_factor_one_is_identity() {
        let s = Signal::from_fn(10, 10.0, |t| t).unwrap();
        let out = decimate(&s, 1).unwrap();
        assert_eq!(out.samples(), s.samples());
    }

    #[test]
    fn decimate_rejects_zero() {
        let s = Signal::from_fn(10, 10.0, |t| t).unwrap();
        assert!(decimate(&s, 0).is_err());
    }

    #[test]
    fn single_sample_errors_typed() {
        let s = Signal::new(vec![5.0], 10.0).unwrap();
        assert_eq!(
            resample_linear(&s, 5.0),
            Err(DspError::TooShort { len: 1, min: 2 })
        );
        assert_eq!(decimate(&s, 2), Err(DspError::TooShort { len: 1, min: 2 }));
    }
}
