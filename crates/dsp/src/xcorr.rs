//! Cross-correlation and delay estimation.
//!
//! The detector removes network delay before comparing luminance trends
//! (Sec. VI-2). The paper estimates delay from matched change timestamps;
//! this module additionally provides a classical normalized-cross-correlation
//! estimator used as a fallback when too few changes match.

use crate::guard::{ensure_finite, ensure_min_len};
use crate::{stats, DspError, Result, Signal};

/// Normalized cross-correlation of `x` and `y` at integer lag `lag`:
/// `x[i]` is compared against `y[i + lag]`, so a *positive* lag measures how
/// well `y` matches `x` when `y` is assumed to lag behind by `lag` samples.
///
/// Only the overlapping region contributes; returns `0.0` when the overlap
/// is shorter than two samples or either segment is flat.
pub fn normalized_xcorr_at(x: &[f64], y: &[f64], lag: isize) -> f64 {
    let n = x.len() as isize;
    let m = y.len() as isize;
    let start = (-lag).max(0);
    let end = n.min(m - lag);
    if end - start < 2 {
        return 0.0;
    }
    let xs = &x[start as usize..end as usize];
    let ys = &y[(start + lag) as usize..(end + lag) as usize];
    stats::pearson(xs, ys).unwrap_or(0.0)
}

/// The lag (in samples) within `[-max_lag, max_lag]` maximizing normalized
/// cross-correlation, together with the correlation value at that lag.
///
/// # Errors
///
/// Returns [`DspError::EmptySignal`] when either input is empty,
/// [`DspError::TooShort`] when either holds a single sample (no lag can be
/// scored), [`DspError::NonFiniteSample`] for NaN/infinite samples, and
/// [`DspError::InvalidParameter`] when `max_lag` exceeds the largest lag
/// that can still retain a two-sample overlap (`max(x.len(), y.len()) - 2`).
/// Such a window cannot be searched: its outer lags always score the `0.0`
/// sentinel of [`normalized_xcorr_at`], so accepting the request would
/// silently search a narrower window than the caller asked for.
pub fn best_lag(x: &[f64], y: &[f64], max_lag: usize) -> Result<(isize, f64)> {
    if x.is_empty() || y.is_empty() {
        return Err(DspError::EmptySignal);
    }
    ensure_min_len(x, 2)?;
    ensure_min_len(y, 2)?;
    ensure_finite(x)?;
    ensure_finite(y)?;
    // Lags beyond len-2 in either direction cannot overlap by >= 2
    // samples, so nothing outside this bound can ever win the search.
    let hard_cap = x.len().max(y.len()) - 2;
    if max_lag > hard_cap {
        return Err(DspError::InvalidParameter {
            name: "max_lag",
            reason: format!(
                "max_lag {max_lag} exceeds the largest usable lag {hard_cap} \
                 for inputs of {} and {} samples",
                x.len(),
                y.len()
            ),
        });
    }
    let mut best = (0isize, f64::MIN);
    for lag in -(max_lag as isize)..=(max_lag as isize) {
        let c = normalized_xcorr_at(x, y, lag);
        if c > best.1 {
            best = (lag, c);
        }
    }
    Ok(best)
}

/// Estimates the delay of `y` relative to `x` in seconds, searching up to
/// `max_delay` seconds. Positive output means `y` lags `x`.
///
/// # Errors
///
/// Returns [`DspError::EmptySignal`] for empty inputs and
/// [`DspError::LengthMismatch`] when sample rates differ (compare signals on
/// a common rate first — see [`crate::resample`]).
///
/// # Example
///
/// ```
/// use lumen_dsp::{Signal, xcorr::estimate_delay};
///
/// # fn main() -> Result<(), lumen_dsp::DspError> {
/// let x = Signal::from_fn(100, 10.0, |t| (t * 2.0).sin())?;
/// let y = x.shift(0.5); // y lags by 0.5 s
/// let d = estimate_delay(&x, &y, 1.0)?;
/// assert!((d - 0.5).abs() < 0.11);
/// # Ok(())
/// # }
/// ```
pub fn estimate_delay(x: &Signal, y: &Signal, max_delay: f64) -> Result<f64> {
    if x.is_empty() || y.is_empty() {
        return Err(DspError::EmptySignal);
    }
    if (x.sample_rate() - y.sample_rate()).abs() > f64::EPSILON {
        return Err(DspError::LengthMismatch {
            left: x.sample_rate() as usize,
            right: y.sample_rate() as usize,
        });
    }
    // A delay bound beyond the signals themselves carries no information:
    // clamp to the largest searchable lag instead of erroring, so callers
    // may pass a generous physical bound for short clips.
    let hard_cap = x.samples().len().max(y.samples().len()).saturating_sub(2);
    let max_lag = ((max_delay * x.sample_rate()).round().max(0.0) as usize).min(hard_cap);
    let (lag, _) = best_lag(x.samples(), y.samples(), max_lag)?;
    Ok(lag as f64 / x.sample_rate())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xcorr_at_zero_lag_is_pearson() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((normalized_xcorr_at(&x, &y, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn xcorr_small_overlap_is_zero() {
        let x = [1.0, 2.0];
        let y = [1.0, 2.0];
        assert_eq!(normalized_xcorr_at(&x, &y, 1), 0.0);
        assert_eq!(normalized_xcorr_at(&x, &y, 5), 0.0);
    }

    #[test]
    fn best_lag_finds_shift() {
        let x: Vec<f64> = (0..200).map(|i| ((i as f64) * 0.2).sin()).collect();
        let shift = 7usize;
        let y: Vec<f64> = (0..200)
            .map(|i| (((i as f64) - shift as f64) * 0.2).sin())
            .collect();
        let (lag, corr) = best_lag(&x, &y, 20).unwrap();
        assert_eq!(lag, shift as isize);
        assert!(corr > 0.99);
    }

    #[test]
    fn best_lag_negative_shift() {
        let x: Vec<f64> = (0..200).map(|i| ((i as f64) * 0.2).sin()).collect();
        let y: Vec<f64> = (0..200).map(|i| (((i as f64) + 5.0) * 0.2).sin()).collect();
        let (lag, _) = best_lag(&x, &y, 20).unwrap();
        assert_eq!(lag, -5);
    }

    #[test]
    fn estimate_delay_rejects_rate_mismatch() {
        let x = Signal::from_fn(10, 10.0, |t| t).unwrap();
        let y = Signal::from_fn(10, 5.0, |t| t).unwrap();
        assert!(estimate_delay(&x, &y, 1.0).is_err());
    }

    #[test]
    fn empty_inputs_error() {
        assert!(best_lag(&[], &[1.0, 2.0], 3).is_err());
        let x = Signal::new(vec![], 10.0).unwrap();
        let y = Signal::new(vec![1.0], 10.0).unwrap();
        assert!(estimate_delay(&x, &y, 1.0).is_err());
    }

    #[test]
    fn degenerate_inputs_error_typed() {
        assert_eq!(
            best_lag(&[1.0], &[1.0, 2.0], 3),
            Err(DspError::TooShort { len: 1, min: 2 })
        );
        assert_eq!(
            best_lag(&[1.0, f64::NAN], &[1.0, 2.0], 3),
            Err(DspError::NonFiniteSample { index: 1 })
        );
        assert_eq!(
            best_lag(&[1.0, 2.0], &[f64::INFINITY, 2.0], 3),
            Err(DspError::NonFiniteSample { index: 0 })
        );
    }

    #[test]
    fn best_lag_rejects_degenerate_window() {
        // max_lag >= len: every extra lag is unreachable (< 2 overlap).
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let err = best_lag(&x, &x, 10).unwrap_err();
        assert!(
            matches!(
                err,
                DspError::InvalidParameter {
                    name: "max_lag",
                    ..
                }
            ),
            "expected a typed max_lag rejection, got {err:?}"
        );
        // One past the usable bound is already rejected...
        assert!(best_lag(&x, &x, 9).is_err());
        // ...while the largest usable lag (len - 2) still searches. A
        // two-sample overlap of a monotonic ramp is perfectly correlated,
        // so extreme lags legitimately tie the zero-lag peak here — the
        // contract under test is only that the search runs and scores it.
        let (lag, corr) = best_lag(&x, &x, 8).unwrap();
        assert!(lag.unsigned_abs() <= 8);
        assert!((corr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn best_lag_cap_uses_longer_input() {
        // Asymmetric lengths: the cap follows max(x.len(), y.len()) - 2,
        // so a long y keeps large positive lags searchable.
        let x: Vec<f64> = (0..30).map(|i| ((i as f64) * 0.3).sin()).collect();
        let y: Vec<f64> = (0..200)
            .map(|i| (((i as f64) - 25.0) * 0.3).sin())
            .collect();
        let (lag, corr) = best_lag(&x, &y, 40).unwrap();
        assert_eq!(lag, 25);
        assert!(corr > 0.99);
    }

    #[test]
    fn estimate_delay_clamps_generous_bound() {
        // A physical bound far beyond the clip length is clamped, not
        // rejected: short clips may still use a generous search window.
        let x = Signal::from_fn(50, 10.0, |t| (t * 2.0).sin()).unwrap();
        let y = x.shift(0.5);
        let d = estimate_delay(&x, &y, 60.0).unwrap();
        assert!((d - 0.5).abs() < 0.11, "delay {d} not near 0.5");
    }
}
