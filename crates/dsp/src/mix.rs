//! Seeded splitmix hashing: the workspace's one stateless mixer.
//!
//! Several subsystems need a *stateless* seeded decision — a value that is
//! a pure function of stable coordinates rather than a draw from
//! sequential RNG state: chaos fault injection consults the same
//! coordinates from a reference run and a kill/restore run, the probe
//! director derives per-ordinal challenge seeds, and the fleet runtime
//! hash-partitions session keys onto supervisor shards. They all share
//! this splitmix64-finalized mixer so the avalanche behaviour (and its
//! tests) live in exactly one place.
//!
//! The mixer is **not** a substream: `lumen_video::noise::substream`
//! derives whole ChaCha8 streams and is audited through `SUBSTREAMS.md`.
//! Callers that need a *seed* for this mixer from the session seed space
//! (e.g. fleet partitioning) draw it from a registered substream first,
//! keeping the label allocation table the single audit point.

/// Splitmix-style mix of a seed, a domain tag and two coordinates.
///
/// The multipliers are the classic splitmix64 / golden-ratio constants;
/// the three inputs are spread with distinct odd multipliers before the
/// 64-bit finalizer so that (tag, a, b) triples landing on the same XOR
/// are vanishingly unlikely. Deterministic, allocation-free, and stable
/// across the workspace: checked-in experiment outputs depend on it.
#[must_use]
pub fn splitmix(seed: u64, tag: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        ^ tag.wrapping_mul(0xA076_1D64_78BD_642F)
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to the half-open unit interval `[0, 1)`.
///
/// Uses the top 53 bits so the result is an exactly representable dyadic
/// rational — the comparison `unit(h) < p` is then bit-stable across
/// platforms.
#[must_use]
pub fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_pure_function_of_its_coordinates() {
        assert_eq!(splitmix(7, 1, 2, 3), splitmix(7, 1, 2, 3));
        // Every input perturbs the output.
        let base = splitmix(7, 1, 2, 3);
        assert_ne!(splitmix(8, 1, 2, 3), base);
        assert_ne!(splitmix(7, 2, 2, 3), base);
        assert_ne!(splitmix(7, 1, 3, 3), base);
        assert_ne!(splitmix(7, 1, 2, 4), base);
    }

    #[test]
    fn unit_stays_in_the_half_open_interval() {
        for h in [0, 1, u64::MAX, 0x8000_0000_0000_0000] {
            let u = unit(h);
            assert!((0.0..1.0).contains(&u), "unit({h}) = {u}");
        }
        assert_eq!(unit(0), 0.0);
    }

    #[test]
    fn low_bits_avalanche_into_shard_sized_buckets() {
        // Partitioning uses `splitmix(..) % shards`: consecutive keys must
        // not fall into consecutive buckets. Check rough uniformity over 8
        // buckets for 8k consecutive keys.
        let shards = 8u64;
        let mut counts = [0u64; 8];
        for key in 0..8_000u64 {
            counts[(splitmix(42, 9, key, 0) % shards) as usize] += 1;
        }
        for (bucket, &count) in counts.iter().enumerate() {
            assert!(
                (800..1200).contains(&count),
                "bucket {bucket} holds {count} of 8000"
            );
        }
    }
}
