//! Building a custom testbed: configure the screen, room, camera, network
//! and caller behaviour explicitly, check the link quality, and evaluate
//! the defense under *your* conditions — the workflow a deployer would
//! follow before enabling Lumen on a product.
//!
//! ```text
//! cargo run --release --example custom_testbed
//! ```

use lumen::chat::channel::ChannelConfig;
use lumen::chat::scenario::ScenarioBuilder;
use lumen::chat::session::SessionConfig;
use lumen::chat::stats::measure_channel;
use lumen::core::roc::roc_curve;
use lumen::core::{dataset, detector::Detector, Config};
use lumen::video::ambient::AmbientLight;
use lumen::video::camera::Camera;
use lumen::video::content::MeteringScript;
use lumen::video::screen::{PanelKind, Screen};
use lumen::video::synth::SynthConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Describe the physical deployment. -----------------------------
    let screen = Screen::new(32.0, 0.7, 0.7, PanelKind::Oled)?; // big TV, farther away
    let ambient = AmbientLight::new(90.0, 0.003)?; // dim living room
    let camera = Camera::nexus6_front();
    let network = ChannelConfig {
        base_delay: 0.18, // transcontinental call
        jitter: 0.03,
        drop_prob: 0.03,
    };
    println!(
        "screen gain {:.4}, ambient {:.0} lux, camera target {:.0}",
        screen.illuminance_gain(),
        ambient.lux,
        camera.target_level
    );

    // --- 2. Check the link quality first. ---------------------------------
    let probe = MeteringScript::constant(120.0, 30.0)?.sample_signal(10.0)?;
    let stats = measure_channel(&probe, network, 1)?;
    println!(
        "link: loss {:.1}%, delay p50 {:.0} ms / p95 {:.0} ms, holds {:.1}%",
        stats.loss * 100.0,
        stats.p50_delay * 1000.0,
        stats.p95_delay * 1000.0,
        stats.hold_fraction * 100.0,
    );

    // --- 3. Build the scenario and evaluate. -------------------------------
    let chats = ScenarioBuilder::default()
        .with_conditions(SynthConfig {
            screen,
            ambient,
            camera,
        })
        .with_session(SessionConfig {
            forward: network,
            backward: network,
            ..SessionConfig::default()
        });
    let config = Config::default();
    let legit = dataset::legitimate_features(&chats, 3, 30, 10_000, &config)?;
    let attack = dataset::attack_features(&chats, 3, 30, 11_000, &config)?;
    let (train, test) = dataset::split_train_test(&legit, 20, 5);
    let detector = Detector::train(&train, config)?;

    let legit_scores: Vec<f64> = test.iter().map(|f| detector.score(f).unwrap()).collect();
    let attack_scores: Vec<f64> = attack.iter().map(|f| detector.score(f).unwrap()).collect();
    let accepted = legit_scores.iter().filter(|&&s| s <= 3.0).count();
    let rejected = attack_scores.iter().filter(|&&s| s > 3.0).count();
    let roc = roc_curve(&legit_scores, &attack_scores)?;
    println!(
        "on this testbed: TAR {}/{}, TRR {}/{}, AUC {:.3}",
        accepted,
        legit_scores.len(),
        rejected,
        attack_scores.len(),
        roc.auc
    );
    if roc.auc > 0.95 {
        println!("verdict: deployable — scores separate cleanly");
    } else {
        println!("verdict: marginal — consider a brighter/closer screen or more voting rounds");
    }
    Ok(())
}
