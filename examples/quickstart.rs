//! Quickstart: train the Lumen detector on a handful of legitimate clips
//! (no attacker data!) and screen an unknown caller.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lumen::chat::scenario::ScenarioBuilder;
use lumen::core::{detector::Detector, Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simulated video-chat testbed: 27" monitor, normal indoor light,
    // smartphone front camera, residential network.
    let chats = ScenarioBuilder::default();

    // Training phase: 20 clips of *legitimate* chats. The paper's key
    // deployment property is that this data can even come from different
    // people than the one being protected.
    println!("collecting 20 legitimate training clips...");
    let training: Vec<_> = (0..20)
        .map(|i| chats.legitimate(0, 1_000 + i))
        .collect::<Result<_, _>>()?;
    let detector = Detector::train_from_traces(&training, Config::default())?;
    println!("detector trained (LOF, k = 5, τ = 3)\n");

    // Detection phase: an unknown caller connects.
    let honest = chats.legitimate(0, 42)?;
    let verdict = detector.detect(&honest)?;
    println!(
        "live face        → z = {:?}  LOF = {:5.2}  {}",
        round4(verdict.features.as_array()),
        verdict.score,
        if verdict.accepted { "ACCEPT" } else { "REJECT" }
    );

    let fake = chats.reenactment(0, 42)?;
    let verdict = detector.detect(&fake)?;
    println!(
        "reenactment fake → z = {:?}  LOF = {:5.2}  {}",
        round4(verdict.features.as_array()),
        verdict.score,
        if verdict.accepted { "ACCEPT" } else { "REJECT" }
    );
    Ok(())
}

fn round4(z: [f64; 4]) -> [f64; 4] {
    z.map(|v| (v * 100.0).round() / 100.0)
}
