//! A longer "online meeting" with periodic liveness checks: the detector is
//! triggered once per 15-second clip and the verdicts are fused by the
//! paper's majority-voting rule (reject when rejections exceed 0.7·D).
//!
//! ```text
//! cargo run --example live_session_voting
//! ```

use lumen::chat::scenario::ScenarioBuilder;
use lumen::core::voting::VotingDetector;
use lumen::core::{detector::Detector, Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chats = ScenarioBuilder::default();
    let config = Config::default();

    let training: Vec<_> = (0..20)
        .map(|i| chats.legitimate(4, 3_000 + i))
        .collect::<Result<_, _>>()?;
    let detector = Detector::train_from_traces(&training, config)?;
    let rounds = 5;
    let voting = VotingDetector::new(detector, rounds)?;

    // Scenario A: a genuine colleague on a 75-second call (5 clips).
    let clips: Vec<_> = (0..rounds as u64)
        .map(|i| chats.legitimate(4, 4_000 + i))
        .collect::<Result<_, _>>()?;
    let verdict = voting.detect(&clips)?;
    report("genuine colleague", &verdict);

    // Scenario B: an impostor running face reenactment the whole call.
    let clips: Vec<_> = (0..rounds as u64)
        .map(|i| chats.reenactment(4, 4_000 + i))
        .collect::<Result<_, _>>()?;
    let verdict = voting.detect(&clips)?;
    report("reenactment impostor", &verdict);

    Ok(())
}

fn report(who: &str, verdict: &lumen::core::voting::Verdict) {
    let marks: String = verdict
        .rounds
        .iter()
        .map(|d| if d.accepted { '+' } else { 'x' })
        .collect();
    println!(
        "{who:<22} rounds [{marks}]  rejection votes {}/{}  → {}",
        verdict.rejection_votes,
        verdict.rounds.len(),
        if verdict.accepted {
            "call continues"
        } else {
            "ALERT: fake facial video suspected"
        }
    );
}
