//! A streaming liveness monitor: luminance samples arrive one tick at a
//! time (as they would from a real chat client), the detector fires at
//! every completed 15-second clip, fuses the last D verdicts, and explains
//! any alert in terms of the deviating feature.
//!
//! Timeline simulated here: three genuine clips, then the stream is
//! hijacked by a reenactment attacker mid-call.
//!
//! ```text
//! cargo run --release --example streaming_monitor
//! ```

use lumen::chat::scenario::ScenarioBuilder;
use lumen::core::quality::QualityGate;
use lumen::core::stream::{SessionStatus, StreamingDetector};
use lumen::core::{detector::Detector, Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chats = ScenarioBuilder::default();
    let training: Vec<_> = (0..20)
        .map(|i| chats.legitimate(7, 6_000 + i))
        .collect::<Result<_, _>>()?;
    let detector = Detector::train_from_traces(&training, Config::default())?;
    let explainer = detector.clone();
    let mut monitor =
        StreamingDetector::new(detector, 15.0, 3)?.with_quality_gate(QualityGate::default());

    // Clip sources: 3 genuine, then 3 attacker clips (stream hijack).
    let mut clips = Vec::new();
    for i in 0..3u64 {
        clips.push(("genuine", chats.legitimate(7, 7_000 + i)?));
    }
    for i in 0..3u64 {
        clips.push(("HIJACKED", chats.reenactment(7, 7_100 + i)?));
    }

    println!(
        "{:<10} {:>6} {:>8}  {:<10} explanation",
        "source", "clip", "LOF", "status"
    );
    println!("{}", "-".repeat(70));
    for (label, pair) in &clips {
        for (tx, rx) in pair.tx.samples().iter().zip(pair.rx.samples()) {
            if let Some(verdict) = monitor.push(*tx, *rx)? {
                let status = match verdict.status {
                    SessionStatus::Gathering => "gathering",
                    SessionStatus::Trusted => "trusted",
                    SessionStatus::Alert => "ALERT",
                };
                match verdict.detection() {
                    Some(detection) => {
                        let explanation = explainer.explain(&detection.features)?;
                        let note = if detection.accepted {
                            String::from("-")
                        } else {
                            format!("most deviant: {}", explanation.dominant_name())
                        };
                        println!(
                            "{label:<10} {:>6} {:>8.2}  {status:<10} {note}",
                            verdict.clip_index, detection.score,
                        );
                    }
                    None => println!(
                        "{label:<10} {:>6} {:>8}  {status:<10} inconclusive (degraded clip)",
                        verdict.clip_index, "-",
                    ),
                }
            }
        }
    }
    println!(
        "\nfinal status: {:?} after {} clips",
        monitor.status(),
        monitor.clips_done()
    );
    Ok(())
}
