//! The frame-level pipeline, end to end on pixels: render synthetic face
//! frames whose skin level follows the screen reflection, run the landmark
//! detector (no ground-truth peeking), extract the nasal-bridge ROI
//! luminance (Fig. 5's square of side |b1−b2|), and watch it track the
//! screen — the Fig. 3 feasibility study as a program.
//!
//! ```text
//! cargo run --example frame_pipeline
//! ```

use lumen::core::extract::received_roi_luminance;
use lumen::face::detect::detect_landmarks;
use lumen::face::geometry::FaceGeometry;
use lumen::face::render::FaceRenderer;
use lumen::face::tracker::LandmarkTracker;
use lumen::video::content::MeteringScript;
use lumen::video::profile::UserProfile;
use lumen::video::synth::{ReflectionSynth, SynthConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The screen flashes black/white at 0.2 Hz (the paper's stimulus).
    let script = MeteringScript::square_wave(0.0, 255.0, 0.2, 10.0)?;
    let tx = script.sample_signal(10.0)?;

    // The optics chain gives the ROI luminance a live face would show.
    let synth = ReflectionSynth::new(SynthConfig::default());
    let quiet = UserProfile::new(0, "demo", 0.9, 0.2, 1.0, 0.0, 0.0, 0.1)?;
    let roi_truth = synth.synthesize(&tx, &quiet, 1)?;

    // Render an actual face frame per sample at that luminance, with the
    // head drifting slowly, then recover the trace from pixels alone.
    let renderer = FaceRenderer::default();
    let base = FaceGeometry::centered(160, 120);
    let frames: Vec<_> = roi_truth
        .samples()
        .iter()
        .enumerate()
        .map(|(i, &level)| {
            let geom = base.moved((i as f64 * 0.15).sin() * 6.0, (i as f64 * 0.1).cos() * 4.0);
            renderer.render(&geom, (level / renderer.ridge_gain).clamp(0.0, 255.0))
        })
        .collect::<Result<_, _>>()?;

    let mut tracker = LandmarkTracker::new(0.7);
    let recovered = received_roi_luminance(&frames, 10.0, &mut tracker)?;

    // Compare: the pixel path must reproduce the optical trace.
    println!(
        "{:>5} {:>10} {:>12} {:>8}",
        "t", "optical", "from pixels", "screen"
    );
    for i in (0..recovered.len()).step_by(5) {
        println!(
            "{:>4.1}s {:>10.1} {:>12.1} {:>8.0}",
            recovered.time_at(i),
            roi_truth.samples()[i],
            recovered.samples()[i],
            tx.samples()[i],
        );
    }

    let landmarks = detect_landmarks(&frames[0]).expect("face visible");
    println!(
        "\nlandmarks: lower bridge ({:.0}, {:.0}), tip ({:.0}, {:.0}), ROI side {:.1}px",
        landmarks.lower_bridge().x,
        landmarks.lower_bridge().y,
        landmarks.tip_center().x,
        landmarks.tip_center().y,
        landmarks.roi_side(),
    );
    Ok(())
}
