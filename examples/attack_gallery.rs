//! Attack gallery: screen every attacker model the paper discusses —
//! face reenactment (ICFace-style), the adaptive luminance forger at
//! several processing delays, and classic media replay — against one
//! trained detector.
//!
//! ```text
//! cargo run --example attack_gallery
//! ```

use lumen::chat::scenario::ScenarioBuilder;
use lumen::core::{detector::Detector, Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chats = ScenarioBuilder::default();
    let victim = 2; // volunteer "user-3" is being impersonated

    let training: Vec<_> = (0..20)
        .map(|i| chats.legitimate(victim, 2_000 + i))
        .collect::<Result<_, _>>()?;
    let detector = Detector::train_from_traces(&training, Config::default())?;

    println!("{:<28} {:>8} {:>8}", "caller", "LOF", "verdict");
    println!("{}", "-".repeat(46));

    let show = |label: &str, pair| -> Result<(), Box<dyn std::error::Error>> {
        let d = detector.detect(&pair)?;
        println!(
            "{label:<28} {:>8.2} {:>8}",
            d.score,
            if d.accepted { "accept" } else { "REJECT" }
        );
        Ok(())
    };

    show("live face (genuine)", chats.legitimate(victim, 77)?)?;
    show("reenactment (ICFace-style)", chats.reenactment(victim, 77)?)?;
    for delay in [0.0, 0.5, 1.0, 1.5, 2.0] {
        show(
            &format!("adaptive forger, +{delay:.1}s"),
            chats.adaptive(victim, delay, 77)?,
        )?;
    }
    show("media replay", chats.replay(victim, 77)?)?;

    println!(
        "\nNote: a *perfect* instant forgery (delay 0.0) passes by design —\n\
         the paper's Sec. VIII-J argument is that real pipelines cannot\n\
         reconstruct the reflection in under ~1.3 s, where rejection is ~certain."
    );
    Ok(())
}
