//! Threshold tuning: sweep the LOF decision threshold τ on a small local
//! dataset and locate the equal-error operating point — the workflow behind
//! Fig. 12 of the paper, runnable on your own scenario configuration.
//!
//! ```text
//! cargo run --release --example threshold_tuning
//! ```

use lumen::chat::scenario::ScenarioBuilder;
use lumen::core::dataset::{attack_features, legitimate_features, split_train_test};
use lumen::core::detector::Detector;
use lumen::core::metrics::{equal_error_rate, SweepPoint};
use lumen::core::Config;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chats = ScenarioBuilder::default();
    let config = Config::default();

    // Data: 30 legitimate + 30 attack clips of one user.
    let legit = legitimate_features(&chats, 1, 30, 5_000, &config)?;
    let attack = attack_features(&chats, 1, 30, 6_000, &config)?;
    let (train, test) = split_train_test(&legit, 20, 7);
    let detector = Detector::train(&train, config)?;

    // LOF scores are threshold-free; score once, sweep after.
    let legit_scores: Vec<f64> = test.iter().map(|f| detector.score(f).unwrap()).collect();
    let attack_scores: Vec<f64> = attack.iter().map(|f| detector.score(f).unwrap()).collect();

    println!("{:>5} {:>8} {:>8}", "τ", "FAR", "FRR");
    let mut sweep = Vec::new();
    let mut tau = 1.5;
    while tau <= 4.0 + 1e-9 {
        let frr =
            legit_scores.iter().filter(|&&s| s > tau).count() as f64 / legit_scores.len() as f64;
        let far =
            attack_scores.iter().filter(|&&s| s <= tau).count() as f64 / attack_scores.len() as f64;
        println!("{tau:>5.2} {:>7.1}% {:>7.1}%", 100.0 * far, 100.0 * frr);
        sweep.push(SweepPoint {
            threshold: tau,
            far,
            frr,
        });
        tau += 0.25;
    }
    if let Some(eer) = equal_error_rate(&sweep) {
        println!("\nequal error rate ≈ {:.1}%", 100.0 * eer);
    }
    Ok(())
}
