//! Calibration-band tests: reduced-size versions of every paper experiment
//! must stay inside the qualitative bands of DESIGN.md §6. These are the
//! repository's regression net for the *shape* of the reproduction.

use lumen::experiments::{
    ambient, feasibility, forgery_delay, overall, sampling_rate, screen_size, threshold_sweep,
    training_size, voting as voting_exp,
};

#[test]
fn fig11_band_overall_accuracy() {
    let r = overall::run(overall::OverallOpts {
        users: 4,
        clips: 20,
        rounds: 6,
        train_count: 12,
    })
    .unwrap();
    assert!(r.mean_tar_own > 0.82, "TAR(own) {}", r.mean_tar_own);
    assert!(
        r.mean_tar_others > 0.75,
        "TAR(others) {}",
        r.mean_tar_others
    );
    assert!(r.mean_trr > 0.80, "TRR {}", r.mean_trr);
}

#[test]
fn fig12_band_eer_and_crossover() {
    let r = threshold_sweep::run(threshold_sweep::SweepOpts {
        users: 4,
        clips: 20,
        train_count: 12,
        ..threshold_sweep::SweepOpts::default()
    })
    .unwrap();
    let eer = r.eer.expect("FAR/FRR must cross");
    assert!(eer < 0.20, "EER {eer}");
    let tau = r.eer_threshold.unwrap();
    assert!((1.5..=4.0).contains(&tau), "crossover at {tau}");
}

#[test]
fn fig13_band_screen_size_ordering() {
    // 3 users x 14 clips gives TRR a granularity of only ~0.024, which is
    // too coarse for the 0.2-band assertion below; 4 x 20 keeps the test
    // fast while restoring enough statistical resolution.
    let r = screen_size::run(screen_size::ScreenOpts {
        users: 4,
        clips: 20,
        train_count: 12,
    })
    .unwrap();
    let by_label = |label: &str| r.rows.iter().find(|row| row.label.contains(label)).unwrap();
    let big = by_label("27");
    let phone_far = by_label("@40cm");
    // The defense must be usable on the big monitor...
    assert!(
        big.tar > 0.8 && big.trr > 0.75,
        "27\": {} / {}",
        big.tar,
        big.trr
    );
    // ...and broken on the distant phone (reflection too weak).
    assert!(
        phone_far.trr < big.trr - 0.2,
        "far phone TRR {} vs 27\" {}",
        phone_far.trr,
        big.trr
    );
}

#[test]
fn fig14_band_voting_helps_acceptance() {
    let r = voting_exp::run(voting_exp::VotingOpts {
        users: 3,
        clips: 25,
        train_count: 12,
        max_rounds: 5,
        repeats: 5,
    })
    .unwrap();
    let d1 = &r.rows[0];
    let d5 = &r.rows[4];
    assert!(d5.tar >= d1.tar, "voting TAR {} -> {}", d1.tar, d5.tar);
    assert!(
        d5.tar_std <= d1.tar_std + 0.02,
        "voting should not inflate TAR variance"
    );
    // With the 0.7 rule, D=5 needs 4 rejections: TRR recovers vs D=2/3.
    assert!(d5.trr >= r.rows[2].trr - 0.05);
}

#[test]
fn fig15_band_training_size() {
    let r = training_size::run(training_size::TrainingOpts {
        user: 0,
        clips: 30,
        sizes: vec![6, 12, 20],
        repeats: 8,
    })
    .unwrap();
    let small = &r.rows[0];
    let large = &r.rows[2];
    assert!(
        large.trr >= small.trr - 0.03,
        "TRR {} -> {}",
        small.trr,
        large.trr
    );
    assert!(
        large.trr_std <= small.trr_std + 0.02,
        "TRR spread should shrink: {} -> {}",
        small.trr_std,
        large.trr_std
    );
}

#[test]
fn fig16_band_sampling_rate() {
    let r = sampling_rate::run(sampling_rate::RateOpts {
        user: 0,
        clips: 20,
        train_count: 12,
        rates: vec![5.0, 10.0],
    })
    .unwrap();
    let r5 = &r.rows[0];
    let r10 = &r.rows[1];
    // 10 Hz must be comfortably usable; 5 Hz must be clearly degraded on
    // at least one axis (the paper sees TRR collapse to 48 %).
    assert!(
        r10.tar > 0.85 && r10.trr > 0.8,
        "10 Hz: {} / {}",
        r10.tar,
        r10.trr
    );
    assert!(
        r5.tar < r10.tar - 0.08 || r5.trr < r10.trr - 0.08,
        "5 Hz not degraded: {} / {} vs {} / {}",
        r5.tar,
        r5.trr,
        r10.tar,
        r10.trr
    );
}

#[test]
fn ambient_band_bright_light_degrades() {
    let r = ambient::run(ambient::AmbientOpts {
        users: 3,
        clips: 24,
        train_count: 16,
        lux_levels: vec![60.0, 240.0],
    })
    .unwrap();
    let dim = &r.rows[0];
    let bright = &r.rows[1];
    assert!(
        bright.tar <= dim.tar + 0.1 && bright.trr <= dim.trr + 0.12,
        "bright ambient unexpectedly helped: {bright:?} vs {dim:?}"
    );
}

#[test]
fn fig17_band_delay_knee() {
    let r = forgery_delay::run(forgery_delay::DelayOpts {
        victim: 0,
        clips: 20,
        train_clips: 14,
        delays: vec![0.0, 1.3, 2.0],
    })
    .unwrap();
    let instant = r.rows[0].rejection_rate;
    let knee = r.rows[1].rejection_rate;
    let late = r.rows[2].rejection_rate;
    assert!(instant < 0.35, "instant forgery rejected at {instant}");
    assert!(knee >= 0.75, "1.3 s forgery only rejected at {knee}");
    assert!(late >= 0.85, "2.0 s forgery only rejected at {late}");
}

#[test]
fn fig3_band_feasibility_swing() {
    let r = feasibility::run().unwrap();
    assert!((80.0..150.0).contains(&r.dark_level));
    assert!(r.delta() > 12.0 && r.delta() < 60.0);
}
