//! Observability integration: the instrumented pipeline emits exactly one
//! span per stage, span nesting is consistent (children fit inside their
//! parent's duration), and the JSONL event stream is deterministic for a
//! fixed scenario seed.

use lumen::chat::scenario::ScenarioBuilder;
use lumen::chat::trace::TracePair;
use lumen::core::detector::Detector;
use lumen::core::stream::StreamingDetector;
use lumen::core::Config;
use lumen::obs::{stage, Event, EventKind, JsonlSink, Recorder};
use std::sync::Arc;

fn detector() -> Detector {
    let chats = ScenarioBuilder::default();
    let training: Vec<_> = (0..12)
        .map(|i| chats.legitimate(0, 190_000 + i).unwrap())
        .collect();
    Detector::train_from_traces(&training, Config::default()).unwrap()
}

fn clip(seed: u64) -> TracePair {
    ScenarioBuilder::default().legitimate(0, seed).unwrap()
}

/// Feeds one full clip through a streaming detector sample by sample.
fn feed_clip(stream: &mut StreamingDetector, pair: &TracePair) {
    for (tx, rx) in pair.tx.samples().iter().zip(pair.rx.samples()) {
        stream.push(*tx, *rx).unwrap();
    }
}

#[test]
fn one_span_per_pipeline_stage() {
    let (recorder, sink) = Recorder::in_memory();
    let mut stream = StreamingDetector::new(detector().with_recorder(recorder), 15.0, 3).unwrap();
    feed_clip(&mut stream, &clip(191_000));

    let events = sink.events();
    let spans_named = |name: &str, kind: EventKind| {
        events
            .iter()
            .filter(|e| e.kind == kind && e.name == name)
            .count()
    };
    // The whole-clip span plus every stage — including vote fusion, which
    // only the streaming layer emits — appears exactly once per clip.
    assert_eq!(spans_named(stage::DETECT, EventKind::SpanStart), 1);
    assert_eq!(spans_named(stage::DETECT, EventKind::SpanEnd), 1);
    for name in stage::PIPELINE {
        assert_eq!(spans_named(name, EventKind::SpanStart), 1, "start {name}");
        assert_eq!(spans_named(name, EventKind::SpanEnd), 1, "end {name}");
    }
    // The batch stages attribute to the detect span; fusion runs beside it.
    for name in [
        stage::PREPROCESS,
        stage::CHANGE_DETECTION,
        stage::FEATURE_EXTRACTION,
        stage::LOF_SCORING,
    ] {
        let start = events
            .iter()
            .find(|e| e.kind == EventKind::SpanStart && e.name == name)
            .unwrap();
        assert_eq!(start.parent.as_deref(), Some(stage::DETECT));
        assert_eq!(start.depth, 1);
    }
    // One verdict's worth of bookkeeping rode along.
    let counter = |name: &str| {
        events
            .iter()
            .filter(|e| e.kind == EventKind::CounterAdd && e.name == name)
            .map(|e| e.value.unwrap() as u64)
            .sum::<u64>()
    };
    assert_eq!(counter("stream.clips"), 1);
    assert_eq!(
        counter("detector.accepted") + counter("detector.rejected"),
        1
    );
    assert_eq!(
        events
            .iter()
            .filter(|e| e.kind == EventKind::Observe && e.name == "detector.score")
            .count(),
        1
    );
}

#[test]
fn child_span_durations_fit_inside_the_parent() {
    let (recorder, sink) = Recorder::in_memory();
    let det = detector().with_recorder(recorder);
    det.detect(&clip(192_000)).unwrap();

    let events = sink.events();
    let duration = |name: &str| {
        events
            .iter()
            .find(|e| e.kind == EventKind::SpanEnd && e.name == name)
            .and_then(|e| e.duration_ns)
            .unwrap_or_else(|| panic!("no SpanEnd for {name}"))
    };
    let parent = duration(stage::DETECT);
    let children = [
        stage::PREPROCESS,
        stage::CHANGE_DETECTION,
        stage::FEATURE_EXTRACTION,
        stage::LOF_SCORING,
    ];
    for name in children {
        assert!(
            duration(name) <= parent,
            "{name} ({} ns) outlasted its parent ({parent} ns)",
            duration(name)
        );
    }
    // The stages are sequential and disjoint, so even their sum fits.
    let sum: u64 = children.iter().map(|n| duration(n)).sum();
    assert!(sum <= parent, "children sum {sum} ns > parent {parent} ns");
}

#[test]
fn jsonl_stream_is_deterministic_for_a_fixed_seed() {
    let capture = |seed: u64| {
        let sink = Arc::new(JsonlSink::new(Vec::new()));
        let recorder = Recorder::new(sink.clone());
        let mut stream =
            StreamingDetector::new(detector().with_recorder(recorder), 15.0, 3).unwrap();
        feed_clip(&mut stream, &clip(seed));
        feed_clip(&mut stream, &clip(seed + 1));
        sink.contents()
    };
    let parse = |text: String| -> Vec<Event> {
        text.lines()
            .map(|l| serde_json::from_str::<Event>(l).unwrap())
            // Only span durations (wall-clock timings) may differ run to run.
            .map(|e| e.stable())
            .collect()
    };
    let a = parse(capture(193_000));
    let b = parse(capture(193_000));
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must replay the identical event stream");

    let c = parse(capture(194_000));
    assert_ne!(a, c, "different clips should score differently");
}
