//! Determinism regression: the `resilience` experiment must be a pure
//! function of its options. Two runs with identical options must
//! serialize to byte-identical JSON — this is the end-to-end property
//! the `no-wall-clock` and `seeded-rng-only` lint rules guard: a single
//! hidden `Instant::now()` or `thread_rng()` anywhere between scenario
//! synthesis and verdict aggregation breaks it.

use lumen::experiments::resilience::{self, ResilienceOpts};

fn small_opts() -> ResilienceOpts {
    ResilienceOpts {
        users: 1,
        clips: 6,
        train_count: 10,
        burst_losses: vec![0.5],
        freeze_durations: vec![1.0],
        skews: vec![0.04],
    }
}

#[test]
fn resilience_experiment_is_byte_identical_across_runs() {
    let first = resilience::run(small_opts()).expect("first run succeeds");
    let second = resilience::run(small_opts()).expect("second run succeeds");

    let first_json = serde_json::to_string(&first).expect("serializes");
    let second_json = serde_json::to_string(&second).expect("serializes");
    assert_eq!(
        first_json, second_json,
        "resilience experiment output differs between identical runs"
    );

    // The comparison must be over real content, not two empty reports.
    assert!(
        !first.rows.is_empty(),
        "experiment produced no rows; the determinism check is vacuous"
    );
}

#[test]
fn resilience_experiment_depends_on_its_options() {
    // Sanity check on the check itself: different options must change the
    // serialized output, or byte-equality above would prove nothing.
    let base = resilience::run(small_opts()).expect("base run succeeds");
    let shifted = resilience::run(ResilienceOpts {
        skews: vec![0.08],
        ..small_opts()
    })
    .expect("shifted run succeeds");
    let base_json = serde_json::to_string(&base).expect("serializes");
    let shifted_json = serde_json::to_string(&shifted).expect("serializes");
    assert_ne!(
        base_json, shifted_json,
        "changing options did not change the output"
    );
}
