//! Cross-crate integration tests: the full Fig. 4 loop from caller script
//! to detection verdict, spanning every workspace crate.

use lumen::chat::scenario::ScenarioBuilder;
use lumen::core::voting::VotingDetector;
use lumen::core::{detector::Detector, Config};

fn trained_detector(user: usize, seed_base: u64) -> Detector {
    let chats = ScenarioBuilder::default();
    let training: Vec<_> = (0..20)
        .map(|i| chats.legitimate(user, seed_base + i).unwrap())
        .collect();
    Detector::train_from_traces(&training, Config::default()).unwrap()
}

#[test]
fn legitimate_sessions_are_mostly_accepted() {
    let chats = ScenarioBuilder::default();
    let det = trained_detector(0, 50_000);
    let accepted = (0..30u64)
        .filter(|&s| {
            det.detect(&chats.legitimate(0, 51_000 + s).unwrap())
                .unwrap()
                .accepted
        })
        .count();
    assert!(
        accepted >= 25,
        "accepted only {accepted}/30 legitimate clips"
    );
}

#[test]
fn reenactment_attacks_are_mostly_rejected() {
    let chats = ScenarioBuilder::default();
    let det = trained_detector(0, 50_000);
    let rejected = (0..30u64)
        .filter(|&s| {
            !det.detect(&chats.reenactment(0, 52_000 + s).unwrap())
                .unwrap()
                .accepted
        })
        .count();
    assert!(rejected >= 24, "rejected only {rejected}/30 attacks");
}

#[test]
fn replay_attacks_are_mostly_rejected() {
    let chats = ScenarioBuilder::default();
    let det = trained_detector(1, 53_000);
    let rejected = (0..20u64)
        .filter(|&s| {
            !det.detect(&chats.replay(1, 54_000 + s).unwrap())
                .unwrap()
                .accepted
        })
        .count();
    assert!(rejected >= 15, "rejected only {rejected}/20 replays");
}

#[test]
fn cross_user_training_transfers() {
    // Train on volunteer 5, protect volunteer 6 — the paper's
    // no-new-user-enrollment property.
    let chats = ScenarioBuilder::default();
    let det = trained_detector(5, 55_000);
    let accepted = (0..20u64)
        .filter(|&s| {
            det.detect(&chats.legitimate(6, 56_000 + s).unwrap())
                .unwrap()
                .accepted
        })
        .count();
    let rejected = (0..20u64)
        .filter(|&s| {
            !det.detect(&chats.reenactment(6, 57_000 + s).unwrap())
                .unwrap()
                .accepted
        })
        .count();
    assert!(accepted >= 15, "cross-user TAR too low: {accepted}/20");
    assert!(rejected >= 15, "cross-user TRR too low: {rejected}/20");
}

#[test]
fn adaptive_forger_beaten_by_delay() {
    let chats = ScenarioBuilder::default();
    let det = trained_detector(0, 58_000);
    // Instant perfect forgery passes (by design), 2-second-late forgery is
    // caught nearly always.
    let instant_rejected = (0..10u64)
        .filter(|&s| {
            !det.detect(&chats.adaptive(0, 0.0, 59_000 + s).unwrap())
                .unwrap()
                .accepted
        })
        .count();
    let late_rejected = (0..10u64)
        .filter(|&s| {
            !det.detect(&chats.adaptive(0, 2.0, 59_000 + s).unwrap())
                .unwrap()
                .accepted
        })
        .count();
    assert!(
        instant_rejected <= 3,
        "instant forgery rejected {instant_rejected}/10"
    );
    assert!(
        late_rejected >= 8,
        "late forgery rejected only {late_rejected}/10"
    );
}

#[test]
fn voting_suppresses_single_round_errors() {
    let chats = ScenarioBuilder::default();
    let det = trained_detector(3, 60_000);
    let voting = VotingDetector::new(det, 5).unwrap();

    let mut legit_ok = 0;
    let mut attack_caught = 0;
    let groups = 6u64;
    for g in 0..groups {
        let legit: Vec<_> = (0..5)
            .map(|i| chats.legitimate(3, 61_000 + g * 5 + i).unwrap())
            .collect();
        if voting.detect(&legit).unwrap().accepted {
            legit_ok += 1;
        }
        let attacks: Vec<_> = (0..5)
            .map(|i| chats.reenactment(3, 62_000 + g * 5 + i).unwrap())
            .collect();
        if !voting.detect(&attacks).unwrap().accepted {
            attack_caught += 1;
        }
    }
    assert_eq!(
        legit_ok, groups as usize,
        "a genuine 5-round call was flagged"
    );
    // The 0.7·D rule needs >= 4 of 5 rejections — strict by design, so the
    // paper's own Fig. 14 shows D = 5 TRR ≈ 94 %, not 100 %.
    assert!(
        attack_caught >= groups as usize - 2,
        "only {attack_caught}/{groups} attack calls flagged"
    );
}

#[test]
fn detection_is_deterministic_end_to_end() {
    let chats = ScenarioBuilder::default();
    let det = trained_detector(2, 63_000);
    let pair = chats.reenactment(2, 64_000).unwrap();
    let a = det.detect(&pair).unwrap();
    let b = det.detect(&pair).unwrap();
    assert_eq!(a.score, b.score);
    assert_eq!(a.features, b.features);
}
