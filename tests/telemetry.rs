//! Flight-recorder and telemetry integration: a forced breaker trip dumps
//! an ordered, tick-stamped, per-session post-mortem; the dump is
//! byte-identical across identical seeded runs; ring wraparound drops the
//! oldest events with an explicit counter; and the live metrics snapshot
//! accounts for every offered clip.

use lumen::core::detector::Detector;
use lumen::core::quality::QualityGate;
use lumen::core::stream::StreamingDetector;
use lumen::core::Config;
use lumen::obs::{FlightConfig, FlightEvent, PostmortemHeader};
use lumen::serve::{BreakerConfig, BreakerState, ServeConfig, Supervisor};

fn detector() -> Detector {
    let chats = lumen::chat::scenario::ScenarioBuilder::default();
    let training: Vec<_> = (0..12)
        .map(|i| chats.legitimate(0, 810_000 + i).unwrap())
        .collect();
    Detector::train_from_traces(&training, Config::default()).unwrap()
}

fn gated_stream() -> StreamingDetector {
    StreamingDetector::new(detector(), 15.0, 3)
        .unwrap()
        .with_quality_gate(QualityGate::default())
}

fn trip_config() -> ServeConfig {
    ServeConfig {
        breaker: BreakerConfig {
            trip_after: 2,
            open_ticks: 400,
            half_open_probes: 1,
        },
        deadline_ticks: 1_000,
        ..ServeConfig::default()
    }
}

/// Drives one session of flatline clips until its breaker trips, then one
/// more clip that is shed while the breaker is open. Returns the
/// supervisor with the flight recorder attached.
fn tripped_supervisor(flight: FlightConfig) -> (Supervisor, u64) {
    let mut sup = Supervisor::new(trip_config()).unwrap().with_flight(flight);
    let id = sup.admit(gated_stream()).session().unwrap();
    // Six flatline clips: the quality gate abstains on each, the stream
    // watchdog re-triggers twice, and the second re-trigger trips the
    // breaker (same recipe as the serve crate's breaker test).
    for _ in 0..6 * 150 {
        sup.offer(id, 100.0, 42.0).unwrap();
        sup.tick();
    }
    while sup.pending_clips() > 0 {
        sup.tick();
    }
    assert!(matches!(
        sup.breaker_state(id).unwrap(),
        BreakerState::Open { .. }
    ));
    // One more clip completes while open and is shed without detection.
    for _ in 0..150 {
        sup.offer(id, 100.0, 42.0).unwrap();
        sup.tick();
    }
    sup.tick(); // flush the tombstone
    (sup, id)
}

fn parse_jsonl(dump: &str) -> (PostmortemHeader, Vec<FlightEvent>) {
    let mut lines = dump.lines();
    let header: PostmortemHeader =
        serde_json::from_str(lines.next().expect("header line")).unwrap();
    let events: Vec<FlightEvent> = lines.map(|l| serde_json::from_str(l).unwrap()).collect();
    (header, events)
}

#[test]
fn breaker_trip_dumps_an_ordered_tick_stamped_postmortem() {
    let (sup, id) = tripped_supervisor(FlightConfig::default());

    // The anomaly sequence froze post-mortems: watchdog re-triggers first,
    // then the breaker trip itself.
    let sink = sup.flight_sink().expect("flight recorder attached");
    let reasons: Vec<String> = sink
        .postmortems()
        .iter()
        .map(|p| p.reason.clone())
        .collect();
    assert!(
        reasons.contains(&"watchdog_retrigger".to_string()),
        "{reasons:?}"
    );
    assert_eq!(reasons.last().map(String::as_str), Some("breaker_tripped"));

    let dump = sup.dump_flight_record().expect("post-mortem dumped");
    let (header, events) = parse_jsonl(&dump);
    assert_eq!(header.reason, "breaker_tripped");
    assert_eq!(header.event_count, events.len() as u64);
    assert!(!events.is_empty());

    // Tick-stamped and strictly ordered: sequence numbers increase, ticks
    // never go backwards, and no wall-clock field appears anywhere.
    assert!(!dump.contains("duration"), "post-mortems are tick-only");
    assert!(
        events.windows(2).all(|w| w[0].seq < w[1].seq),
        "seq strictly increases"
    );
    assert!(
        events.windows(2).all(|w| w[0].tick <= w[1].tick),
        "ticks never rewind"
    );

    // The session's own story is reconstructible: its events carry the
    // session tag, include the offered clips and the breaker mark, and end
    // with the trigger annotation itself.
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.session == Some(id))
        .map(|e| e.name.as_str())
        .collect();
    assert!(!names.is_empty());
    assert!(names.contains(&"serve.offered"));
    assert!(names.contains(&"serve.breaker"));
    let last = events.last().unwrap();
    assert_eq!(last.name, "flight.trigger");
    assert_eq!(last.detail.as_deref(), Some("breaker_tripped"));
    assert_eq!(last.session, Some(id));
}

#[test]
fn flight_dump_is_byte_identical_across_identical_runs() {
    let (a, _) = tripped_supervisor(FlightConfig::default());
    let (b, _) = tripped_supervisor(FlightConfig::default());
    let dump_a = a.dump_flight_record().unwrap();
    let dump_b = b.dump_flight_record().unwrap();
    assert_eq!(dump_a, dump_b, "same seed, same bytes");
}

#[test]
fn ring_wraparound_drops_oldest_with_an_explicit_counter() {
    let tiny = FlightConfig {
        capacity: 64,
        max_postmortems: 2,
    };
    let (sup, _) = tripped_supervisor(tiny);
    let dump = sup.dump_flight_record().unwrap();
    let (header, events) = parse_jsonl(&dump);
    assert_eq!(events.len(), 64, "ring bounded at capacity");
    assert!(
        header.dropped_events > 0,
        "evictions are counted, never silent"
    );
    // The retained window is the *newest* events: contiguous sequence
    // numbers ending at the most recent emission.
    assert!(events.windows(2).all(|w| w[1].seq == w[0].seq + 1));
    assert!(sup.flight_sink().unwrap().dropped_events() >= header.dropped_events);
}

#[test]
fn metrics_snapshot_accounts_for_every_offered_clip() {
    let (sup, _) = tripped_supervisor(FlightConfig::default());
    let snap = sup.metrics_snapshot().expect("snapshot available");
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    let offered = counter("serve.offered");
    let served = counter("serve.served");
    let shed = counter("serve.shed");
    assert_eq!(offered, 7, "six trip clips plus one shed while open");
    assert_eq!(served + shed, offered, "no clip vanishes unaccounted");
    // Per-cause shed counters apportion the total exactly.
    let by_cause: u64 = [
        "serve.shed.queue_full",
        "serve.shed.deadline",
        "serve.shed.breaker_open",
        "serve.shed.detection_failed",
        "serve.shed.session_closed",
        "serve.shed.capacity",
    ]
    .iter()
    .map(|n| counter(n))
    .sum();
    assert_eq!(by_cause, shed);
    assert!(counter("serve.shed.breaker_open") >= 1);
    // The queue-depth gauge reports the drained queue.
    let depth = snap
        .gauges
        .iter()
        .find(|g| g.name == "serve.queue_depth")
        .expect("queue depth gauge");
    assert!(depth.value.abs() < f64::EPSILON, "queues fully drained");
}
