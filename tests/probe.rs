//! Active-probe contract tests at the workspace surface: the challenge
//! and the verdict must be reproducible byte-for-byte from the seed (a
//! checkpointed prober must re-derive exactly what it shipped), and a
//! probe on a badly damaged link must abstain — a lossy network is not
//! evidence of forgery.

use lumen::chat::fault::{BurstLoss, FaultPlan};
use lumen::chat::scenario::ScenarioBuilder;
use lumen::chat::session::SessionConfig;
use lumen::probe::{
    ChallengeSchedule, ProbeConfig, ProbeDecision, ProbeInjector, ProbeVerifier, VerifierConfig,
};

fn probed_scenario(injector: &ProbeInjector, faults: FaultPlan) -> ScenarioBuilder {
    injector.armed_scenario(
        ScenarioBuilder::default()
            .with_session(ProbeConfig::default().session_config(1.5, &SessionConfig::default()))
            .with_static_caller(120.0)
            .with_faults(faults),
    )
}

#[test]
fn same_seed_yields_byte_identical_schedule_and_verdict() {
    let config = ProbeConfig::default();
    let verifier = ProbeVerifier::new(VerifierConfig::default()).expect("valid verifier config");
    let mut runs = Vec::new();
    for _ in 0..2 {
        let schedule = ChallengeSchedule::generate(&config, 4_242).expect("schedule generates");
        let schedule_json = serde_json::to_string(&schedule).expect("schedule serializes");
        let injector = ProbeInjector::new(schedule.clone());
        let pair = probed_scenario(&injector, FaultPlan::none())
            .legitimate(0, 84_000)
            .expect("probed trace");
        let verdict = verifier
            .verify(&schedule, &pair)
            .expect("verification runs");
        let verdict_json = serde_json::to_string(&verdict).expect("verdict serializes");
        runs.push((schedule_json, verdict_json, verdict.decision));
    }
    assert_eq!(
        runs[0].0, runs[1].0,
        "identical seeds must produce byte-identical schedules"
    );
    assert_eq!(
        runs[0].1, runs[1].1,
        "identical inputs must produce byte-identical verdicts"
    );
    assert_eq!(runs[0].2, ProbeDecision::Pass, "the live round must pass");

    // A different seed is a different secret: the schedule must change.
    let other = ChallengeSchedule::generate(&config, 4_243).expect("schedule generates");
    assert_ne!(
        serde_json::to_string(&other).expect("schedule serializes"),
        runs[0].0,
        "distinct seeds must produce distinct challenges"
    );
}

#[test]
fn heavy_burst_loss_abstains_rather_than_false_rejecting() {
    // A Gilbert–Elliott channel dropping ~95% of frames in its bad state
    // holds well above 30% overall loss across these draws.
    let faults = FaultPlan {
        burst: BurstLoss::bursty(0.1, 6.0, 0.95),
        ..FaultPlan::none()
    };
    let config = ProbeConfig::default();
    let verifier = ProbeVerifier::new(VerifierConfig::default()).expect("valid verifier config");
    let mut abstained = 0usize;
    for seed in 0..6u64 {
        let schedule =
            ChallengeSchedule::generate(&config, 4_300 + seed).expect("schedule generates");
        let injector = ProbeInjector::new(schedule.clone());
        let pair = probed_scenario(&injector, faults)
            .legitimate(0, 85_000 + seed)
            .expect("probed trace");
        let verdict = verifier
            .verify(&schedule, &pair)
            .expect("verification runs");
        assert_ne!(
            verdict.decision,
            ProbeDecision::Fail,
            "a damaged link must never read as forgery (seed {seed}): {verdict:?}"
        );
        if verdict.decision == ProbeDecision::Abstain {
            assert!(verdict.abstain_reason.is_some());
            abstained += 1;
        }
    }
    assert!(
        abstained > 0,
        "the burst plan never triggered an abstention; the check is vacuous"
    );
}
