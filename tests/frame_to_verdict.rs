//! Full-stack integration: pixels to verdict.
//!
//! The other integration tests drive the detector from luminance traces.
//! This one walks the *entire* Sec. IV path: animated face frames are
//! rendered per tick, the landmark detector finds the nasal bridge with no
//! ground-truth access, the ROI luminance is extracted from pixels, and the
//! resulting trace — paired with the transmitted trace — feeds the trained
//! detector.

use lumen::chat::scenario::ScenarioBuilder;
use lumen::chat::trace::{ScenarioKind, TracePair};
use lumen::core::detector::Detector;
use lumen::core::extract::received_roi_luminance;
use lumen::core::Config;
use lumen::face::render::FaceRenderer;
use lumen::face::sequence::{render_clip, AnimationConfig};
use lumen::face::tracker::LandmarkTracker;
use lumen::video::content::MeteringScript;
use lumen::video::profile::UserProfile;
use lumen::video::synth::{ReflectionSynth, SynthConfig};

/// Renders a face clip whose skin level follows `roi_truth`, then recovers
/// the ROI trace from the pixels alone.
fn pixels_roundtrip(roi_truth: &lumen::dsp::Signal, seed: u64) -> lumen::dsp::Signal {
    let renderer = FaceRenderer::default();
    // The ROI sits on the specular ridge: invert the ridge gain so the ROI
    // reading lands on the truth level.
    let skin_levels: Vec<f64> = roi_truth
        .samples()
        .iter()
        .map(|&l| (l / renderer.ridge_gain).clamp(0.0, 208.0))
        .collect();
    let frames = render_clip(
        &renderer,
        &skin_levels,
        roi_truth.sample_rate(),
        &AnimationConfig {
            head_motion_px: 3.0,
            blink_rate: 0.2,
            blink_duration: 0.25,
            talking: true,
        },
        seed,
    )
    .expect("clip renders");
    let mut tracker = LandmarkTracker::new(0.7);
    received_roi_luminance(&frames, roi_truth.sample_rate(), &mut tracker)
        .expect("ROI extraction succeeds")
}

fn detector() -> Detector {
    let chats = ScenarioBuilder::default();
    let training: Vec<_> = (0..15)
        .map(|i| chats.legitimate(0, 150_000 + i).unwrap())
        .collect();
    Detector::train_from_traces(&training, Config::default()).unwrap()
}

#[test]
fn pixel_trace_tracks_optical_truth() {
    let tx = MeteringScript::random_with_seed(61, 15.0)
        .unwrap()
        .sample_signal(10.0)
        .unwrap();
    let truth = ReflectionSynth::new(SynthConfig::default())
        .synthesize(&tx, &UserProfile::preset(0), 61)
        .unwrap();
    let recovered = pixels_roundtrip(&truth, 61);
    // The pixel path reproduces the optical trace's *changes*: high
    // correlation even though absolute levels shift with rendering.
    let corr = lumen::dsp::stats::pearson(truth.samples(), recovered.samples()).unwrap();
    assert!(corr > 0.85, "pixel-path correlation {corr}");
}

#[test]
fn genuine_frames_accepted_fake_frames_rejected() {
    let det = detector();
    let mut genuine_ok = 0;
    let mut fake_caught = 0;
    let trials = 6u64;
    for s in 0..trials {
        // Genuine: face lit by the live screen.
        let tx = MeteringScript::random_with_seed(160_000 + s, 15.0)
            .unwrap()
            .sample_signal(10.0)
            .unwrap();
        let truth = ReflectionSynth::new(SynthConfig::default())
            .synthesize(&tx, &UserProfile::preset(0), 160_000 + s)
            .unwrap();
        let rx = pixels_roundtrip(&truth, 160_000 + s);
        let pair = TracePair {
            tx: tx.clone(),
            rx,
            kind: ScenarioKind::Legitimate { user: 0 },
            seed: s,
            forward_delay: 0.0,
            backward_delay: 0.0,
        };
        if det.detect(&pair).unwrap().accepted {
            genuine_ok += 1;
        }

        // Fake: face frames driven by an *independent* pre-recorded trace.
        let other_tx = MeteringScript::random_with_seed(170_000 + s, 15.0)
            .unwrap()
            .sample_signal(10.0)
            .unwrap();
        let fake_truth = ReflectionSynth::new(SynthConfig::default())
            .synthesize(&other_tx, &UserProfile::preset(0), 170_000 + s)
            .unwrap();
        let fake_rx = pixels_roundtrip(&fake_truth, 170_000 + s);
        let fake_pair = TracePair {
            tx,
            rx: fake_rx,
            kind: ScenarioKind::Reenactment { victim: 0 },
            seed: s,
            forward_delay: 0.0,
            backward_delay: 0.0,
        };
        if !det.detect(&fake_pair).unwrap().accepted {
            fake_caught += 1;
        }
    }
    assert!(
        genuine_ok >= trials as usize - 1,
        "genuine pixel clips accepted {genuine_ok}/{trials}"
    );
    assert!(
        fake_caught >= trials as usize - 1,
        "fake pixel clips caught {fake_caught}/{trials}"
    );
}
