//! Failure-injection tests: degenerate and hostile inputs must produce
//! errors or graceful decisions — never panics.

use lumen::chat::channel::ChannelConfig;
use lumen::chat::scenario::ScenarioBuilder;
use lumen::chat::session::SessionConfig;
use lumen::chat::trace::{ScenarioKind, TracePair};
use lumen::core::{detector::Detector, Config};
use lumen::dsp::Signal;
use lumen::video::ambient::AmbientLight;
use lumen::video::content::MeteringScript;
use lumen::video::profile::UserProfile;
use lumen::video::screen::Screen;
use lumen::video::synth::SynthConfig;

fn detector() -> Detector {
    let chats = ScenarioBuilder::default();
    let training: Vec<_> = (0..12)
        .map(|i| chats.legitimate(0, 70_000 + i).unwrap())
        .collect();
    Detector::train_from_traces(&training, Config::default()).unwrap()
}

fn pair_from(tx: Signal, rx: Signal) -> TracePair {
    TracePair {
        tx,
        rx,
        kind: ScenarioKind::Legitimate { user: 0 },
        seed: 0,
        forward_delay: 0.12,
        backward_delay: 0.12,
    }
}

#[test]
fn flat_traces_do_not_panic() {
    let det = detector();
    let flat = MeteringScript::constant(120.0, 15.0)
        .unwrap()
        .sample_signal(10.0)
        .unwrap();
    let pair = pair_from(flat.clone(), flat);
    // A changeless clip carries no evidence; any decision is fine, a panic
    // is not.
    let _ = det.detect(&pair).unwrap();
}

#[test]
fn saturated_sensor_does_not_panic() {
    let det = detector();
    let tx = MeteringScript::random_with_seed(1, 15.0)
        .unwrap()
        .sample_signal(10.0)
        .unwrap();
    let saturated = Signal::new(vec![255.0; 150], 10.0).unwrap();
    let d = det.detect(&pair_from(tx, saturated)).unwrap();
    // A pegged-white camera cannot show reflection changes: reject.
    assert!(!d.accepted, "saturated feed accepted");
}

#[test]
fn dead_camera_is_rejected() {
    let det = detector();
    let tx = MeteringScript::random_with_seed(2, 15.0)
        .unwrap()
        .sample_signal(10.0)
        .unwrap();
    let dead = Signal::new(vec![0.0; 150], 10.0).unwrap();
    let d = det.detect(&pair_from(tx, dead)).unwrap();
    assert!(!d.accepted, "black feed accepted");
}

#[test]
fn short_clip_does_not_panic() {
    let det = detector();
    let tx = MeteringScript::random_with_seed(3, 3.0)
        .unwrap()
        .sample_signal(10.0)
        .unwrap();
    let rx = tx.clone();
    let _ = det.detect(&pair_from(tx, rx)).unwrap();
}

#[test]
fn empty_signal_is_an_error_not_a_panic() {
    let det = detector();
    let empty = Signal::new(vec![], 10.0).unwrap();
    let pair = pair_from(empty.clone(), empty);
    assert!(det.detect(&pair).is_err());
}

#[test]
fn extreme_network_conditions_complete() {
    let brutal = SessionConfig {
        forward: ChannelConfig {
            base_delay: 0.8,
            jitter: 0.2,
            drop_prob: 0.5,
        },
        backward: ChannelConfig {
            base_delay: 0.8,
            jitter: 0.2,
            drop_prob: 0.5,
        },
        ..SessionConfig::default()
    };
    let chats = ScenarioBuilder::default().with_session(brutal);
    // Half the frames lost, huge delay: sessions still complete and the
    // detector still yields a decision.
    let det = detector();
    for seed in 0..5 {
        let pair = chats.legitimate(0, 71_000 + seed).unwrap();
        let _ = det.detect(&pair).unwrap();
    }
}

#[test]
fn pitch_black_room_completes() {
    let dark = SynthConfig {
        ambient: AmbientLight::new(0.0, 0.0).unwrap(),
        ..SynthConfig::default()
    };
    let chats = ScenarioBuilder::default().with_conditions(dark);
    let det = detector();
    let pair = chats.legitimate(0, 72_000).unwrap();
    let _ = det.detect(&pair).unwrap();
}

#[test]
fn tiny_distant_screen_completes() {
    let hopeless = SynthConfig {
        screen: Screen::new(4.0, 0.2, 2.0, lumen::video::screen::PanelKind::Oled).unwrap(),
        ..SynthConfig::default()
    };
    let chats = ScenarioBuilder::default().with_conditions(hopeless);
    let det = detector();
    let pair = chats.legitimate(0, 73_000).unwrap();
    // No usable reflection: the system must answer (probably reject), not
    // crash.
    let _ = det.detect(&pair).unwrap();
}

#[test]
fn training_on_garbage_is_rejected_cleanly() {
    // Fewer instances than k+1 must error, not panic.
    let chats = ScenarioBuilder::default();
    let tiny: Vec<_> = (0..3)
        .map(|i| chats.legitimate(0, 74_000 + i).unwrap())
        .collect();
    assert!(Detector::train_from_traces(&tiny, Config::default()).is_err());
}

#[test]
fn hostile_profile_extremes_complete() {
    // The most jittery possible volunteer still yields decisions.
    let profile = UserProfile::new(99, "chaos", 1.0, 8.0, 0.2, 1.0, 12.0, 4.0).unwrap();
    let synth = lumen::video::synth::ReflectionSynth::new(SynthConfig::default());
    let tx = MeteringScript::random_with_seed(9, 15.0)
        .unwrap()
        .sample_signal(10.0)
        .unwrap();
    let rx = synth.synthesize(&tx, &profile, 9).unwrap();
    let det = detector();
    let _ = det.detect(&pair_from(tx, rx)).unwrap();
}
