//! Property tests for the sharded fleet runtime: composable snapshot
//! restore is byte-identical for never-quarantined sessions regardless
//! of shard count, and the work-stealing conservation ledger holds on
//! every tick under seeded hot-shard skew.

use lumen::chat::scenario::ScenarioBuilder;
use lumen::chat::trace::TracePair;
use lumen::core::detector::Detector;
use lumen::core::stream::{ClipVerdict, StreamingDetector};
use lumen::core::Config;
use lumen::fleet::{AdmissionConfig, Fleet, FleetConfig, FleetEvent, FleetSnapshot};
use lumen::obs::Recorder;
use lumen::serve::{ServeConfig, SessionEventKind};
use proptest::prelude::*;
use std::sync::OnceLock;

fn detector() -> &'static Detector {
    static DET: OnceLock<Detector> = OnceLock::new();
    DET.get_or_init(|| {
        let chats = ScenarioBuilder::default();
        let training: Vec<_> = (0..12)
            .map(|i| chats.legitimate(0, 70_000 + i).expect("training trace"))
            .collect();
        Detector::train_from_traces(&training, Config::default()).expect("training succeeds")
    })
}

fn stream() -> StreamingDetector {
    StreamingDetector::new(detector().clone(), 15.0, 3).expect("valid stream config")
}

/// A small fixed pool of legitimate traces, one per session ordinal.
fn pool() -> &'static Vec<TracePair> {
    static POOL: OnceLock<Vec<TracePair>> = OnceLock::new();
    POOL.get_or_init(|| {
        let chats = ScenarioBuilder::default();
        (0..4)
            .map(|i| chats.legitimate(0, 72_000 + i).expect("pool trace"))
            .collect()
    })
}

fn relaxed(shards: usize, seed: u64, sessions: usize) -> FleetConfig {
    FleetConfig {
        shards,
        seed,
        shard: ServeConfig {
            max_sessions: sessions,
            budget_clips: 2,
            budget_period_ticks: 1,
            deadline_ticks: 10_000,
            ..ServeConfig::default()
        },
        admission: AdmissionConfig {
            burst_sessions: u32::try_from(sessions).expect("small count"),
            refill_per_tick: 1.0,
        },
        max_steals_per_tick: 4,
    }
}

fn verdicts_of(events: &[FleetEvent], session: u64) -> Vec<ClipVerdict> {
    events
        .iter()
        .filter(|e| e.session == session)
        .filter_map(|e| match &e.kind {
            SessionEventKind::Verdict(v) => Some(v.clone()),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A fleet killed mid-clip into a serde-round-tripped
    /// [`FleetSnapshot`] and restored shard-by-shard replays every
    /// never-quarantined session byte-identically to the uninterrupted
    /// run — whatever the shard count, wherever the cut, and even when
    /// one shard's snapshot entry rots and its session is quarantined.
    #[test]
    fn restore_is_byte_identical_for_unquarantined_sessions(
        shards in 1usize..=4,
        cut in 20usize..130,
        rot in any::<bool>(),
        rotted in 0usize..4,
        seed in 0u64..512,
    ) {
        const SESSIONS: usize = 4;
        let config = relaxed(shards, seed, SESSIONS);
        let shortest = pool().iter().map(|p| p.tx.samples().len()).min().unwrap_or(0);
        prop_assert!(shortest > 140, "pool traces must cover one clip");
        let total = shortest.min(160);

        // Uninterrupted reference.
        let mut straight = Fleet::new(config.clone()).expect("valid config");
        let ids: Vec<u64> = (0..SESSIONS as u64)
            .map(|k| straight.admit(k, stream()).session().expect("admitted"))
            .collect();
        let feed = |fleet: &mut Fleet, skip: Option<u64>, range: std::ops::Range<usize>| {
            for sample in range {
                for (si, &id) in ids.iter().enumerate() {
                    if Some(id) == skip {
                        continue;
                    }
                    let pair = &pool()[si % pool().len()];
                    fleet
                        .offer(id, pair.tx.samples()[sample], pair.rx.samples()[sample])
                        .expect("offer succeeds");
                }
                fleet.tick();
            }
            let mut guard = 0u32;
            while fleet.pending_clips() > 0 {
                fleet.tick();
                guard += 1;
                assert!(guard < 100_000, "fleet failed to drain");
            }
        };
        // NB: the closure captures `ids` immutably; drive both runs with it.
        feed(&mut straight, None, 0..total);
        let straight_events = straight.drain_events();

        // Interrupted run: identical feed up to the cut, then a crash.
        let mut cycled = Fleet::new(config.clone()).expect("valid config");
        for (k, &expect) in ids.iter().enumerate() {
            prop_assert_eq!(
                cycled.admit(k as u64, stream()).session(),
                Some(expect),
                "placement must be deterministic"
            );
        }
        for sample in 0..cut {
            for (si, &id) in ids.iter().enumerate() {
                let pair = &pool()[si % pool().len()];
                cycled
                    .offer(id, pair.tx.samples()[sample], pair.rx.samples()[sample])
                    .expect("offer succeeds");
            }
            cycled.tick();
        }
        let mut snap = cycled.snapshot();
        let json = serde_json::to_string(&snap).expect("snapshot serializes");
        let back: FleetSnapshot = serde_json::from_str(&json).expect("snapshot decodes");
        prop_assert_eq!(&back, &snap, "fleet snapshot must round-trip through serde");
        drop(cycled); // the "crash"

        // Optionally rot one session's entry in its shard's snapshot.
        let rotted_id = ids[rotted % ids.len()];
        let quarantined = if rot {
            let shard = (rotted_id % shards as u64) as usize;
            let local = rotted_id / shards as u64;
            let slot = snap.shards[shard]
                .sessions
                .iter_mut()
                .find(|s| s.id == local)
                .expect("session present in its shard snapshot");
            slot.partial_rx.push(0.0);
            Some(rotted_id)
        } else {
            None
        };

        let (mut restored, report) = Fleet::restore_with_report(
            config,
            &snap,
            |_| Ok(stream()),
            &Recorder::null(),
        )
        .expect("restore succeeds");
        prop_assert_eq!(report.quarantined_sessions(), quarantined.into_iter().collect::<Vec<_>>());
        feed(&mut restored, quarantined, cut..total);
        let restored_events = restored.drain_events();

        for &id in &ids {
            if Some(id) == quarantined {
                continue;
            }
            prop_assert_eq!(
                verdicts_of(&restored_events, id),
                verdicts_of(&straight_events, id),
                "session {} diverged after restore (shards={}, cut={})",
                id,
                shards,
                cut
            );
        }
        if quarantined.is_none() {
            prop_assert_eq!(restored.shard_stats(), straight.shard_stats());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under seeded hot-shard skew (every key hashed onto one shard,
    /// tiny per-shard budget) idle shards donate credits to the hot one,
    /// and the conservation ledger `offered == served + shed + in_flight`
    /// holds on every single tick.
    #[test]
    fn stealing_conserves_work_under_hot_shard_skew(
        shards in 2usize..=4,
        seed in 0u64..512,
        hot_sessions in 3usize..=5,
    ) {
        let mut config = relaxed(shards, seed, hot_sessions);
        config.shard.budget_clips = 1;
        config.shard.budget_period_ticks = 40;
        config.shard.queue_clips = 2;
        let mut fleet = Fleet::new(config).expect("valid config");

        let hot = fleet.shard_of_key(0);
        let keys: Vec<u64> = (0..2_000u64)
            .filter(|&k| fleet.shard_of_key(k) == hot)
            .take(hot_sessions)
            .collect();
        prop_assert_eq!(keys.len(), hot_sessions, "not enough keys landed on shard {}", hot);
        let ids: Vec<u64> = keys
            .iter()
            .map(|&k| fleet.admit(k, stream()).session().expect("admitted"))
            .collect();
        for &id in &ids {
            prop_assert_eq!(fleet.shard_of_session(id), hot, "skew setup leaked a session");
        }

        let pair = &pool()[0];
        for sample in 0..pair.tx.samples().len().min(160) {
            for &id in &ids {
                fleet
                    .offer(id, pair.tx.samples()[sample], pair.rx.samples()[sample])
                    .expect("offer succeeds");
            }
            fleet.tick();
            let ledger = fleet.ledger();
            prop_assert!(ledger.holds(), "ledger broke mid-feed: {:?}", ledger);
        }
        let mut guard = 0u32;
        while fleet.pending_clips() > 0 {
            fleet.tick();
            let ledger = fleet.ledger();
            prop_assert!(ledger.holds(), "ledger broke draining: {:?}", ledger);
            guard += 1;
            prop_assert!(guard < 100_000, "fleet failed to drain");
        }

        prop_assert!(
            fleet.stats().steals > 0,
            "idle shards never donated credits to the hot shard"
        );
        let stats = fleet.shard_stats();
        prop_assert_eq!(stats.served_clips + stats.shed_clips, stats.offered_clips);
        let ledger = fleet.ledger();
        prop_assert_eq!(ledger.in_flight, 0);
        prop_assert!(ledger.holds());
    }
}
