//! Resilience acceptance tests: under heavy Gilbert–Elliott burst loss the
//! signal-quality gate must strictly lower the legitimate false-rejection
//! rate, and pathological clips (fully dropped, flatline) must come back
//! `Inconclusive` — never a panic, never a silent vote.

use lumen::chat::channel::ChannelConfig;
use lumen::chat::fault::{BurstLoss, FaultPlan};
use lumen::chat::scenario::ScenarioBuilder;
use lumen::chat::stats::measure_channel_faulty;
use lumen::chat::trace::{ScenarioKind, TracePair};
use lumen::core::detector::{ClipOutcome, Detector};
use lumen::core::quality::QualityGate;
use lumen::core::stream::{SessionStatus, StreamingDetector};
use lumen::core::Config;
use lumen::dsp::Signal;
use lumen::obs::Recorder;

/// The heavy-loss plan used throughout: Gilbert–Elliott with ~36 %
/// stationary loss (bad-state dwell of ~6 packets at 95 % loss).
fn heavy_burst() -> FaultPlan {
    FaultPlan {
        burst: BurstLoss::bursty(0.1, 6.0, 0.95),
        ..FaultPlan::none()
    }
}

fn clean_detector() -> Detector {
    let chats = ScenarioBuilder::default();
    let training: Vec<_> = (0..12)
        .map(|i| chats.legitimate(0, 60_000 + i).unwrap())
        .collect();
    Detector::train_from_traces(&training, Config::default()).unwrap()
}

#[test]
fn burst_plan_reaches_thirty_percent_loss() {
    let source = Signal::from_fn(300, 10.0, |t| 120.0 + 20.0 * (t * 0.8).sin()).unwrap();
    let stats = measure_channel_faulty(
        &source,
        ChannelConfig::default(),
        heavy_burst(),
        41,
        &Recorder::null(),
    )
    .unwrap();
    assert!(
        stats.loss >= 0.3,
        "burst plan must lose at least 30% of packets, got {:.1}%",
        stats.loss * 100.0
    );
}

#[test]
fn gating_strictly_lowers_legitimate_frr_under_burst_loss() {
    let det = clean_detector();
    let gate = QualityGate::default();
    let degraded = ScenarioBuilder::default().with_faults(heavy_burst());

    let clips = 30u64;
    let mut rejected_ungated = 0usize;
    let mut conclusive = 0usize;
    let mut rejected_gated = 0usize;
    let mut inconclusive = 0usize;
    for i in 0..clips {
        let pair = degraded.legitimate(0, 61_000 + i).unwrap();
        // Ungated: every clip votes; a pipeline error on a mangled clip is
        // a rejection of a genuine caller.
        let accepted = det.detect(&pair).map(|d| d.accepted).unwrap_or(false);
        if !accepted {
            rejected_ungated += 1;
        }
        match det.detect_gated(&pair, &gate).unwrap() {
            ClipOutcome::Conclusive(d) => {
                conclusive += 1;
                if !d.accepted {
                    rejected_gated += 1;
                }
            }
            ClipOutcome::Inconclusive(_) => inconclusive += 1,
        }
    }

    let frr_ungated = rejected_ungated as f64 / clips as f64;
    assert!(conclusive > 0, "some clips must survive the gate");
    let frr_gated = rejected_gated as f64 / conclusive as f64;
    assert!(
        frr_gated < frr_ungated,
        "gating must strictly lower FRR: gated {:.1}% vs ungated {:.1}% ({} inconclusive)",
        frr_gated * 100.0,
        frr_ungated * 100.0,
        inconclusive
    );
}

#[test]
fn flatline_clip_is_inconclusive() {
    let det = clean_detector();
    let gate = QualityGate::default();
    // Receiver frozen on one frame for the whole clip: zero peak-to-peak.
    let tx = Signal::from_fn(150, 10.0, |t| 120.0 + 15.0 * (t * 0.7).sin()).unwrap();
    let rx = Signal::new(vec![104.0; 150], 10.0).unwrap();
    let pair = TracePair {
        tx,
        rx,
        kind: ScenarioKind::Legitimate { user: 0 },
        seed: 0,
        forward_delay: 0.12,
        backward_delay: 0.12,
    };
    let outcome = det.detect_gated(&pair, &gate).unwrap();
    assert!(
        matches!(outcome, ClipOutcome::Inconclusive(_)),
        "flatline clip must abstain, got {outcome:?}"
    );
}

#[test]
fn streaming_detector_abstains_on_fully_dropped_clip() {
    let det = clean_detector();
    let mut monitor = StreamingDetector::new(det, 15.0, 3)
        .unwrap()
        .with_quality_gate(QualityGate::default());
    let samples = monitor.clip_samples();
    // Every receive tick lost: the display never gets a frame.
    let mut verdicts = Vec::new();
    for i in 0..samples {
        let t = i as f64 / 10.0;
        let tx = 120.0 + 15.0 * (t * 0.7).sin();
        if let Some(v) = monitor.push(tx, f64::NAN).unwrap() {
            verdicts.push(v);
        }
    }
    assert_eq!(verdicts.len(), 1, "one clip must complete");
    assert!(
        verdicts[0].outcome.is_inconclusive(),
        "fully-dropped clip must be inconclusive, got {:?}",
        verdicts[0].outcome
    );
    // No conclusive evidence yet: the session must still be gathering, not
    // alerting on a genuine caller with a dead link.
    assert_eq!(monitor.status(), SessionStatus::Gathering);
}
