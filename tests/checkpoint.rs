//! Checkpoint determinism: restoring a mid-clip snapshot must be
//! invisible in the verdict stream, even on a degraded link where the
//! quality gate abstains and the watchdog is mid-backoff. The faulty
//! scenario matters: it is the watchdog counters, vote history and
//! partial clip buffers — not just the trained model — that have to
//! survive the round trip through serde.

use lumen::chat::fault::{BurstLoss, FaultPlan};
use lumen::chat::scenario::ScenarioBuilder;
use lumen::core::detector::{ClipOutcome, Detector};
use lumen::core::quality::QualityGate;
use lumen::core::stream::{ClipVerdict, StreamSnapshot, StreamingDetector};
use lumen::core::Config;
use lumen::serve::{ServeConfig, Supervisor, SupervisorSnapshot};

fn heavy_burst() -> FaultPlan {
    FaultPlan {
        burst: BurstLoss::bursty(0.1, 6.0, 0.95),
        ..FaultPlan::none()
    }
}

fn trained() -> Detector {
    let clean = ScenarioBuilder::default();
    let training: Vec<_> = (0..10)
        .map(|i| clean.legitimate(0, 70_000 + i).expect("training trace"))
        .collect();
    Detector::train_from_traces(&training, Config::default()).expect("training succeeds")
}

fn gated(detector: &Detector) -> StreamingDetector {
    StreamingDetector::new(detector.clone(), 15.0, 3)
        .expect("valid stream config")
        .with_quality_gate(QualityGate::default())
}

#[test]
fn faulty_stream_survives_mid_clip_checkpoints_verbatim() {
    const CLIPS: usize = 4;
    let detector = trained();
    let degraded = ScenarioBuilder::default().with_faults(heavy_burst());

    let mut straight = gated(&detector);
    let mut cycled = gated(&detector);
    let mut straight_verdicts: Vec<ClipVerdict> = Vec::new();
    let mut cycled_verdicts: Vec<ClipVerdict> = Vec::new();

    for clip in 0..CLIPS {
        let pair = degraded
            .legitimate(0, 71_000 + clip as u64)
            .expect("degraded trace");
        for i in 0..pair.tx.samples().len() {
            let tx = pair.tx.samples()[i];
            let rx = pair.rx.samples()[i];
            if let Some(v) = straight.push(tx, rx).expect("push succeeds") {
                straight_verdicts.push(v);
            }
            if let Some(v) = cycled.push(tx, rx).expect("push succeeds") {
                cycled_verdicts.push(v);
            }
            // Mid-clip checkpoint: serialize, discard the runtime, restore
            // into a freshly built detector.
            if i == 73 {
                let snap = cycled.snapshot();
                let json = serde_json::to_string(&snap).expect("snapshot serializes");
                let back: StreamSnapshot = serde_json::from_str(&json).expect("snapshot decodes");
                assert_eq!(back, snap, "snapshot must round-trip through serde");
                cycled = gated(&detector);
                cycled.restore(&back).expect("restore succeeds");
            }
        }
    }

    assert_eq!(
        cycled_verdicts, straight_verdicts,
        "checkpoint cycles changed the verdict stream"
    );
    assert_eq!(straight_verdicts.len(), CLIPS);
    // The degraded link must actually exercise the abstention path, or
    // the watchdog state this test protects was never populated.
    assert!(
        straight_verdicts
            .iter()
            .any(|v| matches!(v.outcome, ClipOutcome::Inconclusive(_))),
        "burst faults produced no inconclusive clip; the check is vacuous"
    );
}

#[test]
fn supervised_faulty_session_replays_identically_after_restore() {
    const CLIPS: usize = 3;
    let detector = trained();
    let degraded = ScenarioBuilder::default().with_faults(heavy_burst());
    let config = ServeConfig {
        max_sessions: 1,
        budget_clips: 1,
        budget_period_ticks: 10,
        deadline_ticks: 10_000,
        ..ServeConfig::default()
    };

    let mut straight = Supervisor::new(config.clone()).expect("valid config");
    let mut cycled = Supervisor::new(config.clone()).expect("valid config");
    let id = straight
        .admit(gated(&detector))
        .session()
        .expect("admitted");
    assert_eq!(cycled.admit(gated(&detector)).session(), Some(id));
    // Events drained before a checkpoint are the caller's to keep: the
    // snapshot carries session state, not the already-reported stream.
    let mut cycled_events = Vec::new();

    for clip in 0..CLIPS {
        let pair = degraded
            .legitimate(0, 71_000 + clip as u64)
            .expect("degraded trace");
        for i in 0..pair.tx.samples().len() {
            let tx = pair.tx.samples()[i];
            let rx = pair.rx.samples()[i];
            straight.offer(id, tx, rx).expect("offer succeeds");
            cycled.offer(id, tx, rx).expect("offer succeeds");
            straight.tick();
            cycled.tick();
            if i == 73 {
                cycled_events.extend(cycled.drain_events());
                let snap = cycled.snapshot();
                let json = serde_json::to_string(&snap).expect("snapshot serializes");
                drop(cycled);
                let back: SupervisorSnapshot =
                    serde_json::from_str(&json).expect("snapshot decodes");
                cycled = Supervisor::restore(config.clone(), &back, |_| Ok(gated(&detector)))
                    .expect("restore succeeds");
            }
        }
    }
    while straight.pending_clips() > 0 || cycled.pending_clips() > 0 {
        straight.tick();
        cycled.tick();
    }

    cycled_events.extend(cycled.drain_events());
    assert_eq!(
        cycled_events,
        straight.drain_events(),
        "restored supervisor diverged from the uninterrupted one"
    );
    assert_eq!(cycled.stats(), straight.stats());
    assert_eq!(straight.stats().offered_clips, CLIPS as u64);
}

#[test]
fn in_flight_probe_survives_checkpoint_byte_identically() {
    use lumen::chat::session::SessionConfig;
    use lumen::probe::{ProbeConfig, ProbeDecision, ProbeDirector, ProbeInjector, ProbePolicy};
    use lumen::serve::SessionEventKind;

    let detector = trained();
    let config = ServeConfig {
        max_sessions: 2,
        deadline_ticks: 10_000,
        ..ServeConfig::default()
    };
    let mut sup = Supervisor::new(config.clone()).expect("valid config");
    let director = ProbeDirector::new(ProbePolicy::default(), 93).expect("valid policy");
    let id = sup
        .admit_probed(gated(&detector), director)
        .session()
        .expect("admitted");

    // A flatline clip makes the passive gate abstain, which arms the
    // director: the checkpoint below carries an *in-flight* challenge.
    for _ in 0..150 {
        sup.offer(id, 100.0, 42.0).expect("offer succeeds");
        sup.tick();
    }
    while sup.pending_clips() > 0 {
        sup.tick();
    }
    let events = sup.drain_events();
    let schedule = events
        .iter()
        .find_map(|e| match &e.kind {
            SessionEventKind::ProbeRequested(s) => Some(s.clone()),
            _ => None,
        })
        .expect("the inconclusive clip must raise a probe request");

    // Checkpoint with the challenge outstanding, then restore twice: the
    // snapshot must carry the director verbatim, and serializing the
    // restored supervisor must reproduce the checkpoint byte-for-byte.
    let snap = sup.snapshot();
    let json = serde_json::to_string(&snap).expect("snapshot serializes");
    let back: SupervisorSnapshot = serde_json::from_str(&json).expect("snapshot decodes");
    assert_eq!(back, snap, "snapshot must round-trip through serde");
    let restored =
        Supervisor::restore(config.clone(), &back, |_| Ok(gated(&detector))).expect("restores");
    assert_eq!(
        serde_json::to_string(&restored.snapshot()).expect("snapshot serializes"),
        json,
        "a restored supervisor must checkpoint byte-identically"
    );
    assert_eq!(
        restored.probe_director(id).unwrap().unwrap().in_flight(),
        Some(&schedule),
        "the in-flight challenge must survive the round trip"
    );

    // Both the original and the restored supervisor must accept the same
    // challenge response and produce the same verdict.
    let pair = ProbeInjector::new(schedule.clone())
        .armed_scenario(
            ScenarioBuilder::default()
                .with_session(ProbeConfig::default().session_config(1.5, &SessionConfig::default()))
                .with_static_caller(120.0),
        )
        .legitimate(0, 78_000)
        .expect("probed trace");
    let mut restored = restored;
    let original = sup.resolve_probe(id, &pair).expect("resolves");
    let replayed = restored.resolve_probe(id, &pair).expect("resolves");
    assert_eq!(original, replayed, "restored probe verdict diverged");
    assert_eq!(original.decision, ProbeDecision::Pass, "{original:?}");
}
