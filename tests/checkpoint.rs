//! Checkpoint determinism: restoring a mid-clip snapshot must be
//! invisible in the verdict stream, even on a degraded link where the
//! quality gate abstains and the watchdog is mid-backoff. The faulty
//! scenario matters: it is the watchdog counters, vote history and
//! partial clip buffers — not just the trained model — that have to
//! survive the round trip through serde.

use lumen::chat::fault::{BurstLoss, FaultPlan};
use lumen::chat::scenario::ScenarioBuilder;
use lumen::core::detector::{ClipOutcome, Detector};
use lumen::core::quality::QualityGate;
use lumen::core::stream::{ClipVerdict, StreamSnapshot, StreamingDetector};
use lumen::core::Config;
use lumen::serve::{ServeConfig, Supervisor, SupervisorSnapshot};

fn heavy_burst() -> FaultPlan {
    FaultPlan {
        burst: BurstLoss::bursty(0.1, 6.0, 0.95),
        ..FaultPlan::none()
    }
}

fn trained() -> Detector {
    let clean = ScenarioBuilder::default();
    let training: Vec<_> = (0..10)
        .map(|i| clean.legitimate(0, 70_000 + i).expect("training trace"))
        .collect();
    Detector::train_from_traces(&training, Config::default()).expect("training succeeds")
}

fn gated(detector: &Detector) -> StreamingDetector {
    StreamingDetector::new(detector.clone(), 15.0, 3)
        .expect("valid stream config")
        .with_quality_gate(QualityGate::default())
}

#[test]
fn faulty_stream_survives_mid_clip_checkpoints_verbatim() {
    const CLIPS: usize = 4;
    let detector = trained();
    let degraded = ScenarioBuilder::default().with_faults(heavy_burst());

    let mut straight = gated(&detector);
    let mut cycled = gated(&detector);
    let mut straight_verdicts: Vec<ClipVerdict> = Vec::new();
    let mut cycled_verdicts: Vec<ClipVerdict> = Vec::new();

    for clip in 0..CLIPS {
        let pair = degraded
            .legitimate(0, 71_000 + clip as u64)
            .expect("degraded trace");
        for i in 0..pair.tx.samples().len() {
            let tx = pair.tx.samples()[i];
            let rx = pair.rx.samples()[i];
            if let Some(v) = straight.push(tx, rx).expect("push succeeds") {
                straight_verdicts.push(v);
            }
            if let Some(v) = cycled.push(tx, rx).expect("push succeeds") {
                cycled_verdicts.push(v);
            }
            // Mid-clip checkpoint: serialize, discard the runtime, restore
            // into a freshly built detector.
            if i == 73 {
                let snap = cycled.snapshot();
                let json = serde_json::to_string(&snap).expect("snapshot serializes");
                let back: StreamSnapshot = serde_json::from_str(&json).expect("snapshot decodes");
                assert_eq!(back, snap, "snapshot must round-trip through serde");
                cycled = gated(&detector);
                cycled.restore(&back).expect("restore succeeds");
            }
        }
    }

    assert_eq!(
        cycled_verdicts, straight_verdicts,
        "checkpoint cycles changed the verdict stream"
    );
    assert_eq!(straight_verdicts.len(), CLIPS);
    // The degraded link must actually exercise the abstention path, or
    // the watchdog state this test protects was never populated.
    assert!(
        straight_verdicts
            .iter()
            .any(|v| matches!(v.outcome, ClipOutcome::Inconclusive(_))),
        "burst faults produced no inconclusive clip; the check is vacuous"
    );
}

#[test]
fn supervised_faulty_session_replays_identically_after_restore() {
    const CLIPS: usize = 3;
    let detector = trained();
    let degraded = ScenarioBuilder::default().with_faults(heavy_burst());
    let config = ServeConfig {
        max_sessions: 1,
        budget_clips: 1,
        budget_period_ticks: 10,
        deadline_ticks: 10_000,
        ..ServeConfig::default()
    };

    let mut straight = Supervisor::new(config.clone()).expect("valid config");
    let mut cycled = Supervisor::new(config.clone()).expect("valid config");
    let id = straight
        .admit(gated(&detector))
        .session()
        .expect("admitted");
    assert_eq!(cycled.admit(gated(&detector)).session(), Some(id));
    // Events drained before a checkpoint are the caller's to keep: the
    // snapshot carries session state, not the already-reported stream.
    let mut cycled_events = Vec::new();

    for clip in 0..CLIPS {
        let pair = degraded
            .legitimate(0, 71_000 + clip as u64)
            .expect("degraded trace");
        for i in 0..pair.tx.samples().len() {
            let tx = pair.tx.samples()[i];
            let rx = pair.rx.samples()[i];
            straight.offer(id, tx, rx).expect("offer succeeds");
            cycled.offer(id, tx, rx).expect("offer succeeds");
            straight.tick();
            cycled.tick();
            if i == 73 {
                cycled_events.extend(cycled.drain_events());
                let snap = cycled.snapshot();
                let json = serde_json::to_string(&snap).expect("snapshot serializes");
                drop(cycled);
                let back: SupervisorSnapshot =
                    serde_json::from_str(&json).expect("snapshot decodes");
                cycled = Supervisor::restore(config.clone(), &back, |_| Ok(gated(&detector)))
                    .expect("restore succeeds");
            }
        }
    }
    while straight.pending_clips() > 0 || cycled.pending_clips() > 0 {
        straight.tick();
        cycled.tick();
    }

    cycled_events.extend(cycled.drain_events());
    assert_eq!(
        cycled_events,
        straight.drain_events(),
        "restored supervisor diverged from the uninterrupted one"
    );
    assert_eq!(cycled.stats(), straight.stats());
    assert_eq!(straight.stats().offered_clips, CLIPS as u64);
}
