//! Property tests for the mergeable log-bucketed histograms and registry
//! aggregation: merging is commutative and associative, never loses a
//! sample, and merged quantiles honour the documented relative-error
//! bound — the invariants that make fleet-wide percentile aggregation
//! sound.

use lumen::obs::registry::QUANTILE_RELATIVE_ERROR;
use lumen::obs::{Event, EventKind, Histogram, Registry};
use proptest::prelude::*;

fn samples(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1e-6f64..1e6, 1..max_len)
}

fn hist_of(values: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h
}

/// Nearest-rank ground-truth quantile over the raw samples.
fn exact_quantile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Structural equality up to float-summation order: bucket counts, sample
/// count, min and max must match exactly; `sum` is accumulated in float
/// and may differ in the last ulp between merge orders.
macro_rules! prop_assert_equivalent {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        prop_assert_eq!(a.nonzero_buckets(), b.nonzero_buckets());
        prop_assert_eq!(a.count(), b.count());
        prop_assert_eq!(a.min(), b.min());
        prop_assert_eq!(a.max(), b.max());
        prop_assert_eq!(a.nonpositive(), b.nonpositive());
        prop_assert!((a.sum() - b.sum()).abs() <= a.sum().abs() * 1e-12 + 1e-12);
    }};
}

fn counter_event(name: &str, delta: f64) -> Event {
    Event {
        seq: 0,
        kind: EventKind::CounterAdd,
        name: name.to_string(),
        parent: None,
        depth: 0,
        session: None,
        clip: None,
        value: Some(delta),
        duration_ns: None,
        detail: None,
    }
}

proptest! {
    #[test]
    fn merge_is_commutative(a in samples(128), b in samples(128)) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in samples(64), b in samples(64), c in samples(64)) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_equivalent!(left, right);
    }

    #[test]
    fn merge_preserves_counts_and_exact_stats(a in samples(128), b in samples(128)) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        let all: Vec<f64> = a.iter().chain(&b).copied().collect();
        let sum: f64 = all.iter().sum();
        prop_assert!((merged.sum() - sum).abs() <= sum.abs() * 1e-12 + 1e-12);
        let min = all.iter().copied().fold(f64::INFINITY, f64::min);
        let max = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(merged.min(), Some(min));
        prop_assert_eq!(merged.max(), Some(max));
        // Merging equals observing the concatenation.
        prop_assert_equivalent!(merged, hist_of(&all));
    }

    #[test]
    fn merged_quantiles_stay_within_the_documented_bound(
        a in samples(128),
        b in samples(128),
        q in 0.01f64..0.999,
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let all: Vec<f64> = a.iter().chain(&b).copied().collect();
        let truth = exact_quantile(&all, q);
        let approx = merged.quantile(q).expect("non-empty histogram");
        prop_assert!(
            (approx - truth).abs() <= truth.abs() * QUANTILE_RELATIVE_ERROR + 1e-12,
            "q={} approx={} truth={}", q, approx, truth
        );
    }

    #[test]
    fn quantiles_are_bracketed_by_min_and_max(v in samples(256), q in 0.0f64..1.0) {
        let h = hist_of(&v);
        let quant = h.quantile(q).expect("non-empty histogram");
        prop_assert!(quant >= h.min().expect("non-empty"));
        prop_assert!(quant <= h.max().expect("non-empty"));
    }

    #[test]
    fn registry_merge_adds_counters(deltas in prop::collection::vec(1u32..1000, 1..32)) {
        // Split the event stream at every possible point: folding the two
        // halves separately and merging must equal folding the whole.
        let events: Vec<Event> = deltas
            .iter()
            .map(|&d| counter_event("prop.counter", f64::from(d)))
            .collect();
        let whole = Registry::from_events(&events);
        for split in 0..=events.len() {
            let mut left = Registry::from_events(&events[..split]);
            left.merge(&Registry::from_events(&events[split..]));
            prop_assert_eq!(left.counter("prop.counter"), whole.counter("prop.counter"));
        }
    }
}
